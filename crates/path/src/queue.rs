//! Monotone priority queues for the earliest-arrival search.
//!
//! Label-setting over time-dependent FIFO edges pops keys in
//! non-decreasing order and only ever pushes keys at or above the key
//! being popped. That monotonicity admits a bucket queue (Dial-style)
//! keyed by arrival time quantized against the scenario horizon: the pop
//! cursor sweeps the buckets once and never backs up, so each pop costs a
//! heap operation over one small bucket instead of the whole frontier.
//!
//! [`MonotoneQueue`] picks the implementation: a bucket queue when the
//! caller supplies a finite horizon, the classic binary heap when the
//! horizon is unbounded ([`SimTime::MAX`]). Both pop entries in exactly
//! the same total order — ascending `(key, machine id)` — so the search
//! produces byte-identical trees whichever backend is selected (pinned by
//! the property tests in `tests/properties.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dstage_model::time::SimTime;

/// Number of regular buckets; one overflow bucket rides at the end for
/// keys beyond the horizon (late arrivals are rare but legal — link
/// windows are not required to close by the scenario horizon).
const BUCKETS: usize = 1024;

/// A monotone `(key, machine id)` min-queue with lazy deletion.
#[derive(Debug)]
pub(crate) enum MonotoneQueue {
    /// Classic binary heap — the fallback when no horizon bounds the keys.
    Heap(BinaryHeap<Reverse<(SimTime, u32)>>),
    /// Horizon-quantized bucket queue.
    Buckets(BucketQueue),
}

impl MonotoneQueue {
    /// Selects the backend for a search whose keys are expected to stay
    /// within `horizon`; [`SimTime::MAX`] selects the binary heap. The
    /// choice is purely an optimization — pop order is identical.
    pub(crate) fn new(horizon: SimTime) -> Self {
        if horizon == SimTime::MAX {
            MonotoneQueue::Heap(BinaryHeap::new())
        } else {
            MonotoneQueue::Buckets(BucketQueue::new(horizon))
        }
    }

    /// Pushes an entry. Keys below the last popped key are a caller bug
    /// (they would break the cursor sweep); debug builds assert.
    pub(crate) fn push(&mut self, key: SimTime, machine: u32) {
        match self {
            MonotoneQueue::Heap(heap) => heap.push(Reverse((key, machine))),
            MonotoneQueue::Buckets(buckets) => buckets.push(key, machine),
        }
    }

    /// Pops the minimum `(key, machine id)` entry.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u32)> {
        match self {
            MonotoneQueue::Heap(heap) => heap.pop().map(|Reverse(entry)| entry),
            MonotoneQueue::Buckets(buckets) => buckets.pop(),
        }
    }

    /// Cursor advances over empty buckets, when the bucket backend ran
    /// (`None` for the heap) — the bucket-queue obs series.
    pub(crate) fn bucket_advances(&self) -> Option<u64> {
        match self {
            MonotoneQueue::Heap(_) => None,
            MonotoneQueue::Buckets(buckets) => Some(buckets.advances),
        }
    }
}

/// Dial-style bucket queue over `(key, machine id)` entries.
///
/// Buckets partition `[0, horizon]` into [`BUCKETS`] equal-width ranges
/// plus one overflow bucket; each bucket is itself a tiny binary heap so
/// in-bucket pops come out in ascending `(key, machine id)` order and
/// same-bucket pushes during the sweep land correctly. Monotone pushes
/// guarantee nothing ever lands behind the cursor.
#[derive(Debug)]
pub(crate) struct BucketQueue {
    /// Milliseconds per bucket, at least 1.
    width: u64,
    /// First possibly non-empty bucket.
    cursor: usize,
    /// Total live entries across all buckets.
    len: usize,
    /// Empty buckets skipped by pops (obs diagnostic).
    advances: u64,
    /// `BUCKETS + 1` heaps; the last is the overflow bucket.
    buckets: Vec<BinaryHeap<Reverse<(SimTime, u32)>>>,
}

impl BucketQueue {
    fn new(horizon: SimTime) -> Self {
        debug_assert_ne!(horizon, SimTime::MAX, "unbounded horizon takes the heap fallback");
        let width = horizon.as_millis() / (BUCKETS as u64) + 1;
        BucketQueue {
            width,
            cursor: 0,
            len: 0,
            advances: 0,
            buckets: (0..=BUCKETS).map(|_| BinaryHeap::new()).collect(),
        }
    }

    fn index_of(&self, key: SimTime) -> usize {
        usize::try_from(key.as_millis() / self.width).map_or(BUCKETS, |i| i.min(BUCKETS))
    }

    fn push(&mut self, key: SimTime, machine: u32) {
        let index = self.index_of(key);
        debug_assert!(index >= self.cursor, "push behind the cursor breaks monotonicity");
        self.buckets[index].push(Reverse((key, machine)));
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
            self.advances += 1;
        }
        self.len -= 1;
        self.buckets[self.cursor].pop().map(|Reverse(entry)| entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drains a queue fed with a monotone push schedule interleaved with
    /// pops, returning the pop sequence.
    fn drain_interleaved(mut queue: MonotoneQueue, pushes: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        // Feed half, then alternate pop/push, then drain — exercises
        // pushes into the current bucket mid-sweep.
        let (head, tail) = pushes.split_at(pushes.len() / 2);
        for &(key, id) in head {
            queue.push(t(key), id);
        }
        for &(key, id) in tail {
            if let Some((k, m)) = queue.pop() {
                out.push((k.as_millis(), m));
                // Monotone: pushed keys are never below the popped key.
                queue.push(t(key.max(k.as_millis())), id);
            } else {
                queue.push(t(key), id);
            }
        }
        while let Some((k, m)) = queue.pop() {
            out.push((k.as_millis(), m));
        }
        out
    }

    #[test]
    fn bucket_queue_matches_heap_order() {
        // Deterministic pseudo-random keys from a tiny LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            state >> 33
        };
        let pushes: Vec<(u64, u32)> = (0..200).map(|i| (next() % 7_200_000, i as u32)).collect();
        let horizon = t(7_200_000);
        let heap = drain_interleaved(MonotoneQueue::new(SimTime::MAX), &pushes);
        let buckets = drain_interleaved(MonotoneQueue::new(horizon), &pushes);
        assert_eq!(heap, buckets);
        assert_eq!(heap.len(), pushes.len());
    }

    #[test]
    fn ties_pop_in_machine_id_order() {
        let mut queue = MonotoneQueue::new(t(1_000));
        for id in [5u32, 1, 3] {
            queue.push(t(100), id);
        }
        assert_eq!(queue.pop(), Some((t(100), 1)));
        assert_eq!(queue.pop(), Some((t(100), 3)));
        assert_eq!(queue.pop(), Some((t(100), 5)));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn keys_beyond_the_horizon_land_in_the_overflow_bucket() {
        let horizon = t(1_000);
        let mut queue = MonotoneQueue::new(horizon);
        queue.push(t(5_000), 2); // far beyond the horizon
        queue.push(t(999), 1);
        queue.push(t(1_500), 3); // beyond, smaller key than 5_000
        assert_eq!(queue.pop(), Some((t(999), 1)));
        assert_eq!(queue.pop(), Some((t(1_500), 3)));
        assert_eq!(queue.pop(), Some((t(5_000), 2)));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn advances_count_skipped_buckets_only_for_the_bucket_backend() {
        let mut queue = MonotoneQueue::new(t(1_024_000)); // width ~1001 ms
        assert_eq!(queue.bucket_advances(), Some(0));
        queue.push(t(0), 0);
        queue.push(t(500_000), 1);
        while queue.pop().is_some() {}
        assert!(queue.bucket_advances().unwrap() > 0);
        assert_eq!(MonotoneQueue::new(SimTime::MAX).bucket_advances(), None);
    }

    #[test]
    fn empty_queue_pops_none_without_cursor_runaway() {
        let mut queue = MonotoneQueue::new(t(10));
        assert_eq!(queue.pop(), None);
        queue.push(t(3), 7);
        assert_eq!(queue.pop(), Some((t(3), 7)));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }
}
