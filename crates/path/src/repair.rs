//! Incremental repair of earliest-arrival trees (dynamic SSSP).
//!
//! Between two queries of the same item, the ledger only ever *consumes*
//! resources (commits, outage blocks) — no reservation is ever released
//! mid-run. Consumption is monotone: every `earliest_transfer` probe
//! answers the same or later, never earlier. So when some links/stores
//! move under a cached tree, only the machines whose path *crossed* a
//! dirtied resource — and their tree descendants — can change label;
//! every other label is still both feasible (its path's resources are
//! untouched) and optimal (no probe anywhere got earlier). That turns
//! invalidation into repair: reset the affected subtrees, re-seed the
//! search from the frontier of unaffected machines plus the item's own
//! sources, and re-run the label-setting core with the unaffected set
//! frozen. The result is the *identical* tree a from-scratch
//! [`crate::earliest_arrival_tree`] would build — pops settle in the same
//! `(arrival, machine id)` order, probes are pure reads, and the strict-<
//! update rule picks the same hops — at a fraction of the probes. Pinned
//! by the property tests in `tests/properties.rs` and the sweep
//! byte-identity test in the workspace root.
//!
//! The runtime gate mirrors the obs tap: `DSTAGE_TREE_REPAIR` (default
//! on), overridable in-process with [`set_enabled`]. Schedulers resolve
//! the gate once at state construction so parallel runs never race it.

use std::sync::atomic::{AtomicU8, Ordering};

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::time::SimTime;

use crate::dijkstra::{link_bounds, run_search, ItemQuery, SearchStats};
use crate::queue::MonotoneQueue;
use crate::tree::{ArrivalTree, Hop};

/// Tri-state runtime switch: 0 = not yet resolved from the environment,
/// 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether incremental repair is enabled.
///
/// First call resolves the `DSTAGE_TREE_REPAIR` environment variable
/// (default: enabled); later calls are a single relaxed atomic load.
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("DSTAGE_TREE_REPAIR")
                .map_or(true, |v| !matches!(v.trim(), "0" | "off" | "false" | "no"));
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns incremental repair on or off at runtime, overriding
/// `DSTAGE_TREE_REPAIR`.
///
/// Process-global: the byte-identity tests flip this around whole runs.
/// Unit tests prefer `SchedulerState`'s per-state setter instead.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Repairs `tree` — built for `query`'s item against an *earlier* state
/// of the same ledger — after the given links/stores were consumed.
///
/// Exactness requires what the scheduler guarantees: the ledger has only
/// consumed resources since `tree` was built, the item's sources have at
/// most *gained* copies the tree already reflects (callers rebuild from
/// scratch when a source is lost), and `dirty_links`/`dirty_machines`
/// cover every resource consumed since. The returned tree is equal to a
/// from-scratch run, hop for hop.
///
/// # Panics
///
/// Panics if `tree` does not cover `query.network`'s machines.
#[must_use]
pub fn repair_tree(
    query: &ItemQuery<'_>,
    tree: &ArrivalTree,
    dirty_links: &[VirtualLinkId],
    dirty_machines: &[MachineId],
) -> ArrivalTree {
    let n = query.network.machine_count();
    assert_eq!(tree.machine_count(), n, "tree must cover the query network");
    let (old_arrivals, old_hops) = tree.parts();

    let mut link_dirty = vec![false; query.network.link_count()];
    for &l in dirty_links {
        link_dirty[l.index()] = true;
    }
    let mut machine_dirty = vec![false; n];
    for &m in dirty_machines {
        machine_dirty[m.index()] = true;
    }

    // Affected = machines whose inbound hop crossed a dirtied resource,
    // plus all their tree descendants (their labels chain through it).
    let mut affected = vec![false; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stack: Vec<usize> = Vec::new();
    for (idx, hop) in old_hops.iter().enumerate() {
        let Some(hop) = hop else { continue };
        children[hop.from.index()].push(idx);
        if link_dirty[hop.link.index()] || machine_dirty[idx] {
            affected[idx] = true;
            stack.push(idx);
        }
    }
    while let Some(idx) = stack.pop() {
        for &child in &children[idx] {
            if !affected[child] {
                affected[child] = true;
                stack.push(child);
            }
        }
    }

    let mut arrivals = old_arrivals.to_vec();
    let mut hops: Vec<Option<Hop>> = old_hops.to_vec();
    let mut queue = MonotoneQueue::new(query.horizon);
    let mut stats = SearchStats::default();

    for idx in 0..n {
        if affected[idx] {
            arrivals[idx] = SimTime::MAX;
            hops[idx] = None;
        }
    }
    // Affected machines holding a copy fall back to their source
    // availability, exactly like the scratch run's seeding (a source can
    // still be *reached* earlier than a late copy becomes available).
    for &(machine, available_at) in query.sources {
        let idx = machine.index();
        if affected[idx] && available_at < arrivals[idx] {
            arrivals[idx] = available_at;
            hops[idx] = None;
            queue.push(available_at, idx as u32);
            stats.heap_pushes += 1;
        }
    }
    // The frontier: unaffected reachable machines with an edge into the
    // affected set relax back into it at their (final) labels.
    let bounds = link_bounds(query.network, query.size);
    for idx in 0..n {
        if affected[idx] || arrivals[idx] == SimTime::MAX {
            continue;
        }
        let feeds_affected = query
            .network
            .outgoing(MachineId::new(idx as u32))
            .iter()
            .any(|&l| affected[bounds[l.index()].dst]);
        if feeds_affected {
            queue.push(arrivals[idx], idx as u32);
            stats.heap_pushes += 1;
        }
    }
    let seeds = stats.heap_pushes;

    // Frozen = the unaffected machines: their labels are final, so edges
    // into them are skipped (no probe could improve them).
    let frozen: Vec<bool> = affected.iter().map(|&a| !a).collect();
    run_search(query, &bounds, &mut arrivals, &mut hops, &mut queue, Some(&frozen), &mut stats);

    stats.publish(&queue);
    dstage_obs::metrics::PATH_TREE_REPAIRS.inc();
    dstage_obs::metrics::PATH_REPAIR_SEEDS.add(seeds);

    ArrivalTree::new(arrivals, hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earliest_arrival_tree;
    use dstage_model::link::VirtualLink;
    use dstage_model::machine::Machine;
    use dstage_model::network::{Network, NetworkBuilder};
    use dstage_model::units::{BitsPerSec, Bytes};
    use dstage_resources::ledger::NetworkLedger;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn l(i: u32) -> VirtualLinkId {
        VirtualLinkId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, all 1 byte/ms.
    fn diamond() -> Network {
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        let win = SimTime::from_hours(1);
        b.add_link(VirtualLink::new(m(0), m(1), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(m(1), m(3), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(m(0), m(2), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(m(2), m(3), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.build()
    }

    #[test]
    fn repair_after_a_link_commit_matches_scratch() {
        let net = diamond();
        let mut ledger = NetworkLedger::new(&net);
        let hold = vec![SimTime::MAX; 4];
        let size = Bytes::new(10_000);
        let sources = [(m(0), t(0))];
        let before = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size,
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        // The tree routes 0 -> 1 -> 3 (lower link ids win the tie).
        assert_eq!(before.hop_into(m(3)).unwrap().link, l(1));

        // A foreign commit congests link 0 for 30 s.
        ledger.commit_transfer(&net, l(0), t(0), Bytes::new(30_000), SimTime::MAX).unwrap();
        let dirty_links = [l(0)];
        let dirty_machines = [m(1)];
        let query = ItemQuery {
            network: &net,
            ledger: &ledger,
            size,
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        };
        let repaired = repair_tree(&query, &before, &dirty_links, &dirty_machines);
        let scratch = earliest_arrival_tree(&query);
        assert_eq!(repaired, scratch);
        // The route flipped to the untouched 0 -> 2 -> 3 branch.
        assert_eq!(repaired.hop_into(m(3)).unwrap().link, l(3));
    }

    #[test]
    fn clean_journal_repair_is_a_no_op() {
        let net = diamond();
        let ledger = NetworkLedger::new(&net);
        let hold = vec![SimTime::MAX; 4];
        let sources = [(m(0), t(0))];
        let query = ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        };
        let tree = earliest_arrival_tree(&query);
        assert_eq!(repair_tree(&query, &tree, &[], &[]), tree);
    }

    #[test]
    fn storage_dirty_machines_reseed_their_subtree() {
        let net = diamond();
        let mut ledger = NetworkLedger::new(&net);
        let hold = vec![SimTime::MAX; 4];
        let sources = [(m(0), t(0))];
        let before = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        // Fill machine 1's storage so the old subtree through it dies.
        ledger.force_storage(m(1), Bytes::from_mib(1), t(0), SimTime::MAX);
        let query = ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        };
        let repaired = repair_tree(&query, &before, &[], &[m(1)]);
        let scratch = earliest_arrival_tree(&query);
        assert_eq!(repaired, scratch);
        assert!(!repaired.is_reachable(m(1)));
        assert_eq!(repaired.hop_into(m(3)).unwrap().from, m(2));
    }

    #[test]
    fn gate_resolves_and_overrides() {
        // Whatever the environment says, the override wins afterwards.
        let initial = enabled();
        set_enabled(!initial);
        assert_eq!(enabled(), !initial);
        set_enabled(initial);
        assert_eq!(enabled(), initial);
    }
}
