//! Time-dependent multiple-source shortest-path search for data staging.
//!
//! Implements the paper's adaptation of Dijkstra's algorithm (§4.2): for a
//! single data item, starting from every machine that currently holds a
//! copy, compute the earliest time the item could be made available at
//! every other machine, honouring link availability windows, existing link
//! reservations, per-machine storage through the item's garbage-collection
//! time, and copy availability times.
//!
//! The search is exact for the current resource state because every
//! constraint is monotone in the ready time (see
//! [`dijkstra::earliest_arrival_tree`]). The same monotonicity powers the
//! fast-admission machinery: a horizon-bucketed queue ([`queue`]),
//! static lower-bound pruning of hopeless relaxations, and incremental
//! repair of cached trees after resource consumption ([`repair`]).
//!
//! # Examples
//!
//! ```
//! use dstage_model::prelude::*;
//! use dstage_resources::ledger::NetworkLedger;
//! use dstage_path::{earliest_arrival_tree, ItemQuery};
//!
//! let mut b = NetworkBuilder::new();
//! let a = b.add_machine(Machine::new("a", Bytes::from_mib(8)));
//! let c = b.add_machine(Machine::new("c", Bytes::from_mib(8)));
//! b.add_link(VirtualLink::new(a, c, SimTime::ZERO, SimTime::from_hours(1),
//!     BitsPerSec::from_mbps(1)));
//! let net = b.build();
//! let ledger = NetworkLedger::new(&net);
//! let hold = vec![SimTime::MAX; 2];
//!
//! let tree = earliest_arrival_tree(&ItemQuery {
//!     network: &net,
//!     ledger: &ledger,
//!     size: Bytes::from_kib(100),
//!     sources: &[(a, SimTime::ZERO)],
//!     hold_until: &hold,
//!     horizon: SimTime::from_hours(2),
//! });
//! assert!(tree.is_reachable(c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dijkstra;
pub(crate) mod queue;
pub mod repair;
pub mod tree;

pub use dijkstra::{earliest_arrival_tree, ItemQuery};
pub use repair::repair_tree;
pub use tree::{ArrivalTree, Hop};
