//! The adapted multiple-source shortest-path algorithm (paper §4.2).
//!
//! Classic Dijkstra computes shortest distances over static edge weights;
//! here an "edge weight" is *time-dependent*: the earliest moment an item
//! can finish crossing a virtual link depends on when it becomes ready at
//! the sending machine, the link's availability window, the link's existing
//! reservations, and the receiving machine's free storage through the
//! item's garbage-collection time. All four constraints are monotone in
//! the ready time (resources are only ever consumed, never released during
//! a probe), which gives the FIFO/non-overtaking property that makes
//! label-setting Dijkstra exact for this setting.
//!
//! Three hot-path optimizations ride on that structure, none of which may
//! change a single label (pinned by `tests/properties.rs`):
//!
//! - a monotone bucket queue ([`crate::queue`]) replaces the binary heap
//!   whenever the caller bounds arrivals by a finite scenario horizon;
//! - *lower-bound pruning*: the cheapest conceivable crossing of a link —
//!   ignoring every reservation — is `max(ready, window start) + transfer
//!   time`. When even that bound cannot beat the current label or fit the
//!   window/hold limits, the ledger probe is skipped entirely;
//! - incremental tree repair ([`crate::repair`]) reuses this crate's
//!   search core seeded only from the frontier around dirtied resources.

use dstage_model::ids::MachineId;
use dstage_model::network::Network;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::Bytes;
use dstage_resources::ledger::NetworkLedger;

use crate::queue::MonotoneQueue;
use crate::tree::{ArrivalTree, Hop};

/// One search instance: everything needed to compute the earliest-arrival
/// tree of a single data item against the current resource state.
#[derive(Debug, Clone, Copy)]
pub struct ItemQuery<'a> {
    /// The network topology.
    pub network: &'a Network,
    /// Current link/storage commitments.
    pub ledger: &'a NetworkLedger,
    /// Size of the item being staged.
    pub size: Bytes,
    /// Machines currently holding (or scheduled to receive) a copy, with
    /// the time that copy becomes available.
    pub sources: &'a [(MachineId, SimTime)],
    /// Per machine: how long a newly staged copy must be holdable there —
    /// the item's GC time for intermediates, the horizon for requesting
    /// destinations (policy supplied by the scheduler). Indexed by machine.
    pub hold_until: &'a [SimTime],
    /// An upper bound on interesting arrival times — the scenario horizon.
    /// Purely an optimization hint: it selects the bucket-queue backend and
    /// its quantization, never affects any label ([`SimTime::MAX`] = no
    /// bound, binary-heap fallback).
    pub horizon: SimTime,
}

/// Static per-link pruning ingredients, computed once per search: the
/// unloaded-network lower bound on crossing the link (`possible_satisfy`
/// in `core::bounds` reasons from the same ingredients).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkBound {
    /// Destination machine index.
    pub(crate) dst: usize,
    /// Window start `Lst`.
    open: SimTime,
    /// Window end `Let` — the latest permissible completion before the
    /// hold deadline is taken into account.
    close: SimTime,
    /// Serialization + latency for this item.
    duration: SimDuration,
}

/// Precomputes [`LinkBound`]s for every link, for an item of `size` bytes.
pub(crate) fn link_bounds(network: &Network, size: Bytes) -> Vec<LinkBound> {
    network
        .links()
        .map(|(_, link)| LinkBound {
            dst: link.destination().index(),
            open: link.start(),
            close: link.end(),
            duration: link.transfer_time(size),
        })
        .collect()
}

/// Per-search work tallies, published to the obs tap once per tree.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SearchStats {
    /// Outgoing edges considered, including every pruned one.
    pub(crate) edge_scans: u64,
    /// Ledger probes issued (`earliest_transfer` calls) — kept exactly
    /// equal to the resources layer's probe count by construction.
    pub(crate) relaxations: u64,
    /// Queue pushes (sources + label improvements).
    pub(crate) heap_pushes: u64,
    /// Pops whose label had already improved.
    pub(crate) stale_pops: u64,
    /// Edges discarded by the static lower bound before any probe.
    pub(crate) lb_prunes: u64,
}

impl SearchStats {
    /// One batched `fetch_add` per series per tree — this is the system's
    /// innermost loop, so the tap must not cost per-relaxation traffic.
    pub(crate) fn publish(&self, queue: &MonotoneQueue) {
        use dstage_obs::metrics as m;
        m::PATH_TREES.inc();
        m::PATH_EDGE_SCANS.add(self.edge_scans);
        m::PATH_RELAXATIONS.add(self.relaxations);
        m::PATH_HEAP_PUSHES.add(self.heap_pushes);
        m::PATH_STALE_POPS.add(self.stale_pops);
        m::PATH_LB_PRUNES.add(self.lb_prunes);
        if let Some(advances) = queue.bucket_advances() {
            m::PATH_BUCKET_TREES.inc();
            m::PATH_BUCKET_ADVANCES.add(advances);
        }
    }
}

/// The label-setting core, shared by [`earliest_arrival_tree`] and
/// [`crate::repair::repair_tree`]: drains the pre-seeded queue, relaxing
/// every outgoing edge of each settled machine.
///
/// `frozen`, when supplied, marks machines whose labels are already final
/// (the repair path's unaffected set): edges into them are skipped — a
/// probe there could never improve the label, so skipping is exact and
/// keeps the probe sequence into every *non*-frozen machine identical to a
/// from-scratch run's.
pub(crate) fn run_search(
    query: &ItemQuery<'_>,
    bounds: &[LinkBound],
    arrivals: &mut [SimTime],
    hops: &mut [Option<Hop>],
    queue: &mut MonotoneQueue,
    frozen: Option<&[bool]>,
    stats: &mut SearchStats,
) {
    while let Some((ready, u_idx)) = queue.pop() {
        if ready > arrivals[u_idx as usize] {
            stats.stale_pops += 1;
            continue; // stale queue entry
        }
        let u = MachineId::new(u_idx);
        for &link_id in query.network.outgoing(u) {
            stats.edge_scans += 1;
            let bound = bounds[link_id.index()];
            let v = bound.dst;
            if frozen.is_some_and(|f| f[v]) {
                continue;
            }
            // The unloaded-network bound: no slot can complete earlier
            // than this, and none may complete after window end or the
            // hold deadline. Overflow means unrepresentably late.
            let hold = query.hold_until[v];
            match bound.open.max(ready).checked_add(bound.duration) {
                Some(lb) if lb <= bound.close.min(hold) && lb < arrivals[v] => {}
                _ => {
                    stats.lb_prunes += 1;
                    continue;
                }
            }
            stats.relaxations += 1;
            let Some(slot) =
                query.ledger.earliest_transfer(query.network, link_id, ready, query.size, hold)
            else {
                continue;
            };
            if slot.arrival < arrivals[v] {
                arrivals[v] = slot.arrival;
                hops[v] = Some(Hop {
                    from: u,
                    to: MachineId::new(v as u32),
                    link: link_id,
                    start: slot.start,
                    arrival: slot.arrival,
                });
                queue.push(slot.arrival, v as u32);
                stats.heap_pushes += 1;
            }
        }
    }
}

/// Computes the earliest-arrival tree for one item.
///
/// For every machine the result reports the earliest time the item could
/// be available there, starting from any current copy, and the chain of
/// transfers achieving it. Checks performed per relaxation match §4.2:
/// link availability windows, link busy intervals, receiving-machine
/// storage through the hold deadline, and source availability times.
///
/// Determinism: ties between equal arrival times are broken by machine id,
/// and outgoing links are scanned in id order, so equal-cost trees are
/// always the same tree — with either queue backend.
///
/// # Panics
///
/// Panics if `hold_until` is shorter than the machine count, or a source
/// machine id is out of range.
#[must_use]
pub fn earliest_arrival_tree(query: &ItemQuery<'_>) -> ArrivalTree {
    let n = query.network.machine_count();
    assert!(query.hold_until.len() >= n, "hold_until must cover every machine");

    let bounds = link_bounds(query.network, query.size);
    let mut arrivals = vec![SimTime::MAX; n];
    let mut hops: Vec<Option<Hop>> = vec![None; n];
    let mut queue = MonotoneQueue::new(query.horizon);
    let mut stats = SearchStats::default();

    for &(machine, available_at) in query.sources {
        let slot = &mut arrivals[machine.index()];
        if available_at < *slot {
            *slot = available_at;
            hops[machine.index()] = None;
            queue.push(available_at, machine.index() as u32);
            stats.heap_pushes += 1;
        }
    }

    run_search(query, &bounds, &mut arrivals, &mut hops, &mut queue, None, &mut stats);
    stats.publish(&queue);

    ArrivalTree::new(arrivals, hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_model::link::VirtualLink;
    use dstage_model::machine::Machine;
    use dstage_model::network::NetworkBuilder;
    use dstage_model::units::BitsPerSec;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Builds a line 0 -> 1 -> 2 plus a slow direct link 0 -> 2.
    ///
    /// Link speeds: 1 byte/ms on the line hops, 0.25 byte/ms direct.
    fn line_net() -> Network {
        let mut b = NetworkBuilder::new();
        for i in 0..3 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        let win = SimTime::from_hours(1);
        b.add_link(VirtualLink::new(m(0), m(1), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(m(1), m(2), SimTime::ZERO, win, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(m(0), m(2), SimTime::ZERO, win, BitsPerSec::new(2_000)));
        b.build()
    }

    fn max_hold(n: usize) -> Vec<SimTime> {
        vec![SimTime::MAX; n]
    }

    #[test]
    fn picks_two_hop_route_when_faster() {
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        // 10_000 bytes: two hops take 10+10 s; direct takes 40 s.
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert_eq!(tree.arrival(m(0)), t(0));
        assert_eq!(tree.arrival(m(1)), t(10));
        assert_eq!(tree.arrival(m(2)), t(20));
        let path = tree.path_to(m(2)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].to, m(1));
    }

    #[test]
    fn picks_direct_route_when_line_blocked() {
        let net = line_net();
        let mut ledger = NetworkLedger::new(&net);
        // Make hop 1->2 (link id 1) busy for a long time.
        ledger
            .commit_transfer(
                &net,
                dstage_model::ids::VirtualLinkId::new(1),
                t(0),
                Bytes::new(100_000), // 100 s
                SimTime::MAX,
            )
            .unwrap();
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::MAX,
        });
        // Direct: 40 s. Via line: 10 s + wait to 100 + 10 = 110 s.
        assert_eq!(tree.arrival(m(2)), t(40));
        assert_eq!(tree.path_to(m(2)).unwrap().len(), 1);
    }

    #[test]
    fn multiple_sources_choose_nearest() {
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        // A copy at machine 1 (available late) and machine 0 (early).
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0)), (m(1), t(5))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        // m2 via m1's copy: ready 5, 10 s hop => 15. Via m0: 20. Direct: 40.
        assert_eq!(tree.arrival(m(2)), t(15));
        let path = tree.path_to(m(2)).unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].from, m(1));
    }

    #[test]
    fn source_availability_delays_everything() {
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(100))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert_eq!(tree.arrival(m(1)), t(110));
        assert_eq!(tree.arrival(m(2)), t(120));
    }

    #[test]
    fn unreachable_when_no_links() {
        let mut b = NetworkBuilder::new();
        b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        b.add_machine(Machine::new("b", Bytes::from_mib(1)));
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(2);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(1),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert!(tree.is_reachable(m(0)));
        assert!(!tree.is_reachable(m(1)));
    }

    #[test]
    fn storage_full_machine_is_bypassed() {
        let net = line_net();
        let mut ledger = NetworkLedger::new(&net);
        // Fill machine 1 completely for the whole horizon.
        ledger.force_storage(m(1), Bytes::from_mib(1), t(0), SimTime::MAX);
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert!(!tree.is_reachable(m(1)));
        // m2 still reachable via the slow direct link.
        assert_eq!(tree.arrival(m(2)), t(40));
    }

    #[test]
    fn hold_deadline_prunes_late_paths() {
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        // Intermediate hold deadlines force completion by t=15 at m1/m2.
        let hold = vec![t(15), t(15), t(15)];
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        // 0->1 arrives at 10 <= 15: ok. 1->2 would arrive at 20 > 15: no.
        // Direct 0->2 arrives at 40 > 15: no.
        assert_eq!(tree.arrival(m(1)), t(10));
        assert!(!tree.is_reachable(m(2)));
    }

    #[test]
    fn window_gaps_force_waiting() {
        // One link available only during [60 s, 120 s).
        let mut b = NetworkBuilder::new();
        b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        b.add_machine(Machine::new("b", Bytes::from_mib(1)));
        b.add_link(VirtualLink::new(m(0), m(1), t(60), t(120), BitsPerSec::new(8_000)));
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(2);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert_eq!(tree.arrival(m(1)), t(70));
        assert_eq!(tree.hop_into(m(1)).unwrap().start, t(60));
    }

    #[test]
    fn parallel_virtual_links_pick_best_window() {
        // Two virtual links a->b: early slow window and later fast window.
        let mut b = NetworkBuilder::new();
        b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        b.add_machine(Machine::new("b", Bytes::from_mib(1)));
        b.add_link(VirtualLink::new(m(0), m(1), t(0), t(300), BitsPerSec::new(800))); // 0.1 B/ms
        b.add_link(VirtualLink::new(m(0), m(1), t(30), t(300), BitsPerSec::new(8_000)));
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(2);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: t(300),
        });
        // Slow link: 100 s. Fast link: wait to 30 + 10 s = 40 s.
        assert_eq!(tree.arrival(m(1)), t(40));
        assert_eq!(tree.hop_into(m(1)).unwrap().link, dstage_model::ids::VirtualLinkId::new(1));
    }

    #[test]
    fn deterministic_tie_break_prefers_lower_link_id() {
        // Two identical links: the tree must always pick link 0, with
        // either queue backend.
        let mut b = NetworkBuilder::new();
        b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        b.add_machine(Machine::new("b", Bytes::from_mib(1)));
        for _ in 0..2 {
            b.add_link(VirtualLink::new(m(0), m(1), t(0), t(300), BitsPerSec::new(8_000)));
        }
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(2);
        for horizon in [t(300), SimTime::MAX] {
            for _ in 0..5 {
                let tree = earliest_arrival_tree(&ItemQuery {
                    network: &net,
                    ledger: &ledger,
                    size: Bytes::new(100),
                    sources: &[(m(0), t(0))],
                    hold_until: &hold,
                    horizon,
                });
                assert_eq!(
                    tree.hop_into(m(1)).unwrap().link,
                    dstage_model::ids::VirtualLinkId::new(0)
                );
            }
        }
    }

    #[test]
    fn latency_adds_to_every_hop() {
        use dstage_model::time::SimDuration;
        let mut b = NetworkBuilder::new();
        for i in 0..3 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        for i in 0..2u32 {
            b.add_link(VirtualLink::with_latency(
                m(i),
                m(i + 1),
                t(0),
                SimTime::from_hours(1),
                BitsPerSec::new(8_000),
                SimDuration::from_millis(500),
            ));
        }
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        // Each hop: 10 s serialization + 0.5 s latency.
        assert_eq!(tree.arrival(m(1)), SimTime::from_millis(10_500));
        assert_eq!(tree.arrival(m(2)), SimTime::from_millis(21_000));
    }

    #[test]
    fn no_sources_means_everything_unreachable() {
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(1),
            sources: &[],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        for i in 0..3 {
            assert!(!tree.is_reachable(m(i)));
        }
    }

    #[test]
    fn bucket_and_heap_backends_build_identical_trees() {
        let net = line_net();
        let mut ledger = NetworkLedger::new(&net);
        ledger
            .commit_transfer(
                &net,
                dstage_model::ids::VirtualLinkId::new(0),
                t(2),
                Bytes::new(30_000),
                SimTime::MAX,
            )
            .unwrap();
        let hold = max_hold(3);
        let sources = [(m(0), t(1)), (m(1), t(90))];
        let query = |horizon| ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &sources,
            hold_until: &hold,
            horizon,
        };
        let heap_tree = earliest_arrival_tree(&query(SimTime::MAX));
        let bucket_tree = earliest_arrival_tree(&query(SimTime::from_hours(2)));
        // Tight horizons still only affect bucketing, never the labels.
        let tight_tree = earliest_arrival_tree(&query(t(1)));
        assert_eq!(heap_tree, bucket_tree);
        assert_eq!(heap_tree, tight_tree);
    }

    #[test]
    fn lower_bound_prune_skips_probes_without_changing_labels() {
        // The direct 0->2 link can never beat the two-hop route for this
        // size, so its probe is pruned — labels must match the original
        // algorithm's regardless.
        let net = line_net();
        let ledger = NetworkLedger::new(&net);
        let hold = max_hold(3);
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &net,
            ledger: &ledger,
            size: Bytes::new(10_000),
            sources: &[(m(0), t(0))],
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        assert_eq!(tree.arrival(m(2)), t(20));
        assert_eq!(tree.path_to(m(2)).unwrap().len(), 2);
    }
}
