//! Shortest-path trees produced by the earliest-arrival search.

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::time::SimTime;

/// One scheduled-to-be hop: how the item would reach a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// The machine the item is sent from (already holds or will hold a copy).
    pub from: MachineId,
    /// The machine the item arrives at.
    pub to: MachineId,
    /// The virtual link carrying the transfer.
    pub link: VirtualLinkId,
    /// When the transfer starts occupying the link.
    pub start: SimTime,
    /// When the item is available at `to`.
    pub arrival: SimTime,
}

/// The result of one multiple-source earliest-arrival search for one data
/// item: per machine, the earliest time the item could be there, and the
/// hop that achieves it.
///
/// Machines that already hold a copy (the search's sources) have an
/// arrival equal to their copy's availability and no inbound hop.
/// Unreachable machines report [`SimTime::MAX`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTree {
    arrivals: Vec<SimTime>,
    hops: Vec<Option<Hop>>,
    /// Per machine, the first hop on its path (the transfer out of a
    /// source) — precomputed once so candidate-step enumeration does not
    /// re-walk the whole hop chain per destination. Derived from `hops`,
    /// so it never disagrees between equal trees.
    first_hops: Vec<Option<Hop>>,
}

impl ArrivalTree {
    pub(crate) fn new(arrivals: Vec<SimTime>, hops: Vec<Option<Hop>>) -> Self {
        debug_assert_eq!(arrivals.len(), hops.len());
        let first_hops = first_hops_of(&hops);
        ArrivalTree { arrivals, hops, first_hops }
    }

    /// Number of machines covered by the tree.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.arrivals.len()
    }

    /// Earliest arrival of the item at `machine` (`A_T` in the paper when
    /// `machine` is a requesting destination); [`SimTime::MAX`] when the
    /// item cannot reach it at all.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn arrival(&self, machine: MachineId) -> SimTime {
        self.arrivals[machine.index()]
    }

    /// Whether the item can reach `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn is_reachable(&self, machine: MachineId) -> bool {
        self.arrivals[machine.index()] != SimTime::MAX
    }

    /// The hop that brings the item to `machine`, or `None` when the
    /// machine is a source (already holds a copy) or unreachable.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn hop_into(&self, machine: MachineId) -> Option<Hop> {
        self.hops[machine.index()]
    }

    /// The full chain of hops from a current copy holder to `machine`,
    /// in travel order. Empty when `machine` is itself a source.
    ///
    /// Returns `None` when `machine` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn path_to(&self, machine: MachineId) -> Option<Vec<Hop>> {
        if !self.is_reachable(machine) {
            return None;
        }
        let mut chain = Vec::new();
        let mut cursor = machine;
        while let Some(hop) = self.hops[cursor.index()] {
            chain.push(hop);
            cursor = hop.from;
        }
        chain.reverse();
        Some(chain)
    }

    /// The *first* hop on the path to `machine`: the transfer out of a
    /// machine that already holds a copy. `None` when the machine is a
    /// source itself or unreachable.
    ///
    /// This is the paper's "next machine in the shortest path" (§4.8): the
    /// receiving end of this hop is the `M[r]` that defines `Drq[i, r]`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn first_hop_toward(&self, machine: MachineId) -> Option<Hop> {
        self.first_hops[machine.index()]
    }

    /// Borrowed label/hop views for the incremental repair path.
    pub(crate) fn parts(&self) -> (&[SimTime], &[Option<Hop>]) {
        (&self.arrivals, &self.hops)
    }

    /// Iterates over every hop in the tree (each machine's inbound hop).
    pub fn hops(&self) -> impl Iterator<Item = Hop> + '_ {
        self.hops.iter().filter_map(|h| *h)
    }

    /// Whether any hop in the tree uses `link` — the link half of the
    /// dirty-tracking predicate (see DESIGN.md §3).
    #[must_use]
    pub fn uses_link(&self, link: VirtualLinkId) -> bool {
        self.hops().any(|h| h.link == link)
    }

    /// Whether the tree would place a new copy on `machine` (i.e. the
    /// machine is reached via a hop) — the storage half of the
    /// dirty-tracking predicate.
    #[must_use]
    pub fn stores_on(&self, machine: MachineId) -> bool {
        self.hops[machine.index()].is_some()
    }
}

/// Resolves each machine's first hop in O(n) total with iterative path
/// compression: walk up until a machine with a known answer (a source,
/// an unreachable machine, or one resolved earlier), then unwind.
fn first_hops_of(hops: &[Option<Hop>]) -> Vec<Option<Hop>> {
    let n = hops.len();
    let mut first_hops: Vec<Option<Hop>> = vec![None; n];
    let mut done: Vec<bool> = hops.iter().map(Option::is_none).collect();
    let mut chain: Vec<usize> = Vec::new();
    for start in 0..n {
        let mut cursor = start;
        while !done[cursor] {
            chain.push(cursor);
            cursor = hops[cursor].expect("undone machines have an inbound hop").from.index();
        }
        // `cursor` is resolved: its first hop (None exactly when it is a
        // source or unreachable, i.e. a chain root).
        let mut inherited = first_hops[cursor];
        while let Some(machine) = chain.pop() {
            let inbound = hops[machine].expect("chained machines have an inbound hop");
            // A root parent means `machine`'s own inbound hop leaves a
            // source: it IS the first hop.
            let first = inherited.unwrap_or(inbound);
            first_hops[machine] = Some(first);
            done[machine] = true;
            inherited = Some(first);
        }
    }
    first_hops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Source 0 -> 1 -> 2, machine 3 unreachable.
    fn sample() -> ArrivalTree {
        let h1 =
            Hop { from: m(0), to: m(1), link: VirtualLinkId::new(0), start: t(0), arrival: t(5) };
        let h2 =
            Hop { from: m(1), to: m(2), link: VirtualLinkId::new(1), start: t(5), arrival: t(9) };
        ArrivalTree::new(vec![t(0), t(5), t(9), SimTime::MAX], vec![None, Some(h1), Some(h2), None])
    }

    #[test]
    fn arrivals_and_reachability() {
        let tr = sample();
        assert_eq!(tr.machine_count(), 4);
        assert_eq!(tr.arrival(m(0)), t(0));
        assert_eq!(tr.arrival(m(2)), t(9));
        assert!(tr.is_reachable(m(2)));
        assert!(!tr.is_reachable(m(3)));
    }

    #[test]
    fn path_to_walks_the_chain() {
        let tr = sample();
        let path = tr.path_to(m(2)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].from, m(0));
        assert_eq!(path[0].to, m(1));
        assert_eq!(path[1].from, m(1));
        assert_eq!(path[1].to, m(2));
        assert_eq!(tr.path_to(m(0)).unwrap(), vec![]);
        assert_eq!(tr.path_to(m(3)), None);
    }

    #[test]
    fn first_hop_is_out_of_a_source() {
        let tr = sample();
        let hop = tr.first_hop_toward(m(2)).unwrap();
        assert_eq!(hop.from, m(0));
        assert_eq!(hop.to, m(1));
        assert_eq!(tr.first_hop_toward(m(1)).unwrap().to, m(1));
        assert_eq!(tr.first_hop_toward(m(0)), None);
        assert_eq!(tr.first_hop_toward(m(3)), None);
    }

    #[test]
    fn dirty_tracking_predicates() {
        let tr = sample();
        assert!(tr.uses_link(VirtualLinkId::new(0)));
        assert!(tr.uses_link(VirtualLinkId::new(1)));
        assert!(!tr.uses_link(VirtualLinkId::new(2)));
        assert!(tr.stores_on(m(1)));
        assert!(tr.stores_on(m(2)));
        assert!(!tr.stores_on(m(0)));
        assert!(!tr.stores_on(m(3)));
    }

    #[test]
    fn hops_iterator_yields_each_edge_once() {
        let tr = sample();
        assert_eq!(tr.hops().count(), 2);
    }

    #[test]
    fn precomputed_first_hops_match_a_chain_walk() {
        // A branching tree: 0 -> {1, 2}, 1 -> 3, 3 -> 4, plus source 5
        // -> 6, so compression crosses shared prefixes and distinct roots.
        let hop = |from: u32, to: u32, link: u32, s: u64| Hop {
            from: m(from),
            to: m(to),
            link: VirtualLinkId::new(link),
            start: t(s),
            arrival: t(s + 2),
        };
        let hops = vec![
            None,
            Some(hop(0, 1, 0, 0)),
            Some(hop(0, 2, 1, 1)),
            Some(hop(1, 3, 2, 2)),
            Some(hop(3, 4, 3, 4)),
            None,
            Some(hop(5, 6, 4, 0)),
        ];
        let arrivals = vec![t(0), t(2), t(3), t(4), t(6), t(0), t(2)];
        let tr = ArrivalTree::new(arrivals, hops.clone());
        for i in 0..hops.len() {
            // The original implementation: walk the chain to the root.
            let expected = hops[i].map(|mut current| {
                while let Some(prev) = hops[current.from.index()] {
                    current = prev;
                }
                current
            });
            assert_eq!(tr.first_hop_toward(m(i as u32)), expected, "machine {i}");
        }
    }
}
