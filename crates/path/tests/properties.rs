//! Property-based tests for the earliest-arrival search.
//!
//! The two load-bearing claims are checked against randomized networks:
//!
//! 1. **Exactness** — the label-setting (Dijkstra) result equals a
//!    Bellman-Ford-style relax-to-fixpoint reference, i.e. the FIFO
//!    argument for label-setting holds for our time-dependent edges.
//! 2. **Commit consistency** — every hop the tree promises can actually be
//!    committed to the ledger at exactly the promised times.

use dstage_model::ids::MachineId;
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::{Network, NetworkBuilder};
use dstage_model::time::SimTime;
use dstage_model::units::{BitsPerSec, Bytes};
use dstage_path::{earliest_arrival_tree, ItemQuery};
use dstage_resources::ledger::NetworkLedger;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomNet {
    machines: usize,
    /// (src, dst, window_start_s, window_len_s, bytes_per_ms)
    links: Vec<(usize, usize, u64, u64, u64)>,
    /// capacity per machine, bytes
    caps: Vec<u64>,
}

fn random_net_strategy() -> impl Strategy<Value = RandomNet> {
    (2usize..7).prop_flat_map(|machines| {
        let links = prop::collection::vec(
            (0..machines, 0..machines, 0u64..200, 1u64..400, 1u64..20),
            1..20,
        );
        let caps = prop::collection::vec(1_000u64..1_000_000, machines);
        (Just(machines), links, caps).prop_map(|(machines, links, caps)| RandomNet {
            machines,
            links,
            caps,
        })
    })
}

fn build(net: &RandomNet) -> Network {
    let mut b = NetworkBuilder::new();
    for i in 0..net.machines {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::new(net.caps[i])));
    }
    for &(s, d, ws, wl, speed) in &net.links {
        if s == d {
            continue;
        }
        b.add_link(VirtualLink::new(
            MachineId::new(s as u32),
            MachineId::new(d as u32),
            SimTime::from_secs(ws),
            SimTime::from_secs(ws + wl),
            BitsPerSec::new(speed * 8_000), // speed bytes per ms
        ));
    }
    b.build()
}

/// Relax every edge repeatedly until nothing changes — a slow but obviously
/// correct reference for earliest arrivals.
fn fixpoint_arrivals(
    network: &Network,
    ledger: &NetworkLedger,
    size: Bytes,
    sources: &[(MachineId, SimTime)],
    hold: &[SimTime],
) -> Vec<SimTime> {
    let n = network.machine_count();
    let mut arrivals = vec![SimTime::MAX; n];
    for &(m, at) in sources {
        arrivals[m.index()] = arrivals[m.index()].min(at);
    }
    loop {
        let mut changed = false;
        for (link_id, link) in network.links() {
            let u = link.source().index();
            if arrivals[u] == SimTime::MAX {
                continue;
            }
            let v = link.destination();
            if let Some(slot) =
                ledger.earliest_transfer(network, link_id, arrivals[u], size, hold[v.index()])
            {
                if slot.arrival < arrivals[v.index()] {
                    arrivals[v.index()] = slot.arrival;
                    changed = true;
                }
            }
        }
        if !changed {
            return arrivals;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_fixpoint_reference(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
        src_avail in 0u64..100,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::from_secs(src_avail))];
        let query = ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
        };
        let tree = earliest_arrival_tree(&query);
        let reference = fixpoint_arrivals(&network, &ledger, Bytes::new(size), &sources, &hold);
        for (i, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(
                tree.arrival(MachineId::new(i as u32)),
                expected,
                "machine {} disagrees", i
            );
        }
    }

    #[test]
    fn tree_hops_commit_at_promised_times(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
        });
        // Committing every tree hop (in start order) must succeed exactly
        // as promised: distinct links and distinct receiving machines mean
        // no internal conflicts.
        let mut mutable = ledger.clone();
        let mut hops: Vec<_> = tree.hops().collect();
        hops.sort_by_key(|h| (h.start, h.link));
        for hop in hops {
            let slot = mutable
                .commit_transfer(&network, hop.link, hop.start, Bytes::new(size), SimTime::MAX)
                .expect("tree hop must be committable");
            prop_assert_eq!(slot.arrival, hop.arrival);
        }
    }

    #[test]
    fn arrivals_never_improve_as_resources_are_consumed(
        net in random_net_strategy(),
        size in 1u64..20_000,
        src in 0usize..7,
        blocked_link in 0usize..20,
        block_len in 1u64..200,
    ) {
        let network = build(&net);
        if network.link_count() == 0 {
            return Ok(());
        }
        let src = MachineId::new((src % net.machines) as u32);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let before = {
            let ledger = NetworkLedger::new(&network);
            earliest_arrival_tree(&ItemQuery {
                network: &network,
                ledger: &ledger,
                size: Bytes::new(size),
                sources: &sources,
                hold_until: &hold,
            })
        };
        // Consume some resources: reserve a chunk of one link's window.
        let mut ledger = NetworkLedger::new(&network);
        let link_id = dstage_model::ids::VirtualLinkId::new(
            (blocked_link % network.link_count()) as u32,
        );
        let link = network.link(link_id);
        let block_end = link.end().min(link.start() + dstage_model::time::SimDuration::from_secs(block_len));
        if block_end > link.start() {
            // Reserve directly on the busy set via a zero-storage commit is
            // not possible; emulate contention with storage instead when
            // commit fails.
            let blocker = Bytes::new(block_len * 1_000);
            let _ = ledger.commit_transfer(&network, link_id, link.start(), blocker, SimTime::MAX);
        }
        let after = earliest_arrival_tree(&ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
        });
        for i in 0..net.machines {
            let m = MachineId::new(i as u32);
            prop_assert!(
                after.arrival(m) >= before.arrival(m),
                "arrival improved after consuming resources at machine {}", i
            );
        }
    }
}
