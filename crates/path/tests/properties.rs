//! Property-based tests for the earliest-arrival search.
//!
//! The load-bearing claims are checked against randomized networks:
//!
//! 1. **Exactness** — the label-setting (Dijkstra) result equals a
//!    Bellman-Ford-style relax-to-fixpoint reference, i.e. the FIFO
//!    argument for label-setting holds for our time-dependent edges.
//! 2. **Commit consistency** — every hop the tree promises can actually be
//!    committed to the ledger at exactly the promised times.
//! 3. **Queue equivalence** — the horizon-bucketed queue builds trees
//!    identical to the binary heap's, tie-breaks included.
//! 4. **Repair exactness** — after arbitrary consumption sequences, an
//!    incrementally repaired tree equals a from-scratch rebuild.
//! 5. **First-hop memo** — the precomputed first hop equals a walk up the
//!    hop chain.

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::{Network, NetworkBuilder};
use dstage_model::time::SimTime;
use dstage_model::units::{BitsPerSec, Bytes};
use dstage_path::{earliest_arrival_tree, repair_tree, ItemQuery};
use dstage_resources::ledger::NetworkLedger;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomNet {
    machines: usize,
    /// (src, dst, window_start_s, window_len_s, bytes_per_ms)
    links: Vec<(usize, usize, u64, u64, u64)>,
    /// capacity per machine, bytes
    caps: Vec<u64>,
}

fn random_net_strategy() -> impl Strategy<Value = RandomNet> {
    (2usize..7).prop_flat_map(|machines| {
        let links = prop::collection::vec(
            (0..machines, 0..machines, 0u64..200, 1u64..400, 1u64..20),
            1..20,
        );
        let caps = prop::collection::vec(1_000u64..1_000_000, machines);
        (Just(machines), links, caps).prop_map(|(machines, links, caps)| RandomNet {
            machines,
            links,
            caps,
        })
    })
}

fn build(net: &RandomNet) -> Network {
    let mut b = NetworkBuilder::new();
    for i in 0..net.machines {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::new(net.caps[i])));
    }
    for &(s, d, ws, wl, speed) in &net.links {
        if s == d {
            continue;
        }
        b.add_link(VirtualLink::new(
            MachineId::new(s as u32),
            MachineId::new(d as u32),
            SimTime::from_secs(ws),
            SimTime::from_secs(ws + wl),
            BitsPerSec::new(speed * 8_000), // speed bytes per ms
        ));
    }
    b.build()
}

/// Assembles an [`ItemQuery`] over borrowed parts (a closure cannot tie
/// the passed-in ledger's lifetime to the returned query).
fn query_of<'a>(
    network: &'a Network,
    ledger: &'a NetworkLedger,
    size: u64,
    sources: &'a [(MachineId, SimTime)],
    hold: &'a [SimTime],
    horizon: SimTime,
) -> ItemQuery<'a> {
    ItemQuery { network, ledger, size: Bytes::new(size), sources, hold_until: hold, horizon }
}

/// Relax every edge repeatedly until nothing changes — a slow but obviously
/// correct reference for earliest arrivals.
fn fixpoint_arrivals(
    network: &Network,
    ledger: &NetworkLedger,
    size: Bytes,
    sources: &[(MachineId, SimTime)],
    hold: &[SimTime],
) -> Vec<SimTime> {
    let n = network.machine_count();
    let mut arrivals = vec![SimTime::MAX; n];
    for &(m, at) in sources {
        arrivals[m.index()] = arrivals[m.index()].min(at);
    }
    loop {
        let mut changed = false;
        for (link_id, link) in network.links() {
            let u = link.source().index();
            if arrivals[u] == SimTime::MAX {
                continue;
            }
            let v = link.destination();
            if let Some(slot) =
                ledger.earliest_transfer(network, link_id, arrivals[u], size, hold[v.index()])
            {
                if slot.arrival < arrivals[v.index()] {
                    arrivals[v.index()] = slot.arrival;
                    changed = true;
                }
            }
        }
        if !changed {
            return arrivals;
        }
    }
}

/// Applies `seeds`-driven random commits to `ledger`, returning the
/// consumed links and receiving machines (the repair journal's view).
fn consume_randomly(
    network: &Network,
    ledger: &mut NetworkLedger,
    commits: &[(usize, u64, u64)],
) -> (Vec<VirtualLinkId>, Vec<MachineId>) {
    let mut dirty_links = Vec::new();
    let mut dirty_machines = Vec::new();
    for &(link_pick, start_s, size) in commits {
        let link_id = VirtualLinkId::new((link_pick % network.link_count()) as u32);
        let link = network.link(link_id);
        // Probe for a feasible slot first so most commits land.
        let Some(slot) = ledger.earliest_transfer(
            network,
            link_id,
            link.start().max(SimTime::from_secs(start_s)),
            Bytes::new(size),
            SimTime::MAX,
        ) else {
            continue;
        };
        if ledger
            .commit_transfer(network, link_id, slot.start, Bytes::new(size), SimTime::MAX)
            .is_ok()
        {
            dirty_links.push(link_id);
            dirty_machines.push(link.destination());
        }
    }
    (dirty_links, dirty_machines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_fixpoint_reference(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
        src_avail in 0u64..100,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::from_secs(src_avail))];
        let query = ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        };
        let tree = earliest_arrival_tree(&query);
        let reference = fixpoint_arrivals(&network, &ledger, Bytes::new(size), &sources, &hold);
        for (i, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(
                tree.arrival(MachineId::new(i as u32)),
                expected,
                "machine {} disagrees", i
            );
        }
    }

    #[test]
    fn tree_hops_commit_at_promised_times(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::MAX,
        });
        // Committing every tree hop (in start order) must succeed exactly
        // as promised: distinct links and distinct receiving machines mean
        // no internal conflicts.
        let mut mutable = ledger.clone();
        let mut hops: Vec<_> = tree.hops().collect();
        hops.sort_by_key(|h| (h.start, h.link));
        for hop in hops {
            let slot = mutable
                .commit_transfer(&network, hop.link, hop.start, Bytes::new(size), SimTime::MAX)
                .expect("tree hop must be committable");
            prop_assert_eq!(slot.arrival, hop.arrival);
        }
    }

    #[test]
    fn arrivals_never_improve_as_resources_are_consumed(
        net in random_net_strategy(),
        size in 1u64..20_000,
        src in 0usize..7,
        blocked_link in 0usize..20,
        block_len in 1u64..200,
    ) {
        let network = build(&net);
        if network.link_count() == 0 {
            return Ok(());
        }
        let src = MachineId::new((src % net.machines) as u32);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let before = {
            let ledger = NetworkLedger::new(&network);
            earliest_arrival_tree(&ItemQuery {
                network: &network,
                ledger: &ledger,
                size: Bytes::new(size),
                sources: &sources,
                hold_until: &hold,
                horizon: SimTime::from_hours(2),
            })
        };
        // Consume some resources: reserve a chunk of one link's window.
        let mut ledger = NetworkLedger::new(&network);
        let link_id = dstage_model::ids::VirtualLinkId::new(
            (blocked_link % network.link_count()) as u32,
        );
        let link = network.link(link_id);
        let block_end = link.end().min(link.start() + dstage_model::time::SimDuration::from_secs(block_len));
        if block_end > link.start() {
            // Reserve directly on the busy set via a zero-storage commit is
            // not possible; emulate contention with storage instead when
            // commit fails.
            let blocker = Bytes::new(block_len * 1_000);
            let _ = ledger.commit_transfer(&network, link_id, link.start(), blocker, SimTime::MAX);
        }
        let after = earliest_arrival_tree(&ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        for i in 0..net.machines {
            let m = MachineId::new(i as u32);
            prop_assert!(
                after.arrival(m) >= before.arrival(m),
                "arrival improved after consuming resources at machine {}", i
            );
        }
    }

    #[test]
    fn bucket_queue_builds_the_same_tree_as_the_heap(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
        src_avail in 0u64..100,
        horizon_s in 1u64..800,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::from_secs(src_avail))];
        let query = |horizon| ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
            horizon,
        };
        // SimTime::MAX forces the binary-heap fallback; any finite horizon
        // — including ones far smaller than actual arrivals — selects the
        // bucket queue. The trees must be equal either way, which also
        // pins the deterministic lower-link-id tie-break: any divergence
        // in pop order would surface as a different winning hop.
        let heap_tree = earliest_arrival_tree(&query(SimTime::MAX));
        let bucket_tree = earliest_arrival_tree(&query(SimTime::from_secs(horizon_s)));
        prop_assert_eq!(&heap_tree, &bucket_tree);
    }

    #[test]
    fn repaired_tree_equals_scratch_rebuild_after_commits(
        net in random_net_strategy(),
        size in 1u64..20_000,
        src in 0usize..7,
        src_avail in 0u64..50,
        commits in prop::collection::vec((0usize..32, 0u64..300, 1u64..30_000), 0..12),
    ) {
        let network = build(&net);
        if network.link_count() == 0 {
            return Ok(());
        }
        let src = MachineId::new((src % net.machines) as u32);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::from_secs(src_avail))];
        let mut ledger = NetworkLedger::new(&network);
        let before = earliest_arrival_tree(&query_of(
            &network, &ledger, size, &sources, &hold, SimTime::from_hours(2),
        ));
        let (dirty_links, dirty_machines) = consume_randomly(&network, &mut ledger, &commits);
        for horizon in [SimTime::from_hours(2), SimTime::MAX] {
            let query = query_of(&network, &ledger, size, &sources, &hold, horizon);
            let repaired = repair_tree(&query, &before, &dirty_links, &dirty_machines);
            let scratch = earliest_arrival_tree(&query);
            prop_assert_eq!(&repaired, &scratch);
        }
    }

    #[test]
    fn repair_composes_across_consumption_rounds(
        net in random_net_strategy(),
        size in 1u64..20_000,
        src in 0usize..7,
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..32, 0u64..300, 1u64..30_000), 1..4),
            1..4,
        ),
    ) {
        // Repairing a repaired tree must keep matching scratch — the
        // scheduler repairs incrementally run after run.
        let network = build(&net);
        if network.link_count() == 0 {
            return Ok(());
        }
        let src = MachineId::new((src % net.machines) as u32);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let mut ledger = NetworkLedger::new(&network);
        let horizon = SimTime::from_hours(2);
        let mut tree = earliest_arrival_tree(&query_of(
            &network, &ledger, size, &sources, &hold, horizon,
        ));
        for commits in &rounds {
            let (dirty_links, dirty_machines) = consume_randomly(&network, &mut ledger, commits);
            let query = query_of(&network, &ledger, size, &sources, &hold, horizon);
            tree = repair_tree(&query, &tree, &dirty_links, &dirty_machines);
            let scratch = earliest_arrival_tree(&query);
            prop_assert_eq!(&tree, &scratch);
        }
    }

    #[test]
    fn first_hop_memo_matches_chain_walk(
        net in random_net_strategy(),
        size in 1u64..40_000,
        src in 0usize..7,
    ) {
        let network = build(&net);
        let src = MachineId::new((src % net.machines) as u32);
        let ledger = NetworkLedger::new(&network);
        let hold = vec![SimTime::MAX; net.machines];
        let sources = [(src, SimTime::ZERO)];
        let tree = earliest_arrival_tree(&ItemQuery {
            network: &network,
            ledger: &ledger,
            size: Bytes::new(size),
            sources: &sources,
            hold_until: &hold,
            horizon: SimTime::from_hours(2),
        });
        for i in 0..net.machines {
            let m = MachineId::new(i as u32);
            let walked = tree.hop_into(m).map(|mut hop| {
                while let Some(prev) = tree.hop_into(hop.from) {
                    hop = prev;
                }
                hop
            });
            prop_assert_eq!(tree.first_hop_toward(m), walked, "machine {}", i);
        }
    }
}
