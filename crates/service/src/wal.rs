//! The write-ahead decision log: checksummed, length-prefixed record
//! segments with configurable fsync policies and deterministic crash
//! points.
//!
//! A segment file is the magic header [`WAL_MAGIC`] followed by zero or
//! more records, each framed as
//!
//! ```text
//! [u32 le payload length][u32 le CRC-32 of payload][payload bytes]
//! ```
//!
//! where the payload is the compact JSON serialization of one decision-
//! log entry (the same objects the `snapshot` verb's `log` array
//! carries). Appends go straight to the file descriptor — no userspace
//! buffering — so a process kill loses at most what the *kernel* had
//! not flushed; only an OS crash can lose unsynced records, and the
//! [`FsyncPolicy`] chooses how much of that window to close.
//!
//! Reading is tolerant by construction: [`scan_segment`] walks records
//! until the first torn or corrupt one (short header, short payload,
//! CRC mismatch, or an implausible length) and reports the longest
//! valid prefix plus where it ends, so recovery can truncate the tail
//! and carry on. Corruption never panics and never invents records.
//!
//! Crash injection for the recovery tests lives here too: the
//! `DSTAGE_CRASH_POINT=point[:n]` environment variable arms a named
//! point, and the nth time execution passes it the process aborts (a
//! real `SIGABRT`, not a panic — destructors must not tidy up the
//! simulated crash). [`crash_point`] is a no-op unless armed.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// First bytes of every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"DSTGWAL1";

/// Sanity bound on a single record's payload. A length prefix above
/// this is treated as corruption (a torn write inside the header), not
/// as an instruction to allocate gigabytes.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes of framing per record (length prefix + checksum).
pub const RECORD_HEADER_BYTES: u64 = 8;

/// When appended records are pushed to stable storage.
///
/// Every policy writes records to the OS immediately; the policy only
/// decides when `fsync` pins them through an OS crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync before every response is released: an acknowledged
    /// decision survives even an OS crash.
    Always,
    /// Fsync at most once per interval: bounded data loss on OS crash,
    /// near-`Never` throughput.
    Interval(Duration),
    /// Never fsync on the hot path (drain still does): a process crash
    /// loses nothing, an OS crash may lose the unsynced suffix.
    Never,
}

impl FsyncPolicy {
    /// Parses `always` | `interval:<ms>` | `never`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid spellings.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(FsyncPolicy::Interval(Duration::from_millis(ms))),
                    _ => Err(format!("invalid fsync interval `{ms}` (positive milliseconds)")),
                },
                None => Err(format!(
                    "unknown durability policy `{other}` (valid: always, interval:<ms>, never)"
                )),
            },
        }
    }

    /// The canonical spelling [`FsyncPolicy::parse`] accepts back.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) lookup table, built at
/// compile time.
static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 checksum of `data` (IEEE polynomial, zlib-compatible).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The armed crash point, parsed once from `DSTAGE_CRASH_POINT`
/// (`point` or `point:n`, n ≥ 1 meaning the nth passage fires).
static CRASH_SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
/// Passages through the armed point so far.
static CRASH_HITS: AtomicU64 = AtomicU64::new(0);

fn crash_spec() -> &'static Option<(String, u64)> {
    CRASH_SPEC.get_or_init(|| {
        let raw = std::env::var("DSTAGE_CRASH_POINT").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        match raw.split_once(':') {
            Some((name, nth)) => {
                let nth = nth.parse::<u64>().ok().filter(|&n| n >= 1)?;
                Some((name.to_string(), nth))
            }
            None => Some((raw.to_string(), 1)),
        }
    })
}

/// True when this passage through `name` is the armed one. Counts the
/// passage either way, so `point:3` fires on the third call exactly.
fn crash_fires(name: &str) -> bool {
    match crash_spec() {
        Some((point, nth)) if point == name => {
            CRASH_HITS.fetch_add(1, Ordering::SeqCst) + 1 == *nth
        }
        _ => false,
    }
}

/// Aborts the process if the crash point `name` is armed for this
/// passage (`DSTAGE_CRASH_POINT=name[:n]`); otherwise a no-op.
///
/// Named points on the durability path: `wal_append` (before a record's
/// bytes are written), `wal_tear` (after a partial record write — a
/// torn record), `pre_fsync` / `post_fsync` (around the WAL fsync),
/// `checkpoint_tmp` (temp checkpoint written, not yet renamed),
/// `checkpoint_rename` (renamed, old segments not yet removed).
pub fn crash_point(name: &str) {
    if crash_fires(name) {
        eprintln!("crash injection: aborting at `{name}`");
        std::process::abort();
    }
}

/// Appends framed records to one WAL segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SegmentWriter {
    /// Creates (or truncates) the segment at `path` and writes the
    /// magic header.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn create(path: &Path) -> io::Result<SegmentWriter> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        Ok(SegmentWriter { file, path: path.to_path_buf(), len: WAL_MAGIC.len() as u64 })
    }

    /// Opens the existing segment at `path` for appending after `len`
    /// validated bytes (anything beyond is discarded — the torn tail a
    /// scan refused).
    ///
    /// # Errors
    ///
    /// Propagates open/truncate/seek errors.
    pub fn open_end(path: &Path, len: u64) -> io::Result<SegmentWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(len)?;
        file.seek(SeekFrom::Start(len))?;
        Ok(SegmentWriter { file, path: path.to_path_buf(), len })
    }

    /// The segment file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (header included).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds no records yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Appends one framed record. The bytes reach the OS before this
    /// returns (no userspace buffer); durability against an OS crash
    /// additionally needs [`SegmentWriter::sync`].
    ///
    /// # Errors
    ///
    /// Propagates write errors; the record may then be torn on disk,
    /// which a later scan detects and truncates.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        crash_point("wal_append");
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_BYTES)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        let mut frame = Vec::with_capacity(payload.len() + RECORD_HEADER_BYTES as usize);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if crash_fires("wal_tear") {
            // Simulate a torn write: half the frame reaches the disk,
            // then the process dies. Recovery must drop this record.
            let half = frame.len() / 2;
            let _ = self.file.write_all(&frame[..half]);
            let _ = self.file.sync_data();
            eprintln!("crash injection: aborting at `wal_tear`");
            std::process::abort();
        }
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        dstage_obs::metrics::SERVICE_WAL_APPENDS.inc();
        dstage_obs::metrics::SERVICE_WAL_BYTES.add(frame.len() as u64);
        Ok(())
    }

    /// Fsyncs the segment: everything appended so far survives an OS
    /// crash.
    ///
    /// # Errors
    ///
    /// Propagates the fsync error.
    pub fn sync(&mut self) -> io::Result<()> {
        crash_point("pre_fsync");
        let started = std::time::Instant::now();
        self.file.sync_data()?;
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        dstage_obs::metrics::SERVICE_WAL_FSYNCS.inc();
        dstage_obs::metrics::SERVICE_WAL_FSYNC_US.record(micros);
        crash_point("post_fsync");
        Ok(())
    }
}

/// One validated record of a scanned segment.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// The record payload (CRC-verified).
    pub payload: Vec<u8>,
    /// File offset of the record's first framing byte.
    pub start: u64,
    /// File offset one past the record's last payload byte.
    pub end: u64,
}

/// The tolerant read of one segment: its longest valid prefix.
#[derive(Debug)]
pub struct SegmentScan {
    /// CRC-valid records, in file order.
    pub records: Vec<ScannedRecord>,
    /// Bytes of the valid prefix (magic + intact records); the offset
    /// recovery truncates the file to.
    pub valid_len: u64,
    /// Whether bytes beyond `valid_len` existed (a torn or corrupt
    /// tail, or a foreign header).
    pub truncated: bool,
    /// Total file length at scan time.
    pub file_len: u64,
}

/// Reads a segment, stopping at the first torn or corrupt record: a
/// short header, an implausible length, a short payload, or a CRC
/// mismatch all end the valid prefix. Never panics on corruption and
/// never returns a record that was not written intact.
///
/// # Errors
///
/// Propagates errors opening or reading the file (not corruption —
/// corruption is reported through the scan).
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Not even a valid header: nothing in the file is trustworthy.
        return Ok(SegmentScan { records: Vec::new(), valid_len: 0, truncated: true, file_len });
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    loop {
        if offset == bytes.len() {
            return Ok(SegmentScan { records, valid_len: file_len, truncated: false, file_len });
        }
        let start = offset as u64;
        let Some(header) = bytes.get(offset..offset + RECORD_HEADER_BYTES as usize) else {
            break; // short header — torn tail
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 header bytes"));
        let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 header bytes"));
        if len > MAX_RECORD_BYTES {
            break; // implausible length — corrupt header
        }
        let body_start = offset + RECORD_HEADER_BYTES as usize;
        let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
            break; // short payload — torn tail
        };
        if crc32(payload) != expected_crc {
            break; // bit rot or a torn rewrite
        }
        offset = body_start + len as usize;
        records.push(ScannedRecord { payload: payload.to_vec(), start, end: offset as u64 });
    }
    let valid_len = records.last().map_or(WAL_MAGIC.len() as u64, |r| r.end);
    Ok(SegmentScan { records, valid_len, truncated: true, file_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dstage-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("wal-test.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // zlib's crc32("123456789") reference value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::Interval(Duration::from_millis(40)),
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.label()), Ok(policy));
        }
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("interval:fast").is_err());
    }

    #[test]
    fn write_then_scan_round_trips() {
        let path = temp_segment("roundtrip");
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"verb\":\"submit\"}"];
        let mut writer = SegmentWriter::create(&path).expect("create");
        for p in &payloads {
            writer.append(p).expect("append");
        }
        writer.sync().expect("sync");
        let scan = scan_segment(&path).expect("scan");
        assert!(!scan.truncated);
        assert_eq!(scan.valid_len, scan.file_len);
        let read: Vec<&[u8]> = scan.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(read, payloads);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_intact_record() {
        let path = temp_segment("torn");
        let mut writer = SegmentWriter::create(&path).expect("create");
        writer.append(b"first").expect("append");
        writer.append(b"second").expect("append");
        let intact = writer.len();
        drop(writer);
        // A torn third record: header promises 100 bytes, 3 arrive.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"abc");
        std::fs::write(&path, &bytes).expect("rewrite");
        let scan = scan_segment(&path).expect("scan");
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, intact);
        assert_eq!(scan.records.len(), 2);
        // Re-opening at the valid prefix drops the tail and appends
        // cleanly after it.
        let mut writer = SegmentWriter::open_end(&path, scan.valid_len).expect("open end");
        writer.append(b"third").expect("append");
        drop(writer);
        let scan = scan_segment(&path).expect("rescan");
        assert!(!scan.truncated);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].payload, b"third");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_invalidates_the_whole_segment() {
        let path = temp_segment("magic");
        let mut writer = SegmentWriter::create(&path).expect("create");
        writer.append(b"record").expect("append");
        drop(writer);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");
        let scan = scan_segment(&path).expect("scan");
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_payload_ends_the_valid_prefix_there() {
        let path = temp_segment("flip");
        let mut writer = SegmentWriter::create(&path).expect("create");
        writer.append(b"aaaaaaaa").expect("append");
        writer.append(b"bbbbbbbb").expect("append");
        writer.append(b"cccccccc").expect("append");
        drop(writer);
        let scan = scan_segment(&path).expect("scan");
        let second = &scan.records[1];
        let mut bytes = std::fs::read(&path).expect("read");
        let flip = (second.start + RECORD_HEADER_BYTES + 2) as usize;
        bytes[flip] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        let scan = scan_segment(&path).expect("rescan");
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"aaaaaaaa");
        assert_eq!(scan.valid_len, scan.records[0].end);
        std::fs::remove_file(&path).ok();
    }
}
