//! Crash-safe durability for the admission daemon: WAL staging and
//! group commit, atomic checkpoints with log compaction, and recovery.
//!
//! # Data-dir layout
//!
//! ```text
//! data/
//!   checkpoint-0000000000000512.ckpt   # engine snapshot covering 512 log records
//!   wal-0000000000000512.log           # decision-log records 512, 513, ...
//! ```
//!
//! Segment `wal-{S}.log` holds the consecutive decision-log records
//! starting at global index `S`; checkpoints are named by the record
//! count they cover. A checkpoint rotates the WAL to a fresh segment
//! and deletes everything it covers, so steady state is one checkpoint
//! plus one active segment (more only between a crash and the next
//! checkpoint).
//!
//! # Ordering contract
//!
//! [`Durability::stage`] must be called **while still holding the
//! engine's write lock** after a mutating verb: the lock serializes
//! decisions, so the WAL receives records in exactly the decision-log
//! order even when multiple epoch leaders interleave. The cheap fsync
//! decision ([`Durability::commit`]) happens after the lock is
//! released — concurrent committers coalesce into one group fsync.
//! A response is released to the client only after `commit` returns,
//! so under `--durability always` an acknowledged decision has been
//! fsynced.
//!
//! A WAL write or fsync failure after the in-memory commit is not
//! recoverable — the engine state and the log would diverge — so the
//! process aborts rather than acknowledge a decision it cannot make
//! durable.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::Value;

use crate::engine::{record_value, AdmissionEngine};
use crate::wal::{crash_point, scan_segment, FsyncPolicy, SegmentWriter};
use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::scenario::Scenario;

/// Default number of appended records between periodic checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 4_096;

/// The durability manager: one per data directory.
#[derive(Debug)]
pub struct Durability {
    data_dir: PathBuf,
    policy: FsyncPolicy,
    checkpoint_every: u64,
    state: Mutex<WalState>,
}

#[derive(Debug)]
struct WalState {
    writer: SegmentWriter,
    /// Total decision-log records made durable-or-staged so far: the
    /// checkpoint-covered prefix plus every record appended to the WAL.
    /// Always equals `engine.log().len()` once the write lock is free.
    staged: u64,
    /// Records guaranteed on stable storage (through the last fsync).
    synced: u64,
    /// Records covered by the newest checkpoint.
    covered: u64,
    last_sync: Instant,
}

/// What recovery found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Records restored from the checkpoint (0 with no checkpoint).
    pub checkpoint_records: u64,
    /// Records replayed from WAL segments beyond the checkpoint.
    pub replayed: u64,
    /// Whether a torn/corrupt tail (or an undecodable record) was
    /// truncated.
    pub truncated: bool,
    /// Bytes dropped by tail truncation, across all segments.
    pub truncated_bytes: u64,
    /// Wall time of the whole recovery.
    pub wall: Duration,
}

/// What one checkpoint covered and compacted away.
#[derive(Debug, Clone)]
pub struct CheckpointStats {
    /// Decision-log records the checkpoint covers.
    pub covered: u64,
    /// Checkpoint file size in bytes.
    pub bytes: u64,
    /// Fully-covered WAL segments deleted.
    pub segments_removed: u64,
    /// Superseded checkpoint files deleted.
    pub checkpoints_removed: u64,
}

fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("wal-{start:016}.log"))
}

fn checkpoint_path(dir: &Path, covered: u64) -> PathBuf {
    dir.join(format!("checkpoint-{covered:016}.ckpt"))
}

/// Parses `prefix-{n:016}.suffix` back to `n`.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// Lists `(n, path)` pairs for files named `prefix-{n:016}.suffix`,
/// ascending by `n`.
fn list_numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = parse_numbered(name, prefix, suffix) {
            found.push((n, entry.path()));
        }
    }
    found.sort_unstable_by_key(|&(n, _)| n);
    Ok(found)
}

/// Fsyncs a directory so renames and unlinks in it survive an OS crash.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Aborts the process: an in-memory commit could not be made durable.
fn die(context: &str, error: &io::Error) -> ! {
    eprintln!("fatal: {context}: {error}");
    std::process::abort();
}

impl Durability {
    /// Recovers the engine state from `data_dir` (creating it if
    /// absent) and opens the WAL for appending: loads the newest valid
    /// checkpoint, replays the WAL tail through the engine's replay
    /// path, truncates at the first torn or corrupt record, and leaves
    /// the active segment positioned exactly after the last surviving
    /// record.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures and for a checkpoint taken
    /// against a different catalog or scheduler configuration.
    /// Corruption of checkpoints or WAL tails is *not* an error — bad
    /// checkpoints are skipped and torn tails truncated.
    pub fn recover(
        data_dir: &Path,
        policy: FsyncPolicy,
        checkpoint_every: u64,
        catalog: &Scenario,
        heuristic: Heuristic,
        config: HeuristicConfig,
    ) -> Result<(Durability, AdmissionEngine, RecoveryReport), String> {
        let started = Instant::now();
        fs::create_dir_all(data_dir).map_err(|e| format!("create {}: {e}", data_dir.display()))?;
        // A crash can leave checkpoint temp files behind; they were
        // never renamed, so they cover nothing.
        for (_, path) in list_numbered(data_dir, "checkpoint-", ".ckpt.tmp")
            .map_err(|e| format!("list {}: {e}", data_dir.display()))?
        {
            fs::remove_file(&path).ok();
        }

        // Newest valid checkpoint wins; invalid ones (torn writes that
        // somehow got renamed, or stale formats) are deleted so they
        // cannot shadow an older good one on the next recovery.
        let mut engine = None;
        let mut covered = 0;
        let checkpoints = list_numbered(data_dir, "checkpoint-", ".ckpt")
            .map_err(|e| format!("list {}: {e}", data_dir.display()))?;
        for &(n, ref path) in checkpoints.iter().rev() {
            match load_checkpoint(path, catalog, heuristic, config.clone()) {
                Ok(restored) => {
                    if restored.log().len() as u64 != n {
                        eprintln!(
                            "recovery: {} covers {} records but is named for {n}; ignoring",
                            path.display(),
                            restored.log().len()
                        );
                        fs::remove_file(path).ok();
                        continue;
                    }
                    engine = Some(restored);
                    covered = n;
                    break;
                }
                Err(reason) if reason.contains("fingerprint mismatch") => {
                    // Not corruption: the operator pointed a different
                    // catalog/scheduler at this data-dir. Refuse loudly
                    // instead of silently starting fresh.
                    return Err(format!("{}: {reason}", path.display()));
                }
                Err(reason) => {
                    eprintln!("recovery: discarding {}: {reason}", path.display());
                    fs::remove_file(path).ok();
                }
            }
        }
        let mut engine =
            engine.unwrap_or_else(|| AdmissionEngine::new(catalog, heuristic, config.clone()));

        // Replay WAL segments past the checkpoint, in segment order.
        // `next` is the global index of the record the engine needs
        // next; records below it are already inside the checkpoint.
        let mut next = covered;
        let mut replayed = 0u64;
        let mut truncated = false;
        let mut truncated_bytes = 0u64;
        let mut tail: Option<(u64, PathBuf, u64)> = None; // (start, path, valid_len)
        let segments = list_numbered(data_dir, "wal-", ".log")
            .map_err(|e| format!("list {}: {e}", data_dir.display()))?;
        let mut chain_broken = false;
        for &(start, ref path) in &segments {
            if chain_broken {
                // Everything past a truncation (or a gap) is from a
                // future the surviving prefix never reached.
                truncated = true;
                truncated_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(path).ok();
                continue;
            }
            if start > next {
                // A hole in the record chain — the segment before this
                // one was lost or truncated away entirely.
                eprintln!(
                    "recovery: segment {} starts at {start} but only {next} records survive; \
                     dropping it",
                    path.display()
                );
                chain_broken = true;
                truncated = true;
                truncated_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(path).ok();
                continue;
            }
            let scan = scan_segment(path).map_err(|e| format!("scan {}: {e}", path.display()))?;
            let mut valid_len = scan.valid_len;
            for (i, record) in scan.records.iter().enumerate() {
                let index = start + i as u64;
                if index < next {
                    continue; // already inside the checkpoint
                }
                match replay_payload(&mut engine, &record.payload) {
                    Ok(()) => {
                        next += 1;
                        replayed += 1;
                        dstage_obs::metrics::SERVICE_RECOVERY_REPLAYED.inc();
                    }
                    Err(reason) => {
                        // A CRC-valid record the engine cannot replay is
                        // corruption all the same: cut the log here.
                        eprintln!(
                            "recovery: record {index} in {} does not replay ({reason}); \
                             truncating",
                            path.display()
                        );
                        valid_len = record.start;
                        chain_broken = true;
                        break;
                    }
                }
            }
            if valid_len < scan.file_len {
                truncated = true;
                truncated_bytes += scan.file_len - valid_len;
                dstage_obs::metrics::SERVICE_RECOVERY_TRUNCATED.inc();
            }
            chain_broken = chain_broken || scan.truncated;
            tail = Some((start, path.clone(), valid_len));
        }

        // Open the active segment: the surviving tail segment if its
        // numbering still lines up, else a fresh one at `next`.
        let writer = match tail {
            Some((start, path, valid_len)) if start <= next => {
                SegmentWriter::open_end(&path, valid_len)
                    .map_err(|e| format!("open {}: {e}", path.display()))?
            }
            _ => {
                let path = segment_path(data_dir, next);
                let writer = SegmentWriter::create(&path)
                    .map_err(|e| format!("create {}: {e}", path.display()))?;
                sync_dir(data_dir).map_err(|e| format!("sync {}: {e}", data_dir.display()))?;
                writer
            }
        };

        let wall = started.elapsed();
        dstage_obs::metrics::SERVICE_RECOVERY_WALL_US
            .record(u64::try_from(wall.as_micros()).unwrap_or(u64::MAX));
        let durability = Durability {
            data_dir: data_dir.to_path_buf(),
            policy,
            checkpoint_every,
            state: Mutex::new(WalState {
                writer,
                staged: next,
                synced: next,
                covered,
                last_sync: Instant::now(),
            }),
        };
        let report = RecoveryReport {
            checkpoint_records: covered,
            replayed,
            truncated,
            truncated_bytes,
            wall,
        };
        Ok((durability, engine, report))
    }

    /// The fsync policy in force.
    #[must_use]
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The managed data directory.
    #[must_use]
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Appends every decision-log record the engine holds beyond what
    /// is already staged, and returns the new staged count — the
    /// sequence number to pass to [`Durability::commit`] after the
    /// engine lock is released.
    ///
    /// Must be called while holding the engine's **write lock** (see
    /// the module docs): that is what makes WAL order equal decision-
    /// log order. Aborts the process on I/O failure — the in-memory
    /// commit already happened and cannot be taken back.
    pub fn stage(&self, engine: &AdmissionEngine) -> u64 {
        let log = engine.log();
        let mut state = self.state.lock();
        let from = usize::try_from(state.staged).unwrap_or(usize::MAX);
        for record in &log[from..] {
            let payload = serde_json::to_string(&record_value(record))
                .unwrap_or_else(|e| die("serialize WAL record", &io::Error::other(e.to_string())));
            if let Err(e) = state.writer.append(payload.as_bytes()) {
                die("append WAL record", &e);
            }
        }
        state.staged = log.len() as u64;
        state.staged
    }

    /// Makes records through `seq` durable according to the fsync
    /// policy, then lets the caller release the response. Safe to call
    /// without the engine lock; concurrent commits coalesce into one
    /// group fsync. Aborts the process if the fsync fails.
    pub fn commit(&self, seq: u64) {
        let mut state = self.state.lock();
        if state.synced >= seq {
            return; // another committer's fsync already covered us
        }
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(every) => state.last_sync.elapsed() >= every,
            FsyncPolicy::Never => false,
        };
        if due {
            if let Err(e) = state.writer.sync() {
                die("fsync WAL", &e);
            }
            state.synced = state.staged;
            state.last_sync = Instant::now();
        }
    }

    /// Whether enough records accumulated since the last checkpoint to
    /// warrant a periodic one.
    #[must_use]
    pub fn should_checkpoint(&self) -> bool {
        let state = self.state.lock();
        state.staged - state.covered >= self.checkpoint_every
    }

    /// Writes a checkpoint of `engine`, rotates the WAL to a fresh
    /// segment, and deletes the segments and checkpoints it supersedes.
    ///
    /// Must be called under the engine's **read lock**: writers are
    /// excluded, so the staged count equals the snapshot's log length
    /// and the new segment starts exactly where the checkpoint ends.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors; the engine and the
    /// existing WAL are untouched on failure (the temp file may
    /// linger — recovery deletes it).
    pub fn checkpoint(&self, engine: &AdmissionEngine) -> io::Result<CheckpointStats> {
        let covered = engine.log().len() as u64;
        let value = engine.checkpoint_value();
        let payload = serde_json::to_string(&value).map_err(|e| io::Error::other(e.to_string()))?;

        // Write-then-rename: the checkpoint name only ever appears with
        // complete, synced contents behind it.
        let tmp = self.data_dir.join(format!("checkpoint-{covered:016}.ckpt.tmp"));
        let path = checkpoint_path(&self.data_dir, covered);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(payload.as_bytes())?;
            crash_point("checkpoint_tmp");
            file.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        crash_point("checkpoint_rename");
        sync_dir(&self.data_dir)?;

        // Rotate under the WAL mutex so interleaved commits keep a
        // consistent view; the engine read lock already excludes stage.
        let mut state = self.state.lock();
        debug_assert_eq!(state.staged, covered, "checkpoint must run under the engine read lock");
        let fresh = segment_path(&self.data_dir, covered);
        state.writer = SegmentWriter::create(&fresh)?;
        sync_dir(&self.data_dir)?;
        state.covered = covered;
        state.staged = covered;
        state.synced = covered;
        drop(state);

        // Compact: everything the checkpoint covers is now redundant.
        let mut segments_removed = 0u64;
        for (start, old) in list_numbered(&self.data_dir, "wal-", ".log")? {
            if start < covered {
                fs::remove_file(&old)?;
                segments_removed += 1;
            }
        }
        let mut checkpoints_removed = 0u64;
        for (n, old) in list_numbered(&self.data_dir, "checkpoint-", ".ckpt")? {
            if n < covered {
                fs::remove_file(&old)?;
                checkpoints_removed += 1;
            }
        }
        sync_dir(&self.data_dir)?;
        dstage_obs::metrics::SERVICE_CHECKPOINTS.inc();
        Ok(CheckpointStats {
            covered,
            bytes: payload.len() as u64,
            segments_removed,
            checkpoints_removed,
        })
    }

    /// Flushes and fsyncs the WAL unconditionally (graceful drain: even
    /// `--durability never` must not tear the log on an orderly exit).
    pub fn finalize(&self) {
        let mut state = self.state.lock();
        if state.synced < state.staged {
            if let Err(e) = state.writer.sync() {
                die("fsync WAL at drain", &e);
            }
            state.synced = state.staged;
            state.last_sync = Instant::now();
        }
    }
}

/// Loads and restores one checkpoint file.
fn load_checkpoint(
    path: &Path,
    catalog: &Scenario,
    heuristic: Heuristic,
    config: HeuristicConfig,
) -> Result<AdmissionEngine, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("parse: {e}"))?;
    AdmissionEngine::restore(catalog, heuristic, config, &value)
}

/// Parses one WAL payload and replays it through the engine's replay
/// path (the same path the byte-identity tests exercise).
fn replay_payload(engine: &mut AdmissionEngine, payload: &[u8]) -> Result<(), String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
    let value: Value = serde_json::from_str(text).map_err(|e| format!("parse: {e}"))?;
    engine.replay_record(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SubmitArgs;
    use dstage_workload::{generate, GeneratorConfig};

    fn scenario() -> Scenario {
        generate(&GeneratorConfig::small(), 11)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dstage-dur-{}-{name}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn recover(dir: &Path, catalog: &Scenario) -> (Durability, AdmissionEngine, RecoveryReport) {
        Durability::recover(
            dir,
            FsyncPolicy::Always,
            DEFAULT_CHECKPOINT_EVERY,
            catalog,
            Heuristic::FullPathOneDestination,
            HeuristicConfig::paper_best(),
        )
        .expect("recover")
    }

    fn args(engine: &AdmissionEngine, pick: usize, deadline_ms: u64) -> SubmitArgs {
        let items: Vec<String> = engine.item_names().map(str::to_string).collect();
        SubmitArgs {
            item: items[pick % items.len()].clone(),
            destination: (pick % engine.machine_count()) as u32,
            deadline_ms,
            priority: (pick % 3) as u8,
            idempotency_key: pick.is_multiple_of(2).then(|| format!("dur-{pick}")),
        }
    }

    #[test]
    fn wal_only_recovery_reproduces_the_snapshot() {
        let dir = temp_dir("walonly");
        let catalog = scenario();
        let (durability, mut engine, report) = recover(&dir, &catalog);
        assert_eq!(report.checkpoint_records + report.replayed, 0);
        for i in 0..8 {
            let _ = engine.submit(&args(&engine, i * 5 + 1, 500_000 + i as u64 * 60_000));
            let seq = durability.stage(&engine);
            durability.commit(seq);
        }
        let before = serde_json::to_string(&engine.snapshot()).unwrap();
        drop((durability, engine));

        let (_, recovered, report) = recover(&dir, &catalog);
        assert_eq!(report.replayed, 8);
        assert!(!report.truncated);
        assert_eq!(serde_json::to_string(&recovered.snapshot()).unwrap(), before);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_replays_only_the_tail() {
        let dir = temp_dir("ckpt");
        let catalog = scenario();
        let (durability, mut engine, _) = recover(&dir, &catalog);
        for i in 0..6 {
            let _ = engine.submit(&args(&engine, i * 7 + 2, 600_000 + i as u64 * 50_000));
            let seq = durability.stage(&engine);
            durability.commit(seq);
        }
        let stats = durability.checkpoint(&engine).expect("checkpoint");
        assert_eq!(stats.covered, 6);
        assert_eq!(stats.segments_removed, 1);
        // Two more decisions land in the post-checkpoint segment.
        for i in 6..8 {
            let _ = engine.submit(&args(&engine, i * 7 + 2, 600_000 + i as u64 * 50_000));
            let seq = durability.stage(&engine);
            durability.commit(seq);
        }
        let before = serde_json::to_string(&engine.snapshot()).unwrap();
        drop((durability, engine));

        let (_, recovered, report) = recover(&dir, &catalog);
        assert_eq!(report.checkpoint_records, 6);
        assert_eq!(report.replayed, 2);
        assert_eq!(serde_json::to_string(&recovered.snapshot()).unwrap(), before);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_loses_only_the_torn_record() {
        let dir = temp_dir("torn");
        let catalog = scenario();
        let (durability, mut engine, _) = recover(&dir, &catalog);
        for i in 0..4 {
            let _ = engine.submit(&args(&engine, i * 3 + 1, 700_000 + i as u64 * 40_000));
            let seq = durability.stage(&engine);
            durability.commit(seq);
        }
        // Replay the first three records only into the expectation.
        let mut expected = AdmissionEngine::new(
            &catalog,
            Heuristic::FullPathOneDestination,
            HeuristicConfig::paper_best(),
        );
        let snapshot = engine.snapshot();
        let log = snapshot.get("log").and_then(Value::as_array).unwrap();
        for entry in &log[..3] {
            expected.replay_record(entry).unwrap();
        }
        drop((durability, engine));

        // Tear the last record: chop 3 bytes off the segment file.
        let (_, segment) = list_numbered(&dir, "wal-", ".log").unwrap().pop().unwrap();
        let bytes = fs::read(&segment).unwrap();
        fs::write(&segment, &bytes[..bytes.len() - 3]).unwrap();

        let (durability, recovered, report) = recover(&dir, &catalog);
        assert_eq!(report.replayed, 3);
        assert!(report.truncated);
        assert_eq!(
            serde_json::to_string(&recovered.snapshot()).unwrap(),
            serde_json::to_string(&expected.snapshot()).unwrap()
        );
        // The reopened segment accepts appends after the truncation.
        let mut recovered = recovered;
        let _ = recovered.submit(&args(&recovered, 9, 900_000));
        let seq = durability.stage(&recovered);
        durability.commit(seq);
        drop((durability, recovered));
        let (_, again, report) = recover(&dir, &catalog);
        assert_eq!(report.replayed, 4);
        assert!(!report.truncated);
        assert_eq!(again.log().len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idempotent_retry_survives_recovery() {
        let dir = temp_dir("idem");
        let catalog = scenario();
        let (durability, mut engine, _) = recover(&dir, &catalog);
        let mut keyed = args(&engine, 4, 800_000);
        keyed.idempotency_key = Some("retry-me".to_string());
        let original = engine.submit(&keyed).expect("decide");
        let seq = durability.stage(&engine);
        durability.commit(seq);
        drop((durability, engine));

        let (_, mut recovered, _) = recover(&dir, &catalog);
        let retried = recovered.submit(&keyed).expect("replay from cache");
        assert_eq!(
            serde_json::to_string(&retried).unwrap(),
            serde_json::to_string(&original).unwrap()
        );
        // The retry was served from the rebuilt cache: no new record.
        assert_eq!(recovered.log().len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_catalog_is_refused() {
        let dir = temp_dir("foreign");
        let catalog = scenario();
        let (durability, mut engine, _) = recover(&dir, &catalog);
        let _ = engine.submit(&args(&engine, 1, 500_000));
        durability.stage(&engine);
        durability.checkpoint(&engine).expect("checkpoint");
        drop((durability, engine));

        let other = generate(&GeneratorConfig::small(), 99);
        let refused = Durability::recover(
            &dir,
            FsyncPolicy::Always,
            DEFAULT_CHECKPOINT_EVERY,
            &other,
            Heuristic::FullPathOneDestination,
            HeuristicConfig::paper_best(),
        );
        assert!(refused.is_err_and(|e| e.contains("fingerprint mismatch")));
        fs::remove_dir_all(&dir).ok();
    }
}
