//! The TCP daemon: accept loop, crossbeam worker pool, and the shared
//! engine behind a `parking_lot::RwLock`.
//!
//! Concurrent submissions are admitted in **epoch batches** (see
//! [`crate::batch`]): workers enqueue their submission, one of them
//! becomes the epoch leader, speculates the whole batch in parallel
//! against a read snapshot, and commits under a single write-lock
//! acquisition. The commit order *is* the decision order, the snapshot
//! records it, and a sequential replay of that order reproduces the
//! state byte for byte. Injections and optimization passes still take
//! the write lock directly (both are rare, exclusive operations);
//! queries, snapshots, and metrics take the read lock and run
//! concurrently with each other.
//!
//! Request lines are bounded at [`MAX_LINE_BYTES`]: a client streaming an
//! endless line gets one error response and is disconnected instead of
//! growing a worker's buffer without limit.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use serde::Value;

use crate::durability::Durability;
use crate::engine::{AdmissionEngine, DEFAULT_OPTIMIZE_BUDGET};
use crate::protocol::{
    response_line, CheckpointResponse, ClientRequest, ErrorResponse, MetricsFormat, SubmitArgs,
    SubmitResponse,
};

/// Longest accepted request line, in bytes (newline excluded). Anything
/// longer gets an error response and the connection is dropped — the
/// remainder of the oversized line cannot be re-synchronized.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Upper bucket bounds of the service-latency histogram, in microseconds.
/// A final unbounded bucket catches everything above the last bound.
pub const BUCKET_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Fixed-bucket histogram of per-submission service latency (lock wait +
/// admission decision), reported by the `metrics` verb.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, micros: u64) {
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket] += 1;
        self.count += 1;
        // Saturating: near u64::MAX an unchecked sum wraps and corrupts
        // `mean_us` (or panics in debug builds); a pinned-at-max sum
        // merely over-reports the mean, which the mean then clamps.
        self.sum_us = self.sum_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded latency in microseconds, rounded to the nearest
    /// integer (half up); `0` when nothing has been recorded.
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Round instead of truncating: `sum / count` floors, which
        // under-reports by up to a microsecond and (worse) reports
        // `mean == 0` for any all-sub-microsecond-rounded sample mix
        // like [0, 1, 1] where the nearest integer is 1. Saturating:
        // the rounding addend must not wrap a sum pinned at the max.
        self.sum_us.saturating_add(self.count / 2) / self.count
    }

    /// Upper bound (µs) of the bucket containing the `p`-quantile;
    /// the exact maximum for observations in the unbounded bucket.
    ///
    /// `p` is the fraction of observations covered, in `(0, 1]`:
    /// `percentile_us(1.0)` covers everything. Out-of-range `p` is
    /// clamped — `p <= 0` behaves like the smallest positive quantile
    /// (rank 1, the bucket of the minimum observation; a true 0-quantile
    /// covers no observations and has no defined bucket), `p > 1`
    /// behaves like `1.0`.
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN-safe: a NaN product fails the `>=` test and falls through
        // to rank 1, matching the p <= 0 clamp.
        let product = p * self.count as f64;
        let rank = if product >= 1.0 { (product.ceil() as u64).min(self.count) } else { 1 };
        let mut seen = 0;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return BUCKET_BOUNDS_US.get(bucket).copied().unwrap_or(self.max_us);
            }
        }
        self.max_us
    }

    /// The histogram as a JSON value for the `metrics` response.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let buckets = Value::Array(
            self.counts
                .iter()
                .enumerate()
                .map(|(bucket, &n)| {
                    let bound =
                        BUCKET_BOUNDS_US.get(bucket).map_or(Value::Null, |&b| Value::UInt(b));
                    Value::Object(vec![
                        ("le_us".to_string(), bound),
                        ("count".to_string(), Value::UInt(n)),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("mean_us".to_string(), Value::UInt(self.mean_us())),
            ("p50_us".to_string(), Value::UInt(self.percentile_us(0.50))),
            ("p90_us".to_string(), Value::UInt(self.percentile_us(0.90))),
            ("p99_us".to_string(), Value::UInt(self.percentile_us(0.99))),
            ("max_us".to_string(), Value::UInt(self.max_us)),
            ("buckets".to_string(), buckets),
        ])
    }
}

/// Tunables of [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — also the number of connections served at once.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let fallback = 8;
        let workers = thread::available_parallelism().map_or(fallback, usize::from).max(fallback);
        ServerConfig { workers }
    }
}

/// How long a worker keeps serving an already-accepted connection after
/// shutdown begins: in-flight requests still get responses, but a client
/// that goes silent cannot pin the drain forever.
pub const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(1);

/// One submission waiting for its epoch, and the channel its decision
/// comes back on.
struct PendingSubmit {
    args: SubmitArgs,
    reply: channel::Sender<Result<SubmitResponse, String>>,
}

/// The epoch collector: submissions queue here, and whichever worker
/// holds `leader` drains the queue and commits the batch (flat-combining
/// style — followers just wait for their reply).
#[derive(Default)]
struct BatchQueue {
    pending: Mutex<VecDeque<PendingSubmit>>,
    leader: Mutex<()>,
}

/// State shared by the accept loop and every worker.
struct Shared {
    engine: RwLock<AdmissionEngine>,
    latency: Mutex<LatencyHistogram>,
    batch: BatchQueue,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// The WAL + checkpoint manager; absent when the daemon runs
    /// without a data directory.
    durability: OnceLock<Arc<Durability>>,
    /// Collapses concurrent periodic-checkpoint triggers to one.
    checkpointing: AtomicBool,
}

/// Triggers the daemon's graceful drain from outside a connection
/// (signal handlers use this): equivalent to a client `shutdown` verb.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Starts the drain: stop accepting, let in-flight requests finish
    /// under the grace deadline.
    pub fn trigger(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.0.addr);
    }
}

/// A bound (but not yet running) admission-control daemon.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) around `engine`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(engine: AdmissionEngine, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            config,
            shared: Arc::new(Shared {
                engine: RwLock::new(engine),
                latency: Mutex::new(LatencyHistogram::new()),
                batch: BatchQueue::default(),
                shutdown: AtomicBool::new(false),
                addr,
                durability: OnceLock::new(),
                checkpointing: AtomicBool::new(false),
            }),
        })
    }

    /// Arms write-ahead logging: every decision is staged into
    /// `durability`'s WAL before its response is released, and the
    /// `checkpoint` verb (plus the periodic trigger) becomes available.
    /// Call once, before [`Server::run`].
    pub fn enable_durability(&self, durability: Arc<Durability>) {
        let _ = self.shared.durability.set(durability);
    }

    /// A handle that can start the graceful drain from outside a
    /// connection (SIGTERM/SIGINT handling in the binary uses this).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the address lookup.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `shutdown`, then drains:
    /// queued connections are still handled, workers are joined, and the
    /// final engine snapshot is returned.
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors from the accept loop.
    pub fn run(self) -> io::Result<Value> {
        let (sender, receiver) = channel::bounded::<TcpStream>(self.config.workers.max(1) * 2);
        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for _ in 0..self.config.workers.max(1) {
            let receiver = receiver.clone();
            let shared = Arc::clone(&self.shared);
            workers.push(thread::spawn(move || {
                while let Ok(stream) = receiver.recv() {
                    handle_connection(&shared, stream);
                }
            }));
        }
        drop(receiver);

        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let draining = self.shared.shutdown.load(Ordering::SeqCst);
                    // Queue the stream even when draining: a connection
                    // that raced the shutdown poke was *accepted* and must
                    // still get responses — the workers drain the whole
                    // channel before exiting, so dropping it here would
                    // close it without a word. (The poke connection itself
                    // also lands in the queue; it sends nothing and costs
                    // one EOF read.)
                    if sender.send(stream).is_err() || draining {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(self.shared.engine.read().snapshot())
    }
}

/// Serves one connection: one NDJSON response line per request line.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    // Poll with a short read timeout so idle connections notice the
    // shutdown flag instead of pinning a drained worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // One small write per response: Nagle + delayed ACK would stall
    // every round trip by tens of milliseconds otherwise.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = Vec::new();
    // Set when the first post-shutdown timeout tick is observed on this
    // connection; the worker keeps serving complete lines until it
    // expires, so an in-flight request that raced the shutdown still
    // gets its response.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        line.clear();
        match read_bounded_line(&mut reader, &mut line, shared, &mut drain_deadline) {
            // EOF (including mid-line), hard error, or draining: the
            // worker moves on to the next connection.
            LineRead::Closed => return,
            LineRead::TooLong => {
                let error =
                    ErrorResponse::line(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = writeln!(writer, "{error}");
                let _ = writer.flush();
                return;
            }
            LineRead::Line => {}
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            let error = ErrorResponse::line("request line is not valid UTF-8");
            if writeln!(writer, "{error}").is_err() || writer.flush().is_err() {
                return;
            }
            continue;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = dispatch(shared, trimmed);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Outcome of reading one bounded request line.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// EOF, a hard socket error, or server drain — stop serving.
    Closed,
    /// The line exceeded [`MAX_LINE_BYTES`] before its newline arrived.
    TooLong,
}

/// Reads one newline-terminated line into `line`, riding out read-timeout
/// ticks and refusing to buffer more than [`MAX_LINE_BYTES`]. Once the
/// server is draining the connection gets [`SHUTDOWN_DRAIN_GRACE`] (from
/// its first post-shutdown tick, tracked in `drain_deadline`) to finish
/// in-flight lines before the worker moves on.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    shared: &Shared,
    drain_deadline: &mut Option<Instant>,
) -> LineRead {
    loop {
        // The chunk handling is split from `fill_buf` so the borrow ends
        // before `consume`.
        let step = match reader.fill_buf() {
            Ok([]) => return LineRead::Closed, // EOF; a partial line is discarded
            Ok(buf) => match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    Some((pos + 1, true))
                }
                None => {
                    line.extend_from_slice(buf);
                    Some((buf.len(), false))
                }
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let deadline = *drain_deadline
                        .get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN_GRACE);
                    if Instant::now() >= deadline {
                        return LineRead::Closed;
                    }
                }
                None
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => None,
            Err(_) => return LineRead::Closed,
        };
        if let Some((consumed, complete)) = step {
            reader.consume(consumed);
            if line.len() > MAX_LINE_BYTES {
                return LineRead::TooLong;
            }
            if complete {
                return LineRead::Line;
            }
        }
    }
}

/// The observability identity of a verb: flight-recorder event name plus
/// the latency series it lands in (`trace` and `shutdown` share the
/// `metrics` series — all three are introspection verbs).
fn verb_obs(request: &ClientRequest) -> (&'static str, &'static dstage_obs::Histogram) {
    use dstage_obs::metrics as m;
    match request {
        ClientRequest::Submit(_) => ("verb.submit", &m::SERVICE_VERB_SUBMIT_US),
        ClientRequest::SubmitP2mp(_) => ("verb.submit_p2mp", &m::SERVICE_VERB_SUBMIT_US),
        ClientRequest::Query { .. } => ("verb.query", &m::SERVICE_VERB_QUERY_US),
        ClientRequest::Inject(_) => ("verb.inject", &m::SERVICE_VERB_INJECT_US),
        ClientRequest::Optimize { .. } => ("verb.optimize", &m::SERVICE_VERB_OPTIMIZE_US),
        ClientRequest::Snapshot => ("verb.snapshot", &m::SERVICE_VERB_SNAPSHOT_US),
        ClientRequest::Metrics { .. } => ("verb.metrics", &m::SERVICE_VERB_METRICS_US),
        ClientRequest::Trace { .. } => ("verb.trace", &m::SERVICE_VERB_METRICS_US),
        ClientRequest::Checkpoint => ("verb.checkpoint", &m::SERVICE_VERB_METRICS_US),
        ClientRequest::Shutdown => ("verb.shutdown", &m::SERVICE_VERB_METRICS_US),
    }
}

/// Handles one request line and produces one response line.
fn dispatch(shared: &Shared, line: &str) -> String {
    let request = match ClientRequest::parse(line) {
        Ok(r) => r,
        Err(message) => return ErrorResponse::line(message),
    };
    let (event, histogram) = verb_obs(&request);
    let started = Instant::now();
    let response = dispatch_parsed(shared, request);
    if dstage_obs::enabled() {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        histogram.record(micros);
        dstage_obs::recorder::record("service", event, 0, micros);
    }
    response
}

/// Enqueues one submission and waits for its epoch to commit.
///
/// Flat-combining: the caller parks its request in the shared queue, then
/// races for the leader lock. Whoever wins drains the queue — its own
/// entry included — and runs [`crate::batch::run_epoch`] for the whole
/// epoch; everyone else finds their reply waiting when the leader lock
/// frees up. The loop terminates after at most two leader acquisitions:
/// once we hold `leader`, our entry is either already answered (a
/// previous leader drained it) or still queued and drained by us now.
fn batched_submit(shared: &Shared, args: SubmitArgs) -> Result<SubmitResponse, String> {
    let (reply, inbox) = channel::bounded(1);
    shared.batch.pending.lock().push_back(PendingSubmit { args, reply });
    loop {
        if let Ok(result) = inbox.try_recv() {
            return result;
        }
        let _leader = shared.batch.leader.lock();
        if let Ok(result) = inbox.try_recv() {
            return result;
        }
        let epoch: Vec<PendingSubmit> = shared.batch.pending.lock().drain(..).collect();
        let batch: Vec<SubmitArgs> = epoch.iter().map(|pending| pending.args.clone()).collect();
        let results = crate::batch::run_epoch_durable(
            &shared.engine,
            &batch,
            shared.durability.get().map(Arc::as_ref),
        );
        for (pending, result) in epoch.into_iter().zip(results) {
            // A follower that vanished (dead connection) just drops the
            // receiver; its decision is already logged either way.
            let _ = pending.reply.send(result);
        }
    }
}

fn dispatch_parsed(shared: &Shared, request: ClientRequest) -> String {
    match request {
        ClientRequest::Submit(args) => {
            let start = Instant::now();
            let result = batched_submit(shared, args);
            let line = match result {
                Ok(response) => {
                    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    shared.latency.lock().record(micros);
                    response_line(&response)
                }
                Err(message) => ErrorResponse::line(message),
            };
            maybe_checkpoint(shared);
            line
        }
        ClientRequest::SubmitP2mp(args) => {
            // Exclusive path: the group's members must be decided
            // back-to-back so later destinations plan against the ledger
            // the earlier ones committed (the shared-hop guarantee).
            // Durability follows the inject contract: stage under the
            // write lock, fsync after it, reply last.
            let start = Instant::now();
            let mut guard = shared.engine.write();
            let result = guard.submit_p2mp(&args);
            let staged = shared.durability.get().map(|d| d.stage(&guard));
            drop(guard);
            if let (Some(d), Some(seq)) = (shared.durability.get(), staged) {
                d.commit(seq);
            }
            let line = match result {
                Ok(response) => {
                    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    shared.latency.lock().record(micros);
                    response_line(&response)
                }
                Err(message) => ErrorResponse::line(message),
            };
            maybe_checkpoint(shared);
            line
        }
        ClientRequest::Query { request } => match shared.engine.read().query(request) {
            Ok(response) => response_line(&response),
            Err(message) => ErrorResponse::line(message),
        },
        ClientRequest::Inject(args) => {
            // Exclusive path, same durability contract as submissions:
            // stage under the write lock, fsync after it, reply last.
            let mut guard = shared.engine.write();
            let result = guard.inject(&args);
            let staged = shared.durability.get().map(|d| d.stage(&guard));
            drop(guard);
            if let (Some(d), Some(seq)) = (shared.durability.get(), staged) {
                d.commit(seq);
            }
            let line = match result {
                Ok(response) => response_line(&response),
                Err(message) => ErrorResponse::line(message),
            };
            maybe_checkpoint(shared);
            line
        }
        ClientRequest::Optimize { budget } => {
            let mut guard = shared.engine.write();
            let response = guard.optimize(budget.unwrap_or(DEFAULT_OPTIMIZE_BUDGET));
            let staged = shared.durability.get().map(|d| d.stage(&guard));
            drop(guard);
            if let (Some(d), Some(seq)) = (shared.durability.get(), staged) {
                d.commit(seq);
            }
            let line = response_line(&response);
            maybe_checkpoint(shared);
            line
        }
        ClientRequest::Snapshot => value_line(&shared.engine.read().snapshot()),
        ClientRequest::Metrics { format: MetricsFormat::Json } => {
            let counters = shared.engine.read().counters();
            let counter_fields = match serde::to_value(&counters) {
                Ok(Value::Object(fields)) => fields,
                _ => Vec::new(),
            };
            let mut fields = vec![("ok".to_string(), Value::Bool(true))];
            fields.extend(counter_fields);
            fields.push(("latency".to_string(), shared.latency.lock().to_value()));
            value_line(&Value::Object(fields))
        }
        ClientRequest::Metrics { format: MetricsFormat::Prometheus } => {
            // The exposition text rides inside the JSON response line —
            // the protocol framing stays one line per request.
            value_line(&Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("format".to_string(), Value::String("prometheus".to_string())),
                ("text".to_string(), Value::String(dstage_obs::metrics::render_prometheus())),
            ]))
        }
        ClientRequest::Trace { limit } => {
            let limit = limit.map_or(usize::MAX, |l| usize::try_from(l).unwrap_or(usize::MAX));
            let events = dstage_obs::recorder::recent(limit)
                .into_iter()
                .map(|e| {
                    Value::Object(vec![
                        ("seq".to_string(), Value::UInt(e.seq)),
                        ("layer".to_string(), Value::String(e.layer.to_string())),
                        ("name".to_string(), Value::String(e.name.to_string())),
                        ("value".to_string(), Value::UInt(e.value)),
                        ("wall_us".to_string(), Value::UInt(e.wall_us)),
                    ])
                })
                .collect();
            value_line(&Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("enabled".to_string(), Value::Bool(dstage_obs::enabled())),
                ("total_recorded".to_string(), Value::UInt(dstage_obs::recorder::total_recorded())),
                ("events".to_string(), Value::Array(events)),
            ]))
        }
        ClientRequest::Checkpoint => {
            let Some(durability) = shared.durability.get() else {
                return ErrorResponse::line(
                    "durability is disabled (start stage-serve with --data-dir)",
                );
            };
            // The read lock excludes writers, so the checkpoint covers
            // exactly the staged WAL prefix.
            let engine = shared.engine.read();
            match durability.checkpoint(&engine) {
                Ok(stats) => response_line(&CheckpointResponse {
                    ok: true,
                    covered: stats.covered,
                    bytes: stats.bytes,
                    segments_removed: stats.segments_removed,
                    checkpoints_removed: stats.checkpoints_removed,
                }),
                Err(e) => ErrorResponse::line(format!("checkpoint failed: {e}")),
            }
        }
        ClientRequest::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            value_line(&Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("draining".to_string(), Value::Bool(true)),
            ]))
        }
    }
}

/// Runs a periodic checkpoint when enough WAL records accumulated since
/// the last one. At most one worker checkpoints at a time; failures are
/// reported to stderr and retried on a later trigger (the WAL stays
/// authoritative either way).
fn maybe_checkpoint(shared: &Shared) {
    let Some(durability) = shared.durability.get() else { return };
    if !durability.should_checkpoint() {
        return;
    }
    if shared.checkpointing.swap(true, Ordering::SeqCst) {
        return; // another worker is already on it
    }
    let engine = shared.engine.read();
    if let Err(e) = durability.checkpoint(&engine) {
        eprintln!("periodic checkpoint failed (will retry): {e}");
    }
    drop(engine);
    shared.checkpointing.store(false, Ordering::SeqCst);
}

fn value_line(value: &Value) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| ErrorResponse::line(format!("serialize: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_come_from_bucket_bounds() {
        let mut h = LatencyHistogram::new();
        for micros in [10, 20, 30, 40, 60, 70, 80, 90, 2_000_000, 3_000_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.percentile_us(0.50), 100); // 5th obs sits in the ≤100µs bucket
        assert_eq!(h.percentile_us(0.99), 3_000_000); // overflow bucket → max
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("max_us").and_then(Value::as_u64), Some(3_000_000));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0);
        assert_eq!(h.percentile_us(0.0), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.to_value().get("mean_us").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn mean_rounds_to_nearest_microsecond() {
        // Regression: integer division truncated, so [0, 1, 1] reported a
        // mean of 0µs instead of the nearest integer 1µs.
        let mut h = LatencyHistogram::new();
        for micros in [0, 1, 1] {
            h.record(micros);
        }
        assert_eq!(h.mean_us(), 1);
        assert_eq!(h.to_value().get("mean_us").and_then(Value::as_u64), Some(1));
        // Rounds down below the halfway point: mean(1, 2, 3, 5) = 2.75 → 3,
        // mean(1, 1, 2, 5) = 2.25 → 2.
        let mut h = LatencyHistogram::new();
        for micros in [1, 1, 2, 5] {
            h.record(micros);
        }
        assert_eq!(h.mean_us(), 2);
    }

    #[test]
    fn percentile_edge_quantiles_are_defined() {
        let mut h = LatencyHistogram::new();
        for micros in [10, 600, 2_000_000] {
            h.record(micros);
        }
        // p <= 0 clamps to rank 1: the minimum observation's bucket.
        assert_eq!(h.percentile_us(0.0), 50);
        assert_eq!(h.percentile_us(-1.0), 50);
        assert_eq!(h.percentile_us(f64::NAN), 50);
        // p >= 1 covers everything, including the unbounded bucket.
        assert_eq!(h.percentile_us(1.0), 2_000_000);
        assert_eq!(h.percentile_us(7.5), 2_000_000);
    }
}
