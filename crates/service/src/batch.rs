//! Epoch-batched admission over the sharded resource ledger.
//!
//! The single `RwLock<AdmissionEngine>` write lock serialized every
//! `submit`; this module moves the expensive half of a decision — the
//! scheduling evaluation — *outside* that lock. Concurrent submissions
//! are collected into an **epoch**, speculated in parallel under the
//! engine's read lock (a consistent snapshot — writers are excluded
//! while speculation runs, no clone is taken), and then
//! committed sequentially, in arrival order, under a single write-lock
//! acquisition. The decision log therefore records exactly the commit
//! order, and the byte-identity guarantee — sequential replay of the
//! log reproduces the snapshot — survives untouched.
//!
//! # Why a speculated decision may be committed verbatim
//!
//! The ledger's mutation surface is consumption-only (see
//! [`dstage_resources::journal`]), so an earlier commit can invalidate a
//! later epoch member's speculation only by (a) staging new copies of
//! the *same data item* (which can improve the later candidate's route),
//! (b) consuming a link window or machine the candidate's own route
//! uses, or (c) moving the planning horizon the candidate was evaluated
//! under. The committer guards all three:
//!
//! * **same-item guard** — a member whose item was admitted earlier in
//!   the epoch is re-decided;
//! * **footprint guard** — members' [`Footprint`]s (route link busy
//!   windows + staged/destination machines, folded into coarse shard ×
//!   time-bucket masks) must not intersect the union of everything the
//!   epoch committed so far; intersection sends the member to sequential
//!   re-decision. Disjoint footprints leave the candidate's own route
//!   timings untouched and can only *worsen* the alternatives the
//!   earliest-arrival search rejected deterministically, so the
//!   speculated route stays the argmin;
//! * **horizon guard** — the member's
//!   [`AdmissionEngine::effective_horizon`] fingerprint must match
//!   between snapshot and live state.
//!
//! Rejections commit no state, and refusal reasons are functions of the
//! arguments plus resources that only shrink, so a speculated rejection
//! outside the guards is a live rejection too. An `inject`/`optimize`
//! that slipped between snapshot and commit bumps the engine version
//! and demotes the whole epoch to the sequential path.
//!
//! Setting `DSTAGE_BATCH_VERIFY=1` (or calling [`set_verify`]) makes
//! every guard-passing commit re-evaluate against the live state and
//! panic on divergence — the equivalence tests run with this on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;

use crate::durability::Durability;
use crate::engine::{AdmissionEngine, Evaluation};
use crate::protocol::{SubmitArgs, SubmitResponse};
use dstage_resources::shard::Footprint;

/// Process-wide switch for paranoid re-verification of speculative
/// commits (defaults to the `DSTAGE_BATCH_VERIFY` environment variable).
static VERIFY: OnceLock<AtomicBool> = OnceLock::new();

fn verify_flag() -> &'static AtomicBool {
    VERIFY.get_or_init(|| {
        let on = std::env::var("DSTAGE_BATCH_VERIFY").is_ok_and(|v| !v.is_empty() && v != "0");
        AtomicBool::new(on)
    })
}

/// Whether speculative commits are re-checked against the live state.
#[must_use]
pub fn verify_enabled() -> bool {
    verify_flag().load(Ordering::Relaxed)
}

/// Forces batch verification on or off (testing hook; the default
/// follows `DSTAGE_BATCH_VERIFY`).
pub fn set_verify(on: bool) {
    verify_flag().store(on, Ordering::Relaxed);
}

/// Admits one epoch of submissions: parallel speculation against a read
/// snapshot, then sequential commit in arrival order under one write
/// lock. Returns one response per submission, in input order — exactly
/// what `engine.write().submit(..)` would have returned one at a time,
/// byte for byte.
///
/// Single-element epochs skip speculation entirely and take the plain
/// sequential path.
pub fn run_epoch(
    engine: &RwLock<AdmissionEngine>,
    batch: &[SubmitArgs],
) -> Vec<Result<SubmitResponse, String>> {
    run_epoch_durable(engine, batch, None)
}

/// [`run_epoch`] with write-ahead logging: before the write lock is
/// released at any exit (speculative commit, sequential fallback, or
/// the singleton path), every record the epoch appended to the decision
/// log is staged into the WAL — in commit order, under the same lock
/// that ordered the decisions — and the epoch's responses are released
/// only after [`Durability::commit`] has applied the fsync policy. The
/// leader commits for its followers: a follower's reply cannot overtake
/// the WAL.
pub fn run_epoch_durable(
    engine: &RwLock<AdmissionEngine>,
    batch: &[SubmitArgs],
    durability: Option<&Durability>,
) -> Vec<Result<SubmitResponse, String>> {
    if batch.is_empty() {
        return Vec::new();
    }
    dstage_obs::metrics::SERVICE_BATCHES.inc();
    dstage_obs::metrics::SERVICE_BATCH_SIZE.record(batch.len() as u64);
    if batch.len() == 1 {
        let mut guard = engine.write();
        let result = guard.submit(&batch[0]);
        let staged = durability.map(|d| d.stage(&guard));
        drop(guard);
        if let (Some(d), Some(seq)) = (durability, staged) {
            d.commit(seq);
        }
        return vec![result];
    }

    // Parallel speculation under the *read* lock: every member evaluates
    // against the same live state, which stays immutable because writers
    // are excluded for the duration. This avoids cloning the engine per
    // epoch; the only writers a spin of speculation can delay are
    // inject/optimize and other leaders (already serialized by the
    // leader mutex). Speculation threads are capped at the machine's
    // parallelism — on a single core the members are evaluated inline,
    // spawning nothing.
    let mut evaluations: Vec<Option<Evaluation>> = Vec::new();
    evaluations.resize_with(batch.len(), || None);
    let (base_version, map, pre_horizons) = {
        let snapshot = engine.read();
        let base_version = snapshot.version();
        let map = snapshot.shard_map();
        // Horizon fingerprints from before any of the epoch commits, so
        // the commit loop can detect a member whose planning horizon an
        // earlier commit moved.
        let pre_horizons: Vec<_> =
            batch.iter().map(|args| snapshot.effective_horizon(args.deadline_ms)).collect();
        let threads = std::thread::available_parallelism().map_or(1, usize::from).min(batch.len());
        if threads <= 1 {
            for (slot, args) in evaluations.iter_mut().zip(batch) {
                *slot = Some(snapshot.evaluate(args));
            }
        } else {
            let chunk = batch.len().div_ceil(threads);
            let snapshot_ref = &*snapshot;
            crossbeam::thread::scope(|scope| {
                for (slots, members) in evaluations.chunks_mut(chunk).zip(batch.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, args) in slots.iter_mut().zip(members) {
                            *slot = Some(snapshot_ref.evaluate(args));
                        }
                    });
                }
            })
            .expect("speculation threads do not panic");
        }
        (base_version, map, pre_horizons)
    };

    let mut guard = engine.write();
    if guard.version() != base_version {
        // An exclusive operation (inject/optimize, or another leader's
        // epoch) interleaved: every speculation is suspect. Fall back to
        // deciding the whole epoch sequentially, still in arrival order.
        dstage_obs::metrics::SERVICE_BATCH_FALLBACKS.inc();
        let results: Vec<_> = batch.iter().map(|args| guard.submit(args)).collect();
        let staged = durability.map(|d| d.stage(&guard));
        drop(guard);
        if let (Some(d), Some(seq)) = (durability, staged) {
            d.commit(seq);
        }
        return results;
    }

    // Sequential commit in arrival order. `epoch_footprint` is the union
    // of everything committed so far this epoch; `epoch_items` the data
    // items admitted so far. A member clashing with either (or whose
    // horizon fingerprint moved) is re-decided against the live state —
    // the "deterministic retry of losers": retries happen in the same
    // arrival order and land in the same log positions on every run.
    let mut epoch_footprint = Footprint::empty(&map);
    let mut epoch_items: Vec<u32> = Vec::new();
    let mut results = Vec::with_capacity(batch.len());
    for ((args, evaluation), pre_horizon) in batch.iter().zip(evaluations).zip(pre_horizons) {
        let evaluation = evaluation.expect("every member was speculated");
        let footprint = AdmissionEngine::evaluation_footprint(&map, &evaluation);
        let item_clash = guard.item_id(&args.item).is_some_and(|item| epoch_items.contains(&item));
        let footprint_clash = footprint.intersects(&epoch_footprint);
        let horizon_moved = guard.effective_horizon(args.deadline_ms) != pre_horizon;
        let result = if item_clash || footprint_clash || horizon_moved {
            dstage_obs::metrics::SERVICE_CONFLICT_RETRIES.inc();
            if footprint_clash {
                for shard in footprint.contended_shards(&epoch_footprint) {
                    dstage_obs::metrics::SERVICE_SHARD_CONTENTION
                        [shard % dstage_obs::metrics::SERVICE_SHARD_CONTENTION.len()]
                    .inc();
                }
            }
            guard.submit(args)
        } else {
            guard.submit_with(args, Some(evaluation))
        };
        // Whatever path decided the member, fold an admission's residue
        // into the guards so later members stay checkable. (A replayed
        // idempotent admission re-merges a footprint the epoch may
        // already hold — a harmless union.)
        if let Ok(response) = &result {
            if let Some(request) = response.request {
                let committed = guard.request_footprint(&map, request as u32);
                epoch_footprint.merge(&committed);
                if let Some(item) = guard.item_id(&args.item) {
                    epoch_items.push(item);
                }
            }
        }
        results.push(result);
    }
    let staged = durability.map(|d| d.stage(&guard));
    drop(guard);
    if let (Some(d), Some(seq)) = (durability, staged) {
        d.commit(seq);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_core::heuristic::{Heuristic, HeuristicConfig};
    use dstage_workload::{generate, GeneratorConfig};

    fn engine() -> AdmissionEngine {
        let scenario = generate(&GeneratorConfig::small(), 5);
        AdmissionEngine::new(&scenario, Heuristic::FullPathOneDestination, {
            HeuristicConfig::paper_best()
        })
    }

    fn args(engine: &AdmissionEngine, pick: usize, deadline_ms: u64) -> SubmitArgs {
        let items: Vec<String> = engine.item_names().map(str::to_string).collect();
        SubmitArgs {
            item: items[pick % items.len()].clone(),
            destination: (pick % engine.machine_count()) as u32,
            deadline_ms,
            priority: (pick % 3) as u8,
            idempotency_key: None,
        }
    }

    /// A batched epoch must produce byte-identical responses and state
    /// to feeding the same submissions one at a time.
    #[test]
    fn epoch_commits_match_sequential_submission() {
        set_verify(true);
        let concurrent = RwLock::new(engine());
        let mut sequential = engine();
        let batch: Vec<SubmitArgs> =
            (0..12).map(|i| args(&sequential, i * 7 + 1, 600_000 + i as u64 * 90_000)).collect();
        let batched = run_epoch(&concurrent, &batch);
        for (args, batched) in batch.iter().zip(batched) {
            let expected = sequential.submit(args);
            assert_eq!(
                serde_json::to_string(&batched.clone().unwrap()).unwrap(),
                serde_json::to_string(&expected.unwrap()).unwrap()
            );
        }
        assert_eq!(
            serde_json::to_string(&concurrent.read().snapshot()).unwrap(),
            serde_json::to_string(&sequential.snapshot()).unwrap()
        );
    }

    /// Empty epochs are a no-op; singleton epochs use the plain path.
    #[test]
    fn degenerate_epochs() {
        let concurrent = RwLock::new(engine());
        assert!(run_epoch(&concurrent, &[]).is_empty());
        let one = args(&concurrent.read(), 1, 900_000);
        let results = run_epoch(&concurrent, std::slice::from_ref(&one));
        assert_eq!(results.len(), 1);
        assert_eq!(concurrent.read().submission_count(), 1);
    }
}
