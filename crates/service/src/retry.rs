//! Bounded, seeded exponential backoff for client retries.
//!
//! Both `stage-submit` and `stage-loadgen` retry transient connection and
//! read failures through a [`Backoff`]: delays double per attempt up to a
//! cap, with uniform jitter drawn from a seeded generator so a retry
//! schedule is reproducible run to run — load tests and the chaos harness
//! stay deterministic even when they retry.

use std::time::Duration;

use rand::{Rng, SeedableRng, StdRng};

/// A bounded exponential-backoff schedule with seeded jitter.
///
/// Attempt `n` (0-based) sleeps a uniform duration from
/// `[base·2ⁿ/2, base·2ⁿ]`, capped at [`Backoff::CAP`]. After
/// `max_attempts` delays the schedule is exhausted and `next_delay`
/// returns `None`.
#[derive(Debug, Clone)]
pub struct Backoff {
    rng: StdRng,
    base: Duration,
    attempts: u32,
    max_attempts: u32,
}

impl Backoff {
    /// Upper bound on any single delay.
    pub const CAP: Duration = Duration::from_secs(2);

    /// Creates a schedule of at most `max_attempts` retries starting
    /// around `base`, jittered by the generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64, max_attempts: u32, base: Duration) -> Self {
        Backoff { rng: StdRng::seed_from_u64(seed), base, attempts: 0, max_attempts }
    }

    /// The delay to sleep before the next retry, or `None` once the
    /// attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempts >= self.max_attempts {
            return None;
        }
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempts).unwrap_or(u32::MAX))
            .min(Self::CAP);
        self.attempts += 1;
        // Jitter in microseconds, not milliseconds: a sub-millisecond base
        // used to truncate to an all-zero range and spin the retry loop
        // hot. The floor of 1µs keeps even a zero base an actual delay.
        let micros = u64::try_from(exp.as_micros()).unwrap_or(u64::MAX).max(1);
        let lo = (micros / 2).max(1);
        Some(Duration::from_micros(self.rng.gen_range(lo..=micros)))
    }

    /// Retries handed out so far.
    #[must_use]
    pub fn attempts_used(&self) -> u32 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let collect = |seed| {
            let mut b = Backoff::new(seed, 5, Duration::from_millis(10));
            std::iter::from_fn(|| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(collect(42), collect(42));
        assert_eq!(collect(42).len(), 5);
    }

    #[test]
    fn delays_grow_but_stay_capped() {
        let mut b = Backoff::new(7, 16, Duration::from_millis(100));
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 16);
        assert_eq!(b.attempts_used(), 16);
        // Attempt n draws from [base·2ⁿ/2, base·2ⁿ] (capped): each delay
        // is above half its exponential target, and none exceeds the cap.
        for (n, d) in delays.iter().enumerate() {
            let target = Duration::from_millis(100)
                .saturating_mul(1u32.checked_shl(n as u32).unwrap_or(u32::MAX))
                .min(Backoff::CAP);
            assert!(*d <= target, "attempt {n}: {d:?} above target {target:?}");
            assert!(*d >= target / 2, "attempt {n}: {d:?} below half target {target:?}");
        }
        assert!(b.next_delay().is_none(), "budget exhausted");
    }

    #[test]
    fn zero_attempts_never_delays() {
        let mut b = Backoff::new(1, 0, Duration::from_millis(10));
        assert!(b.next_delay().is_none());
        assert_eq!(b.attempts_used(), 0);
    }

    #[test]
    fn sub_millisecond_base_still_backs_off() {
        // Regression: the jitter range used to be computed in whole
        // milliseconds, so a 200µs base truncated to [0, 0] and every
        // delay was zero — a hot retry loop against a struggling server.
        let mut b = Backoff::new(3, 8, Duration::from_micros(200));
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 8);
        for (n, d) in delays.iter().enumerate() {
            assert!(!d.is_zero(), "attempt {n} slept zero");
        }
        // First attempt draws from [100µs, 200µs].
        assert!(delays[0] >= Duration::from_micros(100) && delays[0] <= Duration::from_micros(200));
        // Doubling still reaches the cap eventually.
        assert!(delays.iter().all(|d| *d <= Backoff::CAP));
    }

    #[test]
    fn zero_base_floors_at_one_microsecond() {
        let mut b = Backoff::new(9, 4, Duration::ZERO);
        while let Some(d) = b.next_delay() {
            assert!(!d.is_zero(), "zero base must still yield a nonzero delay");
            assert!(d <= Duration::from_micros(1));
        }
        assert_eq!(b.attempts_used(), 4);
    }
}
