//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object per line carrying a `verb` field;
//! every response is one JSON object per line carrying `ok`. The nine
//! verbs are `submit`, `query`, `inject`, `optimize`, `snapshot`,
//! `metrics`, `trace`, `checkpoint`, and `shutdown`.
//!
//! `submit` may carry an `idempotency_key`: resubmitting the same key
//! with the same arguments returns the original decision instead of
//! deciding again, so a client that lost a response can retry safely.
//! A `submit` with a `destinations` array instead of a single
//! `destination` is a point-to-multipoint submission: every destination
//! is decided in order through the ordinary admission path (so each
//! lands in the decision log as its own per-destination outcome) and
//! the response aggregates the per-destination decisions.
//! `inject` feeds a live disturbance (a link outage or a copy loss,
//! mirroring `dstage_dynamic::EventKind`) into the daemon, which cancels
//! invalidated reservations and repairs displaced requests.

use serde::{Serialize, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRequest {
    /// Ask for admission of a new data request.
    Submit(SubmitArgs),
    /// Ask for admission of a point-to-multipoint request: one item,
    /// several destinations decided in order, sharing staged copies.
    SubmitP2mp(P2mpSubmitArgs),
    /// Ask for the status/route/ETA of an admitted request.
    Query {
        /// The request id returned by an earlier `submit`.
        request: u32,
    },
    /// Inject a disturbance: invalidate affected reservations, then
    /// repair displaced requests against the surviving ledger.
    Inject(InjectArgs),
    /// Run an anytime evict-and-readmit optimization pass over the live
    /// schedule: trade admitted low-weight requests for previously
    /// refused higher-weight ones when that strictly improves `E[S]`.
    Optimize {
        /// Maximum swap trials to spend; absent means the server
        /// default.
        budget: Option<u64>,
    },
    /// Ask for the full schedule and per-link ledger.
    Snapshot,
    /// Ask for admission counters and the service-latency histogram.
    Metrics {
        /// Exposition format: the default [`MetricsFormat::Json`]
        /// structured object, or [`MetricsFormat::Prometheus`] text
        /// (carried inside the JSON response line as a `text` field —
        /// the framing stays one line per request).
        format: MetricsFormat,
    },
    /// Ask for the recent flight-recorder window (the newest events
    /// recorded by the observability tap).
    Trace {
        /// Maximum events to return; the server caps it at the recorder
        /// ring size. Absent means the whole ring.
        limit: Option<u64>,
    },
    /// Ask the daemon to checkpoint the engine to its data directory
    /// and compact the write-ahead log it covers (an error when the
    /// daemon runs without durability).
    Checkpoint,
    /// Ask the daemon to stop accepting connections and drain.
    Shutdown,
}

/// How a `metrics` response is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The structured JSON object (the default).
    #[default]
    Json,
    /// Prometheus text exposition format 0.0.4.
    Prometheus,
}

/// Arguments of a `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Name of the data item in the catalog.
    pub item: String,
    /// Destination machine id.
    pub destination: u32,
    /// Absolute deadline in simulation milliseconds.
    pub deadline_ms: u64,
    /// Priority level (0 = low).
    pub priority: u8,
    /// Client-chosen retry token: a resubmission with the same key and
    /// the same arguments returns the original decision; the same key
    /// with *different* arguments is an error.
    pub idempotency_key: Option<String>,
}

/// Arguments of a point-to-multipoint `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct P2mpSubmitArgs {
    /// Name of the data item in the catalog.
    pub item: String,
    /// Destination machine ids, decided in order.
    pub destinations: Vec<u32>,
    /// Absolute deadline in simulation milliseconds, shared by the group.
    pub deadline_ms: u64,
    /// Priority level (0 = low), shared by the group.
    pub priority: u8,
    /// Client-chosen retry token for the whole group; each destination
    /// derives its own key from it (`key#0`, `key#1`, ...), so a retried
    /// group replays every per-destination decision.
    pub idempotency_key: Option<String>,
}

/// What kind of disturbance an `inject` request carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectKind {
    /// A virtual link goes down for the remainder of its window.
    LinkOutage {
        /// The failing link id.
        link: u32,
    },
    /// The copy of an item held at a machine is lost.
    CopyLoss {
        /// Name of the item whose copy vanishes.
        item: String,
        /// The machine losing it.
        machine: u32,
    },
}

impl InjectKind {
    /// The wire name of the kind (`"link_outage"` / `"copy_loss"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            InjectKind::LinkOutage { .. } => "link_outage",
            InjectKind::CopyLoss { .. } => "copy_loss",
        }
    }
}

/// Arguments of an `inject` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectArgs {
    /// What fails.
    pub kind: InjectKind,
    /// When the disturbance takes effect (simulation milliseconds).
    /// Reservations completed strictly before this instant survive.
    pub at_ms: u64,
}

impl ClientRequest {
    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// unknown `verb`, or missing/ill-typed arguments.
    pub fn parse(line: &str) -> Result<ClientRequest, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let verb = value
            .get("verb")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string field `verb`".to_string())?;
        match verb {
            "submit" if value.get("destinations").is_some() => {
                if value.get("destination").is_some() {
                    return Err("give either `destination` or `destinations`, not both".to_string());
                }
                Ok(ClientRequest::SubmitP2mp(P2mpSubmitArgs {
                    item: require_str(&value, "item")?.to_string(),
                    destinations: require_u32_array(&value, "destinations")?,
                    deadline_ms: require_u64(&value, "deadline_ms")?,
                    priority: u8::try_from(require_u64(&value, "priority")?)
                        .map_err(|_| "field `priority` out of range".to_string())?,
                    idempotency_key: optional_str(&value, "idempotency_key")?,
                }))
            }
            "submit" => Ok(ClientRequest::Submit(SubmitArgs {
                item: require_str(&value, "item")?.to_string(),
                destination: u32::try_from(require_u64(&value, "destination")?)
                    .map_err(|_| "field `destination` out of range".to_string())?,
                deadline_ms: require_u64(&value, "deadline_ms")?,
                priority: u8::try_from(require_u64(&value, "priority")?)
                    .map_err(|_| "field `priority` out of range".to_string())?,
                idempotency_key: optional_str(&value, "idempotency_key")?,
            })),
            "query" => Ok(ClientRequest::Query {
                request: u32::try_from(require_u64(&value, "request")?)
                    .map_err(|_| "field `request` out of range".to_string())?,
            }),
            "inject" => {
                let kind = match require_str(&value, "kind")? {
                    "link_outage" => InjectKind::LinkOutage {
                        link: u32::try_from(require_u64(&value, "link")?)
                            .map_err(|_| "field `link` out of range".to_string())?,
                    },
                    "copy_loss" => InjectKind::CopyLoss {
                        item: require_str(&value, "item")?.to_string(),
                        machine: u32::try_from(require_u64(&value, "machine")?)
                            .map_err(|_| "field `machine` out of range".to_string())?,
                    },
                    other => {
                        return Err(format!(
                            "unknown inject kind `{other}` (expected `link_outage` or `copy_loss`)"
                        ))
                    }
                };
                Ok(ClientRequest::Inject(InjectArgs { kind, at_ms: require_u64(&value, "at_ms")? }))
            }
            "optimize" => {
                let budget =
                    match value.get("budget") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            "field `budget` must be an unsigned integer".to_string()
                        })?),
                    };
                Ok(ClientRequest::Optimize { budget })
            }
            "snapshot" => Ok(ClientRequest::Snapshot),
            "metrics" => {
                let format = match optional_str(&value, "format")?.as_deref() {
                    None | Some("json") => MetricsFormat::Json,
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some(other) => {
                        return Err(format!(
                            "unknown metrics format `{other}` (expected `json` or `prometheus`)"
                        ))
                    }
                };
                Ok(ClientRequest::Metrics { format })
            }
            "trace" => {
                let limit =
                    match value.get("limit") {
                        None => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            "field `limit` must be an unsigned integer".to_string()
                        })?),
                    };
                Ok(ClientRequest::Trace { limit })
            }
            "checkpoint" => Ok(ClientRequest::Checkpoint),
            "shutdown" => Ok(ClientRequest::Shutdown),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

fn require_str<'a>(value: &'a Value, field: &str) -> Result<&'a str, String> {
    value
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field `{field}`"))
}

fn optional_str(value: &Value, field: &str) -> Result<Option<String>, String> {
    match value.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("field `{field}` must be a string")),
    }
}

fn require_u64(value: &Value, field: &str) -> Result<u64, String> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing unsigned integer field `{field}`"))
}

fn require_u32_array(value: &Value, field: &str) -> Result<Vec<u32>, String> {
    let items = value
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("field `{field}` must be an array"))?;
    if items.is_empty() {
        return Err(format!("field `{field}` must not be empty"));
    }
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("field `{field}` must hold machine ids"))
        })
        .collect()
}

/// Serializes a response value as one NDJSON line (no trailing newline).
///
/// Falls back to a generic error object if serialization itself fails —
/// the connection must always receive exactly one line per request.
pub fn response_line<T: Serialize>(response: &T) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"serialize: {e}\"}}"))
}

/// Response to a `submit` request.
#[derive(Debug, Clone, Serialize)]
pub struct SubmitResponse {
    /// Whether the request was understood (admission *rejections* still
    /// carry `ok: true` — they are successful decisions).
    pub ok: bool,
    /// Index of this submission in the daemon's decision log. A deduped
    /// retry repeats the original submission's index.
    pub submission: u64,
    /// `"admitted"` or `"rejected"`.
    pub decision: String,
    /// Id of the admitted request (for `query`); absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub request: Option<u64>,
    /// Delivery ETA in simulation milliseconds; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub eta_ms: Option<u64>,
    /// Hop count of the delivery path; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hops: Option<u64>,
    /// Link reservations added to the ledger; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub new_transfers: Option<u64>,
    /// Why admission was refused; absent on admission.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
}

/// Response to a point-to-multipoint `submit` request.
#[derive(Debug, Clone, Serialize)]
pub struct P2mpSubmitResponse {
    /// Whether the group was understood (per-destination *rejections*
    /// still carry `ok: true` — they are successful decisions).
    pub ok: bool,
    /// Destinations admitted onto a route.
    pub admitted: u64,
    /// Destinations refused admission.
    pub rejected: u64,
    /// The per-destination decisions, in submission order.
    pub group: Vec<SubmitResponse>,
}

/// Response to an `inject` request.
#[derive(Debug, Clone, Serialize)]
pub struct InjectResponse {
    /// Always `true` (invalid injections get an [`ErrorResponse`]).
    pub ok: bool,
    /// Index of this injection in the daemon's decision log.
    pub injection: u64,
    /// `"link_outage"` or `"copy_loss"`.
    pub kind: String,
    /// Committed reservations invalidated by the disturbance (including
    /// cascades through staged copies).
    pub cancelled_transfers: u64,
    /// Requests whose promised delivery the disturbance destroyed.
    pub displaced: u64,
    /// Displaced requests re-admitted on a surviving route.
    pub repaired: u64,
    /// Displaced requests that no surviving route can satisfy — dropped
    /// lowest `W[p]` first.
    pub evicted: u64,
}

/// Response to an `optimize` request.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizeResponse {
    /// Always `true` (the pass may keep zero swaps and still succeed).
    pub ok: bool,
    /// Index of this pass in the daemon's decision log.
    pub optimization: u64,
    /// The swap budget the pass ran under.
    pub budget: u64,
    /// Evict-and-readmit trials actually spent.
    pub attempted: u64,
    /// Swaps that improved `E[S]` and were kept.
    pub swapped: u64,
    /// The weighted satisfied sum after the pass.
    pub weighted_sum: u64,
}

/// One hop of an admitted request's route, as reported by `query`.
#[derive(Debug, Clone, Serialize)]
pub struct RouteHop {
    /// Sending machine id.
    pub from: u64,
    /// Receiving machine id.
    pub to: u64,
    /// Virtual link id.
    pub link: u64,
    /// Reservation start (simulation ms).
    pub start_ms: u64,
    /// Arrival at `to` (simulation ms).
    pub arrival_ms: u64,
}

/// Response to a `query` request.
#[derive(Debug, Clone, Serialize)]
pub struct QueryResponse {
    /// Always `true` (unknown ids get an [`ErrorResponse`]).
    pub ok: bool,
    /// The queried request id.
    pub request: u64,
    /// Status — `"admitted"`, `"repaired"` (displaced by a disturbance
    /// and re-admitted on a new route), or `"evicted"` (displaced with no
    /// surviving route; rejected submissions have no request id to
    /// query).
    pub status: String,
    /// Name of the requested data item.
    pub item: String,
    /// Destination machine id.
    pub destination: u64,
    /// Absolute deadline (simulation ms).
    pub deadline_ms: u64,
    /// Priority level.
    pub priority: u64,
    /// Delivery ETA (simulation ms); absent once evicted.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub eta_ms: Option<u64>,
    /// Hop count of the delivery path; absent once evicted.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hops: Option<u64>,
    /// The surviving link reservations staged for this request, in
    /// commit order (an evicted request may retain staged partial
    /// copies — the paper's §4.5 rationale).
    pub route: Vec<RouteHop>,
}

/// Response to a `checkpoint` request.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointResponse {
    /// Always `true` (failures get an [`ErrorResponse`]).
    pub ok: bool,
    /// Decision-log records the checkpoint covers.
    pub covered: u64,
    /// Checkpoint file size in bytes.
    pub bytes: u64,
    /// Fully-covered WAL segments deleted by compaction.
    pub segments_removed: u64,
    /// Superseded checkpoint files deleted by compaction.
    pub checkpoints_removed: u64,
}

/// An error response.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Always `false`.
    pub ok: bool,
    /// What went wrong.
    pub error: String,
}

impl ErrorResponse {
    /// Builds the single error line for `message`.
    #[must_use]
    pub fn line(message: impl Into<String>) -> String {
        response_line(&ErrorResponse { ok: false, error: message.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let submit = ClientRequest::parse(
            r#"{"verb":"submit","item":"map","destination":3,"deadline_ms":60000,"priority":2}"#,
        )
        .unwrap();
        assert_eq!(
            submit,
            ClientRequest::Submit(SubmitArgs {
                item: "map".to_string(),
                destination: 3,
                deadline_ms: 60_000,
                priority: 2,
                idempotency_key: None,
            })
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"query","request":7}"#).unwrap(),
            ClientRequest::Query { request: 7 }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"snapshot"}"#).unwrap(),
            ClientRequest::Snapshot
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"metrics"}"#).unwrap(),
            ClientRequest::Metrics { format: MetricsFormat::Json }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"trace"}"#).unwrap(),
            ClientRequest::Trace { limit: None }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"optimize"}"#).unwrap(),
            ClientRequest::Optimize { budget: None }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"checkpoint"}"#).unwrap(),
            ClientRequest::Checkpoint
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"shutdown"}"#).unwrap(),
            ClientRequest::Shutdown
        );
    }

    #[test]
    fn parses_metrics_formats() {
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"metrics","format":"json"}"#).unwrap(),
            ClientRequest::Metrics { format: MetricsFormat::Json }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"metrics","format":"prometheus"}"#).unwrap(),
            ClientRequest::Metrics { format: MetricsFormat::Prometheus }
        );
        assert!(ClientRequest::parse(r#"{"verb":"metrics","format":"xml"}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"metrics","format":7}"#).is_err());
    }

    #[test]
    fn parses_trace_limits() {
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"trace","limit":16}"#).unwrap(),
            ClientRequest::Trace { limit: Some(16) }
        );
        assert!(ClientRequest::parse(r#"{"verb":"trace","limit":"lots"}"#).is_err());
    }

    #[test]
    fn parses_optimize_budgets() {
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"optimize","budget":3}"#).unwrap(),
            ClientRequest::Optimize { budget: Some(3) }
        );
        assert!(ClientRequest::parse(r#"{"verb":"optimize","budget":"lots"}"#).is_err());
    }

    #[test]
    fn parses_idempotency_key() {
        let submit = ClientRequest::parse(
            r#"{"verb":"submit","item":"map","destination":3,"deadline_ms":60000,"priority":2,"idempotency_key":"k-1"}"#,
        )
        .unwrap();
        let ClientRequest::Submit(args) = submit else { panic!("expected submit") };
        assert_eq!(args.idempotency_key.as_deref(), Some("k-1"));
        // Present but ill-typed is an error, not a silent None.
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destination":0,"deadline_ms":1,"priority":0,"idempotency_key":7}"#
        )
        .is_err());
    }

    #[test]
    fn parses_p2mp_submissions() {
        let submit = ClientRequest::parse(
            r#"{"verb":"submit","item":"map","destinations":[3,5,2],"deadline_ms":60000,"priority":2,"idempotency_key":"g-1"}"#,
        )
        .unwrap();
        assert_eq!(
            submit,
            ClientRequest::SubmitP2mp(P2mpSubmitArgs {
                item: "map".to_string(),
                destinations: vec![3, 5, 2],
                deadline_ms: 60_000,
                priority: 2,
                idempotency_key: Some("g-1".to_string()),
            })
        );
        // Empty and ill-typed destination lists are errors.
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destinations":[],"deadline_ms":1,"priority":0}"#
        )
        .is_err());
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destinations":["a"],"deadline_ms":1,"priority":0}"#
        )
        .is_err());
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destinations":7,"deadline_ms":1,"priority":0}"#
        )
        .is_err());
        // Mixing the singular and plural forms is ambiguous.
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destination":1,"destinations":[2],"deadline_ms":1,"priority":0}"#
        )
        .is_err());
    }

    #[test]
    fn parses_inject_variants() {
        assert_eq!(
            ClientRequest::parse(
                r#"{"verb":"inject","kind":"link_outage","link":4,"at_ms":60000}"#
            )
            .unwrap(),
            ClientRequest::Inject(InjectArgs {
                kind: InjectKind::LinkOutage { link: 4 },
                at_ms: 60_000
            })
        );
        assert_eq!(
            ClientRequest::parse(
                r#"{"verb":"inject","kind":"copy_loss","item":"map","machine":2,"at_ms":1}"#
            )
            .unwrap(),
            ClientRequest::Inject(InjectArgs {
                kind: InjectKind::CopyLoss { item: "map".to_string(), machine: 2 },
                at_ms: 1
            })
        );
        // Missing pieces are errors.
        assert!(ClientRequest::parse(r#"{"verb":"inject","kind":"link_outage","link":4}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"inject","kind":"meteor","at_ms":1}"#).is_err());
        assert!(ClientRequest::parse(
            r#"{"verb":"inject","kind":"copy_loss","item":"m","at_ms":1}"#
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(ClientRequest::parse("not json").is_err());
        assert!(ClientRequest::parse(r#"{"item":"map"}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"submit","item":"map"}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"destroy"}"#).is_err());
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destination":-1,"deadline_ms":1,"priority":0}"#
        )
        .is_err());
    }

    #[test]
    fn error_lines_are_single_json_objects() {
        let line = ErrorResponse::line("boom");
        assert_eq!(line, r#"{"ok":false,"error":"boom"}"#);
        assert!(!line.contains('\n'));
    }
}
