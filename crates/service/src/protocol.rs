//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object per line carrying a `verb` field;
//! every response is one JSON object per line carrying `ok`. The five
//! verbs are `submit`, `query`, `snapshot`, `metrics`, and `shutdown`.

use serde::{Serialize, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRequest {
    /// Ask for admission of a new data request.
    Submit(SubmitArgs),
    /// Ask for the status/route/ETA of an admitted request.
    Query {
        /// The request id returned by an earlier `submit`.
        request: u32,
    },
    /// Ask for the full schedule and per-link ledger.
    Snapshot,
    /// Ask for admission counters and the service-latency histogram.
    Metrics,
    /// Ask the daemon to stop accepting connections and drain.
    Shutdown,
}

/// Arguments of a `submit` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Name of the data item in the catalog.
    pub item: String,
    /// Destination machine id.
    pub destination: u32,
    /// Absolute deadline in simulation milliseconds.
    pub deadline_ms: u64,
    /// Priority level (0 = low).
    pub priority: u8,
}

impl ClientRequest {
    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing or
    /// unknown `verb`, or missing/ill-typed arguments.
    pub fn parse(line: &str) -> Result<ClientRequest, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let verb = value
            .get("verb")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string field `verb`".to_string())?;
        match verb {
            "submit" => Ok(ClientRequest::Submit(SubmitArgs {
                item: require_str(&value, "item")?.to_string(),
                destination: u32::try_from(require_u64(&value, "destination")?)
                    .map_err(|_| "field `destination` out of range".to_string())?,
                deadline_ms: require_u64(&value, "deadline_ms")?,
                priority: u8::try_from(require_u64(&value, "priority")?)
                    .map_err(|_| "field `priority` out of range".to_string())?,
            })),
            "query" => Ok(ClientRequest::Query {
                request: u32::try_from(require_u64(&value, "request")?)
                    .map_err(|_| "field `request` out of range".to_string())?,
            }),
            "snapshot" => Ok(ClientRequest::Snapshot),
            "metrics" => Ok(ClientRequest::Metrics),
            "shutdown" => Ok(ClientRequest::Shutdown),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

fn require_str<'a>(value: &'a Value, field: &str) -> Result<&'a str, String> {
    value
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field `{field}`"))
}

fn require_u64(value: &Value, field: &str) -> Result<u64, String> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing unsigned integer field `{field}`"))
}

/// Serializes a response value as one NDJSON line (no trailing newline).
///
/// Falls back to a generic error object if serialization itself fails —
/// the connection must always receive exactly one line per request.
pub fn response_line<T: Serialize>(response: &T) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"serialize: {e}\"}}"))
}

/// Response to a `submit` request.
#[derive(Debug, Clone, Serialize)]
pub struct SubmitResponse {
    /// Whether the request was understood (admission *rejections* still
    /// carry `ok: true` — they are successful decisions).
    pub ok: bool,
    /// Index of this submission in the daemon's processing order.
    pub submission: u64,
    /// `"admitted"` or `"rejected"`.
    pub decision: String,
    /// Id of the admitted request (for `query`); absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub request: Option<u64>,
    /// Delivery ETA in simulation milliseconds; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub eta_ms: Option<u64>,
    /// Hop count of the delivery path; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hops: Option<u64>,
    /// Link reservations added to the ledger; absent on rejection.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub new_transfers: Option<u64>,
    /// Why admission was refused; absent on admission.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reason: Option<String>,
}

/// One hop of an admitted request's route, as reported by `query`.
#[derive(Debug, Clone, Serialize)]
pub struct RouteHop {
    /// Sending machine id.
    pub from: u64,
    /// Receiving machine id.
    pub to: u64,
    /// Virtual link id.
    pub link: u64,
    /// Reservation start (simulation ms).
    pub start_ms: u64,
    /// Arrival at `to` (simulation ms).
    pub arrival_ms: u64,
}

/// Response to a `query` request.
#[derive(Debug, Clone, Serialize)]
pub struct QueryResponse {
    /// Always `true` (unknown ids get an [`ErrorResponse`]).
    pub ok: bool,
    /// The queried request id.
    pub request: u64,
    /// Status — currently always `"admitted"`; rejected submissions have
    /// no request id to query.
    pub status: String,
    /// Name of the requested data item.
    pub item: String,
    /// Destination machine id.
    pub destination: u64,
    /// Absolute deadline (simulation ms).
    pub deadline_ms: u64,
    /// Priority level.
    pub priority: u64,
    /// Delivery ETA (simulation ms).
    pub eta_ms: u64,
    /// Hop count of the delivery path.
    pub hops: u64,
    /// The link reservations staged for this request, in commit order.
    pub route: Vec<RouteHop>,
}

/// An error response.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Always `false`.
    pub ok: bool,
    /// What went wrong.
    pub error: String,
}

impl ErrorResponse {
    /// Builds the single error line for `message`.
    #[must_use]
    pub fn line(message: impl Into<String>) -> String {
        response_line(&ErrorResponse { ok: false, error: message.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        let submit = ClientRequest::parse(
            r#"{"verb":"submit","item":"map","destination":3,"deadline_ms":60000,"priority":2}"#,
        )
        .unwrap();
        assert_eq!(
            submit,
            ClientRequest::Submit(SubmitArgs {
                item: "map".to_string(),
                destination: 3,
                deadline_ms: 60_000,
                priority: 2,
            })
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"query","request":7}"#).unwrap(),
            ClientRequest::Query { request: 7 }
        );
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"snapshot"}"#).unwrap(),
            ClientRequest::Snapshot
        );
        assert_eq!(ClientRequest::parse(r#"{"verb":"metrics"}"#).unwrap(), ClientRequest::Metrics);
        assert_eq!(
            ClientRequest::parse(r#"{"verb":"shutdown"}"#).unwrap(),
            ClientRequest::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(ClientRequest::parse("not json").is_err());
        assert!(ClientRequest::parse(r#"{"item":"map"}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"submit","item":"map"}"#).is_err());
        assert!(ClientRequest::parse(r#"{"verb":"destroy"}"#).is_err());
        assert!(ClientRequest::parse(
            r#"{"verb":"submit","item":"m","destination":-1,"deadline_ms":1,"priority":0}"#
        )
        .is_err());
    }

    #[test]
    fn error_lines_are_single_json_objects() {
        let line = ErrorResponse::line("boom");
        assert_eq!(line, r#"{"ok":false,"error":"boom"}"#);
        assert!(!line.contains('\n'));
    }
}
