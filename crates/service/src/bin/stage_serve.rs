//! The admission-control daemon.
//!
//! ```text
//! stage-serve [OPTIONS]
//!
//! OPTIONS:
//!   --scenario FILE  catalog (network + items) from a scenario JSON;
//!                    requests in the file are ignored
//!   --generate SEED  paper-scale generated catalog (default: seed 0)
//!   --family F       scenario family for the generated catalog:
//!                    paper (default) | satcom | wan | grid | line; an
//!                    unknown name lists the valid ones and exits with
//!                    code 2

//!   --addr A         bind address (default 127.0.0.1:0 = ephemeral port)
//!   --workers N      worker threads (default: max(8, cores))
//!   --scheduler S    partial | full-one (default) | full-all | alap | rcd
//!                    (--heuristic is an accepted alias); an unknown name
//!                    lists the valid ones and exits with code 2
//!   --criterion C    C1 | C2 | C3 | C4 (default) | C3f
//!   --ratio X        log10 of the E-U ratio (default 2)
//!   --weights W      1,5,10 | 1,10,100 (default)
//!   --data-dir D     durable data directory: recover on start, write-
//!                    ahead log every decision, enable `checkpoint`
//!   --durability P   fsync policy: always (default) | interval:<ms> |
//!                    never; DSTAGE_DURABILITY is the env fallback
//!   --checkpoint-every N  periodic checkpoint after N WAL records
//! ```
//!
//! Prints `listening on <addr>` on stdout once ready, serves until a
//! client issues `shutdown` (or SIGTERM/SIGINT arrives — both drain
//! gracefully and fsync the WAL), then prints a summary to stderr.

use std::process::ExitCode;
use std::sync::Arc;

use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_service::durability::{Durability, DEFAULT_CHECKPOINT_EVERY};
use dstage_service::engine::AdmissionEngine;
use dstage_service::server::{Server, ServerConfig};
use dstage_service::wal::FsyncPolicy;
use dstage_workload::Family;
use serde::Value;

struct Options {
    scenario: Option<String>,
    family: Family,
    seed: u64,
    addr: String,
    workers: Option<usize>,
    heuristic: Heuristic,
    criterion: CostCriterion,
    ratio: f64,
    weights: PriorityWeights,
    data_dir: Option<String>,
    durability: Option<FsyncPolicy>,
    checkpoint_every: u64,
}

/// A fatal argument problem and the exit code it maps to. An unknown
/// scheduler name exits with `2` so scripts can tell a typo from the
/// generic usage failure (`1`).
struct CliError {
    message: String,
    exit: ExitCode,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError { message: message.into(), exit: ExitCode::FAILURE }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::usage(message)
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::usage(message)
    }
}

/// Resolves a scenario-family name, with the scheduler flag's exit-2
/// contract for typos.
fn parse_family(name: Option<&str>) -> Result<Family, CliError> {
    let name = name.ok_or_else(|| CliError::usage("--family needs a name"))?;
    Family::from_name(name).ok_or_else(|| CliError {
        message: format!("unknown family `{name}` (valid: {})", Family::names()),
        exit: ExitCode::from(2),
    })
}

/// Resolves a scheduler name against the extended heuristic labels.
fn parse_scheduler(name: Option<&str>) -> Result<Heuristic, CliError> {
    let name = name.ok_or_else(|| CliError::usage("--scheduler needs a name"))?;
    Heuristic::from_label(name).ok_or_else(|| CliError {
        message: format!(
            "unknown scheduler `{name}` (valid: {})",
            Heuristic::EXTENDED.map(Heuristic::label).join(", ")
        ),
        exit: ExitCode::from(2),
    })
}

fn parse_args() -> Result<Options, CliError> {
    let mut options = Options {
        scenario: None,
        family: Family::Paper,
        seed: 0,
        addr: "127.0.0.1:0".to_string(),
        workers: None,
        heuristic: Heuristic::FullPathOneDestination,
        criterion: CostCriterion::C4,
        ratio: 2.0,
        weights: PriorityWeights::paper_1_10_100(),
        data_dir: None,
        durability: None,
        checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                options.scenario = Some(args.next().ok_or("--scenario needs a file")?);
            }
            "--generate" => {
                options.seed = args
                    .next()
                    .ok_or("--generate needs a seed")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--family" => {
                options.family = parse_family(args.next().as_deref())?;
            }
            "--addr" => options.addr = args.next().ok_or("--addr needs host:port")?,
            "--workers" => {
                options.workers = Some(
                    args.next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|e| format!("invalid worker count: {e}"))?,
                );
            }
            "--scheduler" | "--heuristic" => {
                options.heuristic = parse_scheduler(args.next().as_deref())?;
            }
            "--criterion" => {
                options.criterion = match args.next().as_deref() {
                    Some("C1") | Some("c1") => CostCriterion::C1,
                    Some("C2") | Some("c2") => CostCriterion::C2,
                    Some("C3") | Some("c3") => CostCriterion::C3,
                    Some("C4") | Some("c4") => CostCriterion::C4,
                    Some("C3f") | Some("c3f") => CostCriterion::C3Floor,
                    other => return Err(CliError::usage(format!("unknown criterion {other:?}"))),
                };
            }
            "--ratio" => {
                options.ratio = args
                    .next()
                    .ok_or("--ratio needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid ratio: {e}"))?;
            }
            "--weights" => {
                options.weights = match args.next().as_deref() {
                    Some("1,5,10") => PriorityWeights::paper_1_5_10(),
                    Some("1,10,100") => PriorityWeights::paper_1_10_100(),
                    other => return Err(CliError::usage(format!("unknown weighting {other:?}"))),
                };
            }
            "--data-dir" => {
                options.data_dir = Some(args.next().ok_or("--data-dir needs a directory")?);
            }
            "--durability" => {
                let policy = args.next().ok_or("--durability needs a policy")?;
                options.durability = Some(FsyncPolicy::parse(&policy)?);
            }
            "--checkpoint-every" => {
                options.checkpoint_every = args
                    .next()
                    .ok_or("--checkpoint-every needs a record count")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("invalid --checkpoint-every (positive record count)")?;
            }
            "--help" | "-h" => return Err(CliError::usage(String::new())),
            other => return Err(CliError::usage(format!("unknown option {other:?}"))),
        }
    }
    Ok(options)
}

/// Accepts either a bare `Scenario` JSON or the `scenarios` exporter's
/// wrapper object with a `scenario` field.
fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(s) = serde_json::from_str::<Scenario>(&text) {
        return Ok(s);
    }
    #[derive(serde::Deserialize)]
    struct Wrapper {
        scenario: Scenario,
    }
    serde_json::from_str::<Wrapper>(&text)
        .map(|w| w.scenario)
        .map_err(|e| format!("{path} is not a scenario JSON: {e}"))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(err) => {
            if !err.message.is_empty() {
                eprintln!("error: {}", err.message);
            }
            eprintln!(
                "usage: stage-serve [--scenario FILE | --generate SEED] \
                 [--family paper|satcom|wan|grid|line] [--addr HOST:PORT] \
                 [--workers N] [--scheduler partial|full-one|full-all|alap|rcd] \
                 [--criterion C1|C2|C3|C4|C3f] [--ratio X] [--weights 1,5,10|1,10,100] \
                 [--data-dir D] [--durability always|interval:<ms>|never] \
                 [--checkpoint-every N]"
            );
            return if err.message.is_empty() { ExitCode::SUCCESS } else { err.exit };
        }
    };
    let catalog = match &options.scenario {
        Some(path) => match load_scenario(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => options.family.generate(options.seed),
    };
    let config = HeuristicConfig {
        criterion: options.criterion,
        eu: EuWeights::from_log10_ratio(options.ratio),
        priority_weights: options.weights.clone(),
        caching: true,
    };
    // The flag wins over the environment; `always` is the default so a
    // bare `--data-dir` never silently risks acknowledged decisions.
    let policy = match options.durability {
        Some(policy) => policy,
        None => match std::env::var("DSTAGE_DURABILITY") {
            Ok(text) => match FsyncPolicy::parse(&text) {
                Ok(policy) => policy,
                Err(e) => {
                    eprintln!("error: DSTAGE_DURABILITY: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => FsyncPolicy::Always,
        },
    };
    let (durability, engine) = match &options.data_dir {
        Some(dir) => {
            let recovered = Durability::recover(
                std::path::Path::new(dir),
                policy,
                options.checkpoint_every,
                &catalog,
                options.heuristic,
                config,
            );
            match recovered {
                Ok((durability, engine, report)) => {
                    eprintln!(
                        "recovered: {} records from checkpoint, {} replayed from WAL{} \
                         ({} ms, durability {})",
                        report.checkpoint_records,
                        report.replayed,
                        if report.truncated {
                            format!(", {} torn bytes truncated", report.truncated_bytes)
                        } else {
                            String::new()
                        },
                        report.wall.as_millis(),
                        durability.policy().label(),
                    );
                    (Some(Arc::new(durability)), engine)
                }
                Err(e) => {
                    eprintln!("error: recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => (None, AdmissionEngine::new(&catalog, options.heuristic, config)),
    };
    eprintln!(
        "catalog: {} machines, {} items ({})",
        engine.machine_count(),
        engine.item_names().count(),
        engine.item_names().take(5).collect::<Vec<_>>().join(", ")
    );
    let server_config =
        options.workers.map_or_else(ServerConfig::default, |workers| ServerConfig { workers });
    let server = match Server::bind(engine, &options.addr, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(durability) = &durability {
        server.enable_durability(Arc::clone(durability));
    }
    // SIGTERM/SIGINT become the same graceful drain a client `shutdown`
    // triggers, so orchestrated restarts never tear the log. The handler
    // only flips a flag; a watcher thread does the actual poke.
    signals::install();
    {
        let handle = server.shutdown_handle();
        std::thread::spawn(move || loop {
            if signals::requested() {
                handle.trigger();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    match server.local_addr() {
        Ok(addr) => {
            // The contract clients (and the loopback test) rely on: the
            // first stdout line announces the resolved address.
            println!("listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(snapshot) => {
            // Whatever the fsync policy, an orderly exit leaves the WAL
            // fully synced: restart recovers every drained decision.
            if let Some(durability) = &durability {
                durability.finalize();
            }
            let (submissions, admitted) = (
                snapshot.get("submissions").and_then(Value::as_u64).unwrap_or(0),
                snapshot.get("admitted").and_then(Value::as_u64).unwrap_or(0),
            );
            eprintln!("drained: {submissions} submissions, {admitted} admitted");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal signal plumbing: the handler flips an atomic, nothing else —
/// all real work happens on the watcher thread in `main`.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT (2) and SIGTERM (15) into the drain flag.
    pub fn install() {
        unsafe {
            signal(2, handle);
            signal(15, handle);
        }
    }

    /// Whether a drain-requesting signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal handling off Unix; `shutdown` over the wire still works.
    pub fn install() {}

    /// Never requested without signal support.
    pub fn requested() -> bool {
        false
    }
}
