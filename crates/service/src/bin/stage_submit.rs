//! One-shot client for the admission daemon.
//!
//! ```text
//! stage-submit --addr HOST:PORT [--timeout-ms T] [--retries N] [--retry-seed S] <verb> [ARGS]
//!
//! VERBS:
//!   submit --item NAME --dest M --deadline-ms T [--priority P] [--key K]
//!   query --request N
//!   inject --at-ms T (--link L | --item NAME --machine M)
//!   optimize [--budget N]
//!   snapshot
//!   metrics [--prometheus]
//!   trace [--limit N]
//!   shutdown
//! ```
//!
//! Sends one request line, prints the one response line, and exits:
//!
//! * `0` — the daemon answered `ok: true` (admission *rejections* are ok
//!   — they are decisions, not failures);
//! * `1` — usage error, protocol error, or `ok: false`;
//! * `2` — the daemon refused the connection;
//! * `3` — connecting or reading timed out.
//!
//! Connects with a bounded `connect_timeout` and reads with a
//! `read_timeout` (`--timeout-ms`, default 5000), retrying transient
//! failures up to `--retries` times (default 2) with seeded exponential
//! backoff. A retried `submit` is made idempotent automatically: when no
//! `--key` is given one is generated once and reused across attempts, so
//! a retry after a lost response never double-admits. `inject` and
//! `optimize` are only retried when the request line was never sent —
//! the daemon may have applied a disturbance (or an optimization pass)
//! whose response was lost.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use dstage_service::retry::Backoff;
use serde::Value;

struct Options {
    addr: String,
    line: String,
    timeout: Duration,
    retries: u32,
    retry_seed: u64,
    /// Whether a retry may re-send after the line reached the socket
    /// (reads and keyed submits are idempotent; `inject` is not).
    resend_safe: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut addr = None;
    let mut verb: Option<String> = None;
    let mut item = None;
    let mut dest: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut priority: u64 = 0;
    let mut request: Option<u64> = None;
    let mut key: Option<String> = None;
    let mut link: Option<u64> = None;
    let mut machine: Option<u64> = None;
    let mut at_ms: Option<u64> = None;
    let mut timeout_ms: u64 = 5_000;
    let mut retries: u32 = 2;
    let mut retry_seed: u64 = 0;
    let mut prometheus = false;
    let mut limit: Option<u64> = None;
    let mut budget: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().ok_or("--addr needs host:port")?),
            "--item" => item = Some(args.next().ok_or("--item needs a name")?),
            "--dest" => dest = Some(parse_number(args.next(), "--dest")?),
            "--deadline-ms" => deadline_ms = Some(parse_number(args.next(), "--deadline-ms")?),
            "--priority" => priority = parse_number(args.next(), "--priority")?,
            "--request" => request = Some(parse_number(args.next(), "--request")?),
            "--key" => key = Some(args.next().ok_or("--key needs a string")?),
            "--link" => link = Some(parse_number(args.next(), "--link")?),
            "--machine" => machine = Some(parse_number(args.next(), "--machine")?),
            "--at-ms" => at_ms = Some(parse_number(args.next(), "--at-ms")?),
            "--timeout-ms" => timeout_ms = parse_number(args.next(), "--timeout-ms")?,
            "--retries" => {
                retries = u32::try_from(parse_number(args.next(), "--retries")?)
                    .map_err(|_| "--retries out of range".to_string())?;
            }
            "--retry-seed" => retry_seed = parse_number(args.next(), "--retry-seed")?,
            "--prometheus" => prometheus = true,
            "--limit" => limit = Some(parse_number(args.next(), "--limit")?),
            "--budget" => budget = Some(parse_number(args.next(), "--budget")?),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other if verb.is_none() => verb = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    if timeout_ms == 0 {
        return Err("--timeout-ms must be positive".to_string());
    }
    let mut resend_safe = true;
    let line = match verb.as_deref() {
        Some("submit") => {
            let item = item.ok_or("submit needs --item")?;
            let dest = dest.ok_or("submit needs --dest")?;
            let deadline_ms = deadline_ms.ok_or("submit needs --deadline-ms")?;
            // Retried submits must be idempotent: without an explicit
            // key, generate one once and reuse it on every attempt.
            let key = match key {
                Some(k) => k,
                None => {
                    let nanos = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map_or(0, |d| d.subsec_nanos());
                    format!("submit-{}-{nanos}", std::process::id())
                }
            };
            format!(
                r#"{{"verb":"submit","item":{},"destination":{dest},"deadline_ms":{deadline_ms},"priority":{priority},"idempotency_key":{}}}"#,
                json_string(&item),
                json_string(&key)
            )
        }
        Some("query") => {
            let request = request.ok_or("query needs --request")?;
            format!(r#"{{"verb":"query","request":{request}}}"#)
        }
        Some("inject") => {
            resend_safe = false;
            let at_ms = at_ms.ok_or("inject needs --at-ms")?;
            match (link, item, machine) {
                (Some(link), None, None) => format!(
                    r#"{{"verb":"inject","kind":"link_outage","link":{link},"at_ms":{at_ms}}}"#
                ),
                (None, Some(item), Some(machine)) => format!(
                    r#"{{"verb":"inject","kind":"copy_loss","item":{},"machine":{machine},"at_ms":{at_ms}}}"#,
                    json_string(&item)
                ),
                _ => {
                    return Err(
                        "inject needs either --link L or --item NAME --machine M".to_string()
                    )
                }
            }
        }
        Some("optimize") => {
            // An optimize whose response was lost may already have
            // swapped the schedule; re-sending would run a second pass.
            resend_safe = false;
            match budget {
                Some(budget) => format!(r#"{{"verb":"optimize","budget":{budget}}}"#),
                None => r#"{"verb":"optimize"}"#.to_string(),
            }
        }
        Some("snapshot") => r#"{"verb":"snapshot"}"#.to_string(),
        Some("metrics") if prometheus => r#"{"verb":"metrics","format":"prometheus"}"#.to_string(),
        Some("metrics") => r#"{"verb":"metrics"}"#.to_string(),
        Some("trace") => match limit {
            Some(limit) => format!(r#"{{"verb":"trace","limit":{limit}}}"#),
            None => r#"{"verb":"trace"}"#.to_string(),
        },
        Some("shutdown") => r#"{"verb":"shutdown"}"#.to_string(),
        Some(other) => return Err(format!("unknown verb {other:?}")),
        None => return Err("a verb is required".to_string()),
    };
    Ok(Options {
        addr,
        line,
        timeout: Duration::from_millis(timeout_ms),
        retries,
        retry_seed,
        resend_safe,
    })
}

fn parse_number(arg: Option<String>, flag: &str) -> Result<u64, String> {
    arg.ok_or(format!("{flag} needs a number"))?.parse().map_err(|e| format!("invalid {flag}: {e}"))
}

/// Minimal JSON string escaping for item names and keys.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One failed attempt: what happened and whether the request line had
/// already reached the socket when it happened.
struct AttemptError {
    message: String,
    kind: io::ErrorKind,
    sent: bool,
}

impl AttemptError {
    fn new(stage: &str, e: &io::Error, sent: bool) -> Self {
        AttemptError { message: format!("{stage}: {e}"), kind: e.kind(), sent }
    }
}

/// Connects, sends the request line, and reads the one response line.
fn attempt(options: &Options) -> Result<String, AttemptError> {
    let addrs: Vec<SocketAddr> = options
        .addr
        .to_socket_addrs()
        .map_err(|e| AttemptError::new("cannot resolve address", &e, false))?
        .collect();
    let mut stream = None;
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for addr in addrs {
        match TcpStream::connect_timeout(&addr, options.timeout) {
            Ok(s) => {
                // Single-line request/response: Nagle would add a
                // delayed-ACK stall to the round trip.
                let _ = s.set_nodelay(true);
                stream = Some(s);
                break;
            }
            Err(e) => last = e,
        }
    }
    let Some(stream) = stream else {
        return Err(AttemptError::new(
            &format!("cannot connect to {}", options.addr),
            &last,
            false,
        ));
    };
    stream
        .set_read_timeout(Some(options.timeout))
        .and_then(|()| stream.set_write_timeout(Some(options.timeout)))
        .map_err(|e| AttemptError::new("cannot configure socket", &e, false))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| AttemptError::new("cannot clone socket", &e, false))?,
    );
    let mut writer = stream;
    writeln!(writer, "{}", options.line)
        .and_then(|()| writer.flush())
        .map_err(|e| AttemptError::new("cannot send request", &e, false))?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err(AttemptError {
            message: "daemon closed the connection without answering".to_string(),
            kind: io::ErrorKind::UnexpectedEof,
            sent: true,
        }),
        Ok(_) => Ok(response),
        Err(e) => Err(AttemptError::new("cannot read response", &e, true)),
    }
}

fn exit_code_for(kind: io::ErrorKind) -> ExitCode {
    match kind {
        io::ErrorKind::ConnectionRefused => ExitCode::from(2),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ExitCode::from(3),
        _ => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: stage-submit --addr HOST:PORT [--timeout-ms T] [--retries N] \
                 [--retry-seed S] \
                 (submit --item NAME --dest M --deadline-ms T [--priority P] [--key K] \
                 | query --request N \
                 | inject --at-ms T (--link L | --item NAME --machine M) \
                 | optimize [--budget N] \
                 | snapshot | metrics [--prometheus] | trace [--limit N] | shutdown)"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let mut backoff = Backoff::new(options.retry_seed, options.retries, Duration::from_millis(50));
    let response = loop {
        match attempt(&options) {
            Ok(response) => break response,
            Err(e) => {
                eprintln!("error: {}", e.message);
                // A non-idempotent verb whose line may have been applied
                // must not be re-sent.
                let retryable = options.resend_safe || !e.sent;
                match backoff.next_delay() {
                    Some(delay) if retryable => {
                        eprintln!(
                            "retrying in {} ms (attempt {}/{})",
                            delay.as_millis(),
                            backoff.attempts_used(),
                            options.retries
                        );
                        std::thread::sleep(delay);
                    }
                    _ => return exit_code_for(e.kind),
                }
            }
        }
    };
    // Write, not print!: a reader that closes early (snapshot piped into
    // `head`) must not panic the client.
    let _ = std::io::stdout().write_all(response.as_bytes());
    let ok = serde_json::from_str::<Value>(response.trim())
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
        .unwrap_or(false);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
