//! One-shot client for the admission daemon.
//!
//! ```text
//! stage-submit --addr HOST:PORT <verb> [ARGS]
//!
//! VERBS:
//!   submit --item NAME --dest M --deadline-ms T [--priority P]
//!   query --request N
//!   snapshot
//!   metrics
//!   shutdown
//! ```
//!
//! Sends one request line, prints the one response line, and exits 0 if
//! the daemon answered `ok: true` (admission *rejections* are ok — they
//! are decisions, not failures), 1 otherwise.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use serde::Value;

struct Options {
    addr: String,
    line: String,
}

fn parse_args() -> Result<Options, String> {
    let mut addr = None;
    let mut verb: Option<String> = None;
    let mut item = None;
    let mut dest: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut priority: u64 = 0;
    let mut request: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().ok_or("--addr needs host:port")?),
            "--item" => item = Some(args.next().ok_or("--item needs a name")?),
            "--dest" => dest = Some(parse_number(args.next(), "--dest")?),
            "--deadline-ms" => deadline_ms = Some(parse_number(args.next(), "--deadline-ms")?),
            "--priority" => priority = parse_number(args.next(), "--priority")?,
            "--request" => request = Some(parse_number(args.next(), "--request")?),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other if verb.is_none() => verb = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    let line = match verb.as_deref() {
        Some("submit") => {
            let item = item.ok_or("submit needs --item")?;
            let dest = dest.ok_or("submit needs --dest")?;
            let deadline_ms = deadline_ms.ok_or("submit needs --deadline-ms")?;
            format!(
                r#"{{"verb":"submit","item":{},"destination":{dest},"deadline_ms":{deadline_ms},"priority":{priority}}}"#,
                json_string(&item)
            )
        }
        Some("query") => {
            let request = request.ok_or("query needs --request")?;
            format!(r#"{{"verb":"query","request":{request}}}"#)
        }
        Some("snapshot") => r#"{"verb":"snapshot"}"#.to_string(),
        Some("metrics") => r#"{"verb":"metrics"}"#.to_string(),
        Some("shutdown") => r#"{"verb":"shutdown"}"#.to_string(),
        Some(other) => return Err(format!("unknown verb {other:?}")),
        None => return Err("a verb is required".to_string()),
    };
    Ok(Options { addr, line })
}

fn parse_number(arg: Option<String>, flag: &str) -> Result<u64, String> {
    arg.ok_or(format!("{flag} needs a number"))?.parse().map_err(|e| format!("invalid {flag}: {e}"))
}

/// Minimal JSON string escaping for the item name.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: stage-submit --addr HOST:PORT \
                 (submit --item NAME --dest M --deadline-ms T [--priority P] \
                 | query --request N | snapshot | metrics | shutdown)"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let stream = match TcpStream::connect(&options.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = stream;
    if let Err(e) = writeln!(writer, "{}", options.line).and_then(|()| writer.flush()) {
        eprintln!("error: cannot send request: {e}");
        return ExitCode::FAILURE;
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => {
            eprintln!("error: daemon closed the connection without answering");
            ExitCode::FAILURE
        }
        Ok(_) => {
            // Write, not print!: a reader that closes early (snapshot
            // piped into `head`) must not panic the client.
            let _ = std::io::stdout().write_all(response.as_bytes());
            let ok = serde_json::from_str::<Value>(response.trim())
                .ok()
                .and_then(|v| v.get("ok").and_then(Value::as_bool))
                .unwrap_or(false);
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: cannot read response: {e}");
            ExitCode::FAILURE
        }
    }
}
