//! Concurrent load generator for the admission daemon, with an optional
//! deterministic chaos proxy.
//!
//! ```text
//! stage-loadgen --addr HOST:PORT [OPTIONS]
//!
//! OPTIONS:
//!   --clients N      concurrent client connections (default 8)
//!   --requests M     total submissions across all clients (default 500)
//!   --seed S         workload seed — use the daemon's --generate seed so
//!                    item names match (default 0)
//!   --family F       scenario family the workload is drawn from:
//!                    paper (default) | satcom | wan | grid | line — use
//!                    the daemon's --family so item names match; an
//!                    unknown name lists the valid ones and exits with
//!                    code 2
//!   --timeout-ms T   connect/read/write timeout per attempt (default 5000)
//!   --retries N      bounded retries per request line (default 5)
//!   --chaos S        interpose a fault proxy seeded with S between the
//!                    clients and the daemon
//!   --snapshot-out F after the run, fetch the daemon snapshot and write
//!                    it to F (bypasses the chaos proxy)
//!   --shutdown       after the run (and snapshot), ask the daemon to
//!                    drain and exit
//!
//! BENCH MODE (no --addr; spawns its own daemons):
//!   --bench          open-loop admission benchmark: spawn the sibling
//!                    stage-serve at 1, 4, and 16 workers, offer
//!                    submissions at a fixed rate, report latency from
//!                    each request's *scheduled* send time, and verify
//!                    each run's snapshot against a sequential replay
//!   --bench-out F    where the JSON report goes
//!                    (default results/BENCH_admission.json)
//!   --rate R         offered load in requests/second (default 1500)
//!   --senders N      open-loop sender threads (default 32)
//! ```
//!
//! Replays the request stream of the generated dstage-workload scenario
//! (cycling with shifted deadlines once exhausted; repeats of an already
//! admitted (item, destination) pair are legitimate rejections), then
//! prints throughput and client-side latency percentiles.
//!
//! Every submit line carries a deterministic `idempotency_key`
//! (`lg-SEED-INDEX`), and a client that loses its connection mid-run
//! reconnects and resumes the remaining lines with seeded exponential
//! backoff — a re-sent line whose response was lost replays the original
//! decision instead of double-admitting.
//!
//! `--chaos S` starts an in-process TCP proxy whose per-connection fault
//! plan is drawn from a splitmix64 stream over `S`: refuse service, cut
//! the connection after a byte budget (truncating mid-line), delay each
//! forwarded chunk, or forward cleanly. The schedule depends only on the
//! seed and the connection order, making chaos runs reproducible.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dstage_service::retry::Backoff;
use dstage_workload::Family;
use rand::{Rng, SeedableRng, StdRng};
use serde::Value;

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    seed: u64,
    family: Family,
    timeout: Duration,
    retries: u32,
    chaos: Option<u64>,
    snapshot_out: Option<String>,
    shutdown: bool,
    bench: bool,
    bench_out: String,
    rate: f64,
    senders: usize,
}

/// A fatal argument problem and the exit code it maps to. An unknown
/// family name exits with `2` (matching stage-serve's scheduler flag) so
/// scripts can tell a typo from the generic usage failure (`1`).
struct CliError {
    message: String,
    exit: ExitCode,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { message, exit: ExitCode::FAILURE }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::from(message.to_string())
    }
}

fn parse_args() -> Result<Options, CliError> {
    let mut options = Options {
        addr: String::new(),
        clients: 8,
        requests: 500,
        seed: 0,
        family: Family::Paper,
        timeout: Duration::from_millis(5_000),
        retries: 5,
        chaos: None,
        snapshot_out: None,
        shutdown: false,
        bench: false,
        bench_out: "results/BENCH_admission.json".to_string(),
        rate: 1_500.0,
        senders: 32,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().ok_or("--addr needs host:port")?,
            "--clients" => {
                options.clients = args
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid client count: {e}"))?;
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid request count: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--family" => {
                let name = args.next().ok_or("--family needs a name")?;
                options.family = Family::from_name(&name).ok_or_else(|| CliError {
                    message: format!("unknown family `{name}` (valid: {})", Family::names()),
                    exit: ExitCode::from(2),
                })?;
            }
            "--timeout-ms" => {
                let ms: u64 = args
                    .next()
                    .ok_or("--timeout-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid timeout: {e}"))?;
                if ms == 0 {
                    return Err(CliError::from("--timeout-ms must be positive"));
                }
                options.timeout = Duration::from_millis(ms);
            }
            "--retries" => {
                options.retries = args
                    .next()
                    .ok_or("--retries needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid retry count: {e}"))?;
            }
            "--chaos" => {
                options.chaos = Some(
                    args.next()
                        .ok_or("--chaos needs a seed")?
                        .parse()
                        .map_err(|e| format!("invalid chaos seed: {e}"))?,
                );
            }
            "--snapshot-out" => {
                options.snapshot_out = Some(args.next().ok_or("--snapshot-out needs a path")?);
            }
            "--shutdown" => options.shutdown = true,
            "--bench" => options.bench = true,
            "--bench-out" => {
                options.bench_out = args.next().ok_or("--bench-out needs a path")?;
            }
            "--rate" => {
                options.rate = args
                    .next()
                    .ok_or("--rate needs requests/second")?
                    .parse()
                    .map_err(|e| format!("invalid rate: {e}"))?;
                if !options.rate.is_finite() || options.rate <= 0.0 {
                    return Err(CliError::from("--rate must be positive"));
                }
            }
            "--senders" => {
                options.senders = args
                    .next()
                    .ok_or("--senders needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid sender count: {e}"))?;
            }
            "--help" | "-h" => return Err(CliError::from(String::new())),
            other => return Err(CliError::from(format!("unknown option {other:?}"))),
        }
    }
    if options.addr.is_empty() && !options.bench {
        return Err(CliError::from("--addr is required"));
    }
    if options.clients == 0 || options.requests == 0 || options.senders == 0 {
        return Err(CliError::from("--clients, --requests, and --senders must be positive"));
    }
    Ok(options)
}

/// The generated scenario's requests as submit lines, cycled (with
/// deadlines shifted one hour per lap) until `total` lines exist. Line
/// `i` carries the deterministic idempotency key `lg-{seed}-{i}`.
/// Point-to-multipoint groups in the scenario are already expanded to
/// per-destination requests, so every family replays as plain submits.
fn submit_lines(family: Family, seed: u64, total: usize) -> Vec<String> {
    let scenario = family.generate(seed);
    let base: Vec<(String, u64, u64, u8)> = scenario
        .requests()
        .map(|(_, r)| {
            (
                scenario.item(r.item()).name().to_string(),
                r.destination().index() as u64,
                r.deadline().as_millis(),
                r.priority().level(),
            )
        })
        .collect();
    (0..total)
        .map(|i| {
            let (item, dest, deadline_ms, priority) = &base[i % base.len()];
            let lap = (i / base.len()) as u64;
            format!(
                r#"{{"verb":"submit","item":"{item}","destination":{dest},"deadline_ms":{},"priority":{priority},"idempotency_key":"lg-{seed}-{i}"}}"#,
                deadline_ms + lap * 3_600_000
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Deterministic chaos proxy
// ---------------------------------------------------------------------

/// What the proxy does to one accepted connection.
#[derive(Debug, Clone, Copy)]
enum FaultPlan {
    /// Close immediately without talking to the daemon.
    Refuse,
    /// Forward, but cut both directions after this many client bytes —
    /// usually mid-line.
    CutAfter(usize),
    /// Forward every chunk after a fixed delay.
    Delay(Duration),
    /// Forward untouched.
    Clean,
}

impl FaultPlan {
    /// The plan for the `index`-th accepted connection under `seed`:
    /// 1/8 refuse, 2/8 cut, 1/8 delay, 4/8 clean.
    fn for_connection(seed: u64, index: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match rng.gen_range(0..8u32) {
            0 => FaultPlan::Refuse,
            1 | 2 => FaultPlan::CutAfter(20 + rng.gen_range(0..400usize)),
            3 => FaultPlan::Delay(Duration::from_millis(1 + rng.gen_range(0..10u64))),
            _ => FaultPlan::Clean,
        }
    }
}

/// Binds an ephemeral port and forwards each accepted connection to
/// `upstream` under a seeded per-connection [`FaultPlan`]. The accept
/// loop runs until the process exits.
fn spawn_chaos_proxy(upstream: String, seed: u64) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    thread::spawn(move || {
        for (index, stream) in listener.incoming().enumerate() {
            let Ok(client) = stream else { continue };
            let upstream = upstream.clone();
            let plan = FaultPlan::for_connection(seed, index as u64);
            thread::spawn(move || proxy_connection(client, &upstream, plan));
        }
    });
    Ok(addr)
}

/// Runs one proxied connection to completion under `plan`.
fn proxy_connection(client: TcpStream, upstream: &str, plan: FaultPlan) {
    if matches!(plan, FaultPlan::Refuse) {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(mut server_read), Ok(mut client_write)) = (server.try_clone(), client.try_clone())
    else {
        return;
    };
    let pump = thread::spawn(move || {
        let _ = io::copy(&mut server_read, &mut client_write);
        let _ = client_write.shutdown(Shutdown::Both);
    });
    // Client → server in small chunks so a byte budget cuts mid-line.
    let mut client_read = client;
    let mut server_write = server;
    let mut budget = match plan {
        FaultPlan::CutAfter(bytes) => Some(bytes),
        _ => None,
    };
    let delay = match plan {
        FaultPlan::Delay(d) => Some(d),
        _ => None,
    };
    let mut buf = [0u8; 64];
    loop {
        let n = match client_read.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let (forward, cut) = match budget.as_mut() {
            Some(remaining) if n >= *remaining => (*remaining, true),
            Some(remaining) => {
                *remaining -= n;
                (n, false)
            }
            None => (n, false),
        };
        if let Some(d) = delay {
            thread::sleep(d);
        }
        if server_write.write_all(&buf[..forward]).is_err() || server_write.flush().is_err() {
            break;
        }
        if cut {
            break;
        }
    }
    let _ = server_write.shutdown(Shutdown::Both);
    let _ = client_read.shutdown(Shutdown::Both);
    let _ = pump.join();
}

// ---------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------

#[derive(Default)]
struct ClientStats {
    admitted: u64,
    rejected: u64,
    errors: u64,
    retries: u64,
    gave_up: u64,
    latencies: Vec<Duration>,
}

fn connect(addr: &str, timeout: Duration) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
    use std::net::ToSocketAddrs;
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                // One-line requests: leaving Nagle on costs a delayed-ACK
                // stall per round trip.
                stream.set_nodelay(true)?;
                let reader = BufReader::new(stream.try_clone()?);
                return Ok((reader, stream));
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Submits `lines` (global indices starting at `first_index`), timing
/// each answered round trip. A lost connection is re-established and the
/// run resumes at the failed line; after `retries` bounded-backoff
/// attempts the line is abandoned (`gave_up`) and the run continues.
fn run_client(
    addr: &str,
    lines: &[String],
    first_index: usize,
    timeout: Duration,
    retries: u32,
    seed: u64,
) -> ClientStats {
    let mut stats =
        ClientStats { latencies: Vec::with_capacity(lines.len()), ..Default::default() };
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    for (offset, line) in lines.iter().enumerate() {
        let mut backoff = Backoff::new(
            seed.wrapping_add((first_index + offset) as u64),
            retries,
            Duration::from_millis(50),
        );
        let answer = loop {
            if conn.is_none() {
                match connect(addr, timeout) {
                    Ok(c) => conn = Some(c),
                    Err(_) => match backoff.next_delay() {
                        Some(delay) => {
                            stats.retries += 1;
                            thread::sleep(delay);
                            continue;
                        }
                        None => break None,
                    },
                }
            }
            let (reader, writer) = conn.as_mut().expect("connected above");
            let start = Instant::now();
            let exchange =
                writeln!(writer, "{line}").and_then(|()| writer.flush()).and_then(|()| {
                    let mut response = String::new();
                    match reader.read_line(&mut response) {
                        Ok(0) => Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "daemon closed the connection mid-run",
                        )),
                        Ok(_) => Ok((response, start.elapsed())),
                        Err(e) => Err(e),
                    }
                });
            match exchange {
                Ok(answer) => break Some(answer),
                Err(_) => {
                    conn = None;
                    match backoff.next_delay() {
                        Some(delay) => {
                            stats.retries += 1;
                            thread::sleep(delay);
                        }
                        None => break None,
                    }
                }
            }
        };
        match answer {
            Some((response, latency)) => {
                stats.latencies.push(latency);
                match serde_json::from_str::<Value>(response.trim())
                    .ok()
                    .and_then(|v| v.get("decision").and_then(|d| d.as_str().map(str::to_string)))
                    .as_deref()
                {
                    Some("admitted") => stats.admitted += 1,
                    Some("rejected") => stats.rejected += 1,
                    _ => stats.errors += 1,
                }
            }
            None => stats.gave_up += 1,
        }
    }
    stats
}

/// Opens a fresh connection, performs one NDJSON round trip, closes.
fn one_shot(addr: &str, line: &str, timeout: Duration) -> io::Result<String> {
    let (mut reader, mut writer) = connect(addr, timeout)?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")),
        Ok(_) => Ok(response.trim().to_string()),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Open-loop admission benchmark (--bench)
// ---------------------------------------------------------------------

/// One benchmarked server configuration.
struct BenchRun {
    workers: usize,
    answered: usize,
    admitted: u64,
    rejected: u64,
    errors: u64,
    elapsed: Duration,
    /// Response time minus the request's *scheduled* send instant, so
    /// queueing delay from an overloaded server is charged to the server
    /// (open-loop accounting), sorted ascending.
    latencies: Vec<Duration>,
    replay_identical: bool,
}

impl BenchRun {
    fn throughput(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    fn admits_per_sec(&self) -> f64 {
        self.admitted as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Spawns the sibling `stage-serve` binary on an ephemeral port with the
/// default paper heuristic configuration and returns (child, addr).
fn spawn_bench_server(
    family: Family,
    seed: u64,
    workers: usize,
) -> io::Result<(std::process::Child, String)> {
    let exe = std::env::current_exe()?;
    let dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "current_exe has no directory"))?;
    let server = dir.join(format!("stage-serve{}", std::env::consts::EXE_SUFFIX));
    let mut child = std::process::Command::new(&server)
        .args([
            "--generate",
            &seed.to_string(),
            "--family",
            family.name(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--heuristic",
            "full-one",
            "--criterion",
            "C4",
            "--ratio",
            "2",
            "--weights",
            "1,10,100",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stage-serve stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    match line.trim().strip_prefix("listening on ") {
        Some(addr) => Ok((child, addr.to_string())),
        None => {
            let _ = child.kill();
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("unexpected banner {line:?}")))
        }
    }
}

/// Whether `snapshot` (as fetched from a live daemon) equals a fresh
/// engine's sequential replay of its own decision log, byte for byte —
/// the determinism invariant batched admission must preserve.
fn replay_matches(family: Family, seed: u64, snapshot: &Value) -> bool {
    use dstage_core::cost::{CostCriterion, EuWeights};
    use dstage_core::heuristic::{Heuristic, HeuristicConfig};
    use dstage_model::request::PriorityWeights;
    use dstage_service::engine::AdmissionEngine;

    let scenario = family.generate(seed);
    let config = HeuristicConfig {
        criterion: CostCriterion::C4,
        eu: EuWeights::from_log10_ratio(2.0),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    };
    let mut replay = AdmissionEngine::new(&scenario, Heuristic::FullPathOneDestination, config);
    let Some(log) = snapshot.get("log").and_then(Value::as_array) else { return false };
    for entry in log {
        if replay.replay_record(entry).is_err() {
            return false;
        }
    }
    serde_json::to_string(snapshot).ok() == serde_json::to_string(&replay.snapshot()).ok()
}

/// Offers `lines` to `addr` open-loop: request `i` is *scheduled* at
/// `i / rate` seconds after the start, `senders` threads send their
/// residue classes in order (one short connection per request), and
/// latency counts from the scheduled instant even when a backlogged
/// sender transmits late.
fn bench_offered_load(
    addr: &str,
    lines: &[String],
    rate: f64,
    senders: usize,
    timeout: Duration,
) -> (Vec<Duration>, u64, u64, u64, Duration) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for sender in 0..senders {
        let mine: Vec<(usize, String)> = lines
            .iter()
            .enumerate()
            .skip(sender)
            .step_by(senders)
            .map(|(i, line)| (i, line.clone()))
            .collect();
        let addr = addr.to_string();
        handles.push(thread::spawn(move || {
            let mut latencies = Vec::with_capacity(mine.len());
            let (mut admitted, mut rejected, mut errors) = (0u64, 0u64, 0u64);
            for (index, line) in mine {
                let scheduled = start + Duration::from_secs_f64(index as f64 / rate);
                let now = Instant::now();
                if scheduled > now {
                    thread::sleep(scheduled - now);
                }
                let exchange = one_shot(&addr, &line, timeout);
                match exchange {
                    Ok(response) => {
                        latencies.push(scheduled.elapsed());
                        match serde_json::from_str::<Value>(&response)
                            .ok()
                            .and_then(|v| {
                                v.get("decision").and_then(|d| d.as_str().map(str::to_string))
                            })
                            .as_deref()
                        {
                            Some("admitted") => admitted += 1,
                            Some("rejected") => rejected += 1,
                            _ => errors += 1,
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies, admitted, rejected, errors)
        }));
    }
    let mut latencies = Vec::with_capacity(lines.len());
    let (mut admitted, mut rejected, mut errors) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (l, a, r, e) = handle.join().unwrap_or((Vec::new(), 0, 0, 1));
        latencies.extend(l);
        admitted += a;
        rejected += r;
        errors += e;
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    (latencies, admitted, rejected, errors, elapsed)
}

/// Benchmarks one worker count end to end: spawn, offer, snapshot,
/// drain, replay-check.
fn bench_one(options: &Options, lines: &[String], workers: usize) -> io::Result<BenchRun> {
    let timeout = options.timeout.max(Duration::from_secs(30));
    let (mut child, addr) = spawn_bench_server(options.family, options.seed, workers)?;
    let (latencies, admitted, rejected, errors, elapsed) =
        bench_offered_load(&addr, lines, options.rate, options.senders, timeout);
    let snapshot_line = one_shot(&addr, r#"{"verb":"snapshot"}"#, timeout)?;
    let snapshot: Value = serde_json::from_str(&snapshot_line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad snapshot: {e}")))?;
    let _ = one_shot(&addr, r#"{"verb":"shutdown"}"#, timeout)?;
    let status = child.wait()?;
    if !status.success() {
        return Err(io::Error::other(format!("stage-serve exited with {status:?}")));
    }
    let replay_identical = replay_matches(options.family, options.seed, &snapshot);
    Ok(BenchRun {
        workers,
        answered: latencies.len(),
        admitted,
        rejected,
        errors,
        elapsed,
        latencies,
        replay_identical,
    })
}

/// Runs the full benchmark matrix and writes the JSON report.
fn run_bench(options: &Options) -> ExitCode {
    const WORKER_COUNTS: [usize; 3] = [1, 4, 16];
    let lines = submit_lines(options.family, options.seed, options.requests);
    let mut runs = Vec::new();
    for workers in WORKER_COUNTS {
        match bench_one(options, &lines, workers) {
            Ok(run) => {
                println!(
                    "workers {:>2}: {} answered in {:.3} s ({:.1} req/s, {:.1} admits/s), \
                     p50 {} µs, p99 {} µs, replay_identical: {}",
                    run.workers,
                    run.answered,
                    run.elapsed.as_secs_f64(),
                    run.throughput(),
                    run.admits_per_sec(),
                    percentile(&run.latencies, 0.50).as_micros(),
                    percentile(&run.latencies, 0.99).as_micros(),
                    run.replay_identical
                );
                runs.push(run);
            }
            Err(e) => {
                eprintln!("error: bench run at {workers} workers failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let speedup =
        runs.last().map_or(0.0, |fast| fast.throughput() / runs[0].throughput().max(f64::EPSILON));
    let run_values: Vec<Value> = runs
        .iter()
        .map(|run| {
            Value::Object(vec![
                ("workers".to_string(), Value::UInt(run.workers as u64)),
                ("answered".to_string(), Value::UInt(run.answered as u64)),
                ("admitted".to_string(), Value::UInt(run.admitted)),
                ("rejected".to_string(), Value::UInt(run.rejected)),
                ("errors".to_string(), Value::UInt(run.errors)),
                ("elapsed_secs".to_string(), Value::Float(run.elapsed.as_secs_f64())),
                ("throughput_per_sec".to_string(), Value::Float(run.throughput())),
                ("admits_per_sec".to_string(), Value::Float(run.admits_per_sec())),
                (
                    "p50_us".to_string(),
                    Value::UInt(percentile(&run.latencies, 0.50).as_micros() as u64),
                ),
                (
                    "p90_us".to_string(),
                    Value::UInt(percentile(&run.latencies, 0.90).as_micros() as u64),
                ),
                (
                    "p99_us".to_string(),
                    Value::UInt(percentile(&run.latencies, 0.99).as_micros() as u64),
                ),
                (
                    "max_us".to_string(),
                    Value::UInt(
                        run.latencies.last().copied().unwrap_or(Duration::ZERO).as_micros() as u64,
                    ),
                ),
                ("replay_identical".to_string(), Value::Bool(run.replay_identical)),
            ])
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let report = Value::Object(vec![
        ("bench".to_string(), Value::String("admission".to_string())),
        ("available_parallelism".to_string(), Value::UInt(cores as u64)),
        ("seed".to_string(), Value::UInt(options.seed)),
        ("requests".to_string(), Value::UInt(options.requests as u64)),
        ("rate_per_sec".to_string(), Value::Float(options.rate)),
        ("senders".to_string(), Value::UInt(options.senders as u64)),
        ("runs".to_string(), Value::Array(run_values)),
        ("speedup_16_vs_1".to_string(), Value::Float(speedup)),
    ]);
    let rendered = match serde_json::to_string(&report) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = std::path::Path::new(&options.bench_out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&options.bench_out, rendered + "\n") {
        eprintln!("error: cannot write {}: {e}", options.bench_out);
        return ExitCode::FAILURE;
    }
    println!("report: {} (speedup 16 vs 1 workers: {speedup:.2}x)", options.bench_out);
    let clean = runs
        .iter()
        .all(|run| run.errors == 0 && run.answered == options.requests && run.replay_identical);
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(err) => {
            if !err.message.is_empty() {
                eprintln!("error: {}", err.message);
            }
            eprintln!(
                "usage: stage-loadgen --addr HOST:PORT [--clients N] [--requests M] [--seed S] \
                 [--family paper|satcom|wan|grid|line] \
                 [--timeout-ms T] [--retries N] [--chaos S] [--snapshot-out F] [--shutdown]\n\
                 \x20      stage-loadgen --bench [--bench-out F] [--rate R] [--senders N] \
                 [--requests M] [--seed S] [--family F]"
            );
            return if err.message.is_empty() { ExitCode::SUCCESS } else { err.exit };
        }
    };
    if options.bench {
        return run_bench(&options);
    }
    let target = match options.chaos {
        Some(chaos_seed) => match spawn_chaos_proxy(options.addr.clone(), chaos_seed) {
            Ok(addr) => {
                println!("chaos proxy on {addr} (seed {chaos_seed}) -> {}", options.addr);
                addr.to_string()
            }
            Err(e) => {
                eprintln!("error: cannot start chaos proxy: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => options.addr.clone(),
    };
    let lines = Arc::new(submit_lines(options.family, options.seed, options.requests));
    // Contiguous per-client slices: client c gets lines [c*share, ...).
    let share = options.requests.div_ceil(options.clients);
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..options.clients {
        let lines = Arc::clone(&lines);
        let target = target.clone();
        let timeout = options.timeout;
        let retries = options.retries;
        let seed = options.seed;
        handles.push(thread::spawn(move || {
            let lo = (client * share).min(lines.len());
            let hi = ((client + 1) * share).min(lines.len());
            run_client(&target, &lines[lo..hi], lo, timeout, retries, seed)
        }));
    }
    let mut totals = ClientStats::default();
    let mut panicked = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(stats) => {
                totals.admitted += stats.admitted;
                totals.rejected += stats.rejected;
                totals.errors += stats.errors;
                totals.retries += stats.retries;
                totals.gave_up += stats.gave_up;
                totals.latencies.extend(stats.latencies);
            }
            Err(_) => panicked += 1,
        }
    }
    let elapsed = started.elapsed();
    if panicked > 0 {
        eprintln!("client error: {panicked} client thread(s) panicked");
    }
    totals.latencies.sort_unstable();
    let answered = totals.latencies.len();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
    println!("clients: {}, requests: {} ({answered} answered)", options.clients, options.requests);
    println!(
        "admitted: {}, rejected: {}, protocol errors: {}",
        totals.admitted, totals.rejected, totals.errors
    );
    println!("retries: {}, gave up: {}", totals.retries, totals.gave_up);
    println!("elapsed: {:.3} s, throughput: {throughput:.1} req/s", elapsed.as_secs_f64());
    println!(
        "latency: p50 {} µs, p90 {} µs, p99 {} µs, max {} µs",
        percentile(&totals.latencies, 0.50).as_micros(),
        percentile(&totals.latencies, 0.90).as_micros(),
        percentile(&totals.latencies, 0.99).as_micros(),
        totals.latencies.last().copied().unwrap_or(Duration::ZERO).as_micros()
    );
    // The epilogue talks to the daemon directly (not through the chaos
    // proxy): the snapshot must be authoritative, and the shutdown verb
    // must not be dropped by an injected fault.
    let mut epilogue_failed = false;
    if let Some(path) = &options.snapshot_out {
        match one_shot(&options.addr, r#"{"verb":"snapshot"}"#, options.timeout) {
            Ok(snapshot) => {
                if let Err(e) = std::fs::write(path, snapshot + "\n") {
                    eprintln!("error: cannot write {path}: {e}");
                    epilogue_failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: snapshot fetch failed: {e}");
                epilogue_failed = true;
            }
        }
    }
    if options.shutdown {
        if let Err(e) = one_shot(&options.addr, r#"{"verb":"shutdown"}"#, options.timeout) {
            eprintln!("error: shutdown request failed: {e}");
            epilogue_failed = true;
        }
    }
    if panicked == 0 && totals.gave_up == 0 && answered == options.requests && !epilogue_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
