//! Concurrent load generator for the admission daemon, with an optional
//! deterministic chaos proxy.
//!
//! ```text
//! stage-loadgen --addr HOST:PORT [OPTIONS]
//!
//! OPTIONS:
//!   --clients N      concurrent client connections (default 8)
//!   --requests M     total submissions across all clients (default 500)
//!   --seed S         workload seed — use the daemon's --generate seed so
//!                    item names match (default 0)
//!   --timeout-ms T   connect/read/write timeout per attempt (default 5000)
//!   --retries N      bounded retries per request line (default 5)
//!   --chaos S        interpose a fault proxy seeded with S between the
//!                    clients and the daemon
//! ```
//!
//! Replays the request stream of the generated dstage-workload scenario
//! (cycling with shifted deadlines once exhausted; repeats of an already
//! admitted (item, destination) pair are legitimate rejections), then
//! prints throughput and client-side latency percentiles.
//!
//! Every submit line carries a deterministic `idempotency_key`
//! (`lg-SEED-INDEX`), and a client that loses its connection mid-run
//! reconnects and resumes the remaining lines with seeded exponential
//! backoff — a re-sent line whose response was lost replays the original
//! decision instead of double-admitting.
//!
//! `--chaos S` starts an in-process TCP proxy whose per-connection fault
//! plan is drawn from a splitmix64 stream over `S`: refuse service, cut
//! the connection after a byte budget (truncating mid-line), delay each
//! forwarded chunk, or forward cleanly. The schedule depends only on the
//! seed and the connection order, making chaos runs reproducible.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dstage_service::retry::Backoff;
use dstage_workload::{generate, GeneratorConfig};
use rand::{Rng, SeedableRng, StdRng};
use serde::Value;

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    seed: u64,
    timeout: Duration,
    retries: u32,
    chaos: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        clients: 8,
        requests: 500,
        seed: 0,
        timeout: Duration::from_millis(5_000),
        retries: 5,
        chaos: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().ok_or("--addr needs host:port")?,
            "--clients" => {
                options.clients = args
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid client count: {e}"))?;
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid request count: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = args
                    .next()
                    .ok_or("--timeout-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid timeout: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be positive".to_string());
                }
                options.timeout = Duration::from_millis(ms);
            }
            "--retries" => {
                options.retries = args
                    .next()
                    .ok_or("--retries needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid retry count: {e}"))?;
            }
            "--chaos" => {
                options.chaos = Some(
                    args.next()
                        .ok_or("--chaos needs a seed")?
                        .parse()
                        .map_err(|e| format!("invalid chaos seed: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if options.clients == 0 || options.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(options)
}

/// The generated scenario's requests as submit lines, cycled (with
/// deadlines shifted one hour per lap) until `total` lines exist. Line
/// `i` carries the deterministic idempotency key `lg-{seed}-{i}`.
fn submit_lines(seed: u64, total: usize) -> Vec<String> {
    let scenario = generate(&GeneratorConfig::paper(), seed);
    let base: Vec<(String, u64, u64, u8)> = scenario
        .requests()
        .map(|(_, r)| {
            (
                scenario.item(r.item()).name().to_string(),
                r.destination().index() as u64,
                r.deadline().as_millis(),
                r.priority().level(),
            )
        })
        .collect();
    (0..total)
        .map(|i| {
            let (item, dest, deadline_ms, priority) = &base[i % base.len()];
            let lap = (i / base.len()) as u64;
            format!(
                r#"{{"verb":"submit","item":"{item}","destination":{dest},"deadline_ms":{},"priority":{priority},"idempotency_key":"lg-{seed}-{i}"}}"#,
                deadline_ms + lap * 3_600_000
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Deterministic chaos proxy
// ---------------------------------------------------------------------

/// What the proxy does to one accepted connection.
#[derive(Debug, Clone, Copy)]
enum FaultPlan {
    /// Close immediately without talking to the daemon.
    Refuse,
    /// Forward, but cut both directions after this many client bytes —
    /// usually mid-line.
    CutAfter(usize),
    /// Forward every chunk after a fixed delay.
    Delay(Duration),
    /// Forward untouched.
    Clean,
}

impl FaultPlan {
    /// The plan for the `index`-th accepted connection under `seed`:
    /// 1/8 refuse, 2/8 cut, 1/8 delay, 4/8 clean.
    fn for_connection(seed: u64, index: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match rng.gen_range(0..8u32) {
            0 => FaultPlan::Refuse,
            1 | 2 => FaultPlan::CutAfter(20 + rng.gen_range(0..400usize)),
            3 => FaultPlan::Delay(Duration::from_millis(1 + rng.gen_range(0..10u64))),
            _ => FaultPlan::Clean,
        }
    }
}

/// Binds an ephemeral port and forwards each accepted connection to
/// `upstream` under a seeded per-connection [`FaultPlan`]. The accept
/// loop runs until the process exits.
fn spawn_chaos_proxy(upstream: String, seed: u64) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    thread::spawn(move || {
        for (index, stream) in listener.incoming().enumerate() {
            let Ok(client) = stream else { continue };
            let upstream = upstream.clone();
            let plan = FaultPlan::for_connection(seed, index as u64);
            thread::spawn(move || proxy_connection(client, &upstream, plan));
        }
    });
    Ok(addr)
}

/// Runs one proxied connection to completion under `plan`.
fn proxy_connection(client: TcpStream, upstream: &str, plan: FaultPlan) {
    if matches!(plan, FaultPlan::Refuse) {
        let _ = client.shutdown(Shutdown::Both);
        return;
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(mut server_read), Ok(mut client_write)) = (server.try_clone(), client.try_clone())
    else {
        return;
    };
    let pump = thread::spawn(move || {
        let _ = io::copy(&mut server_read, &mut client_write);
        let _ = client_write.shutdown(Shutdown::Both);
    });
    // Client → server in small chunks so a byte budget cuts mid-line.
    let mut client_read = client;
    let mut server_write = server;
    let mut budget = match plan {
        FaultPlan::CutAfter(bytes) => Some(bytes),
        _ => None,
    };
    let delay = match plan {
        FaultPlan::Delay(d) => Some(d),
        _ => None,
    };
    let mut buf = [0u8; 64];
    loop {
        let n = match client_read.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let (forward, cut) = match budget.as_mut() {
            Some(remaining) if n >= *remaining => (*remaining, true),
            Some(remaining) => {
                *remaining -= n;
                (n, false)
            }
            None => (n, false),
        };
        if let Some(d) = delay {
            thread::sleep(d);
        }
        if server_write.write_all(&buf[..forward]).is_err() || server_write.flush().is_err() {
            break;
        }
        if cut {
            break;
        }
    }
    let _ = server_write.shutdown(Shutdown::Both);
    let _ = client_read.shutdown(Shutdown::Both);
    let _ = pump.join();
}

// ---------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------

#[derive(Default)]
struct ClientStats {
    admitted: u64,
    rejected: u64,
    errors: u64,
    retries: u64,
    gave_up: u64,
    latencies: Vec<Duration>,
}

fn connect(addr: &str, timeout: Duration) -> io::Result<(BufReader<TcpStream>, TcpStream)> {
    use std::net::ToSocketAddrs;
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing");
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                let reader = BufReader::new(stream.try_clone()?);
                return Ok((reader, stream));
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// Submits `lines` (global indices starting at `first_index`), timing
/// each answered round trip. A lost connection is re-established and the
/// run resumes at the failed line; after `retries` bounded-backoff
/// attempts the line is abandoned (`gave_up`) and the run continues.
fn run_client(
    addr: &str,
    lines: &[String],
    first_index: usize,
    timeout: Duration,
    retries: u32,
    seed: u64,
) -> ClientStats {
    let mut stats =
        ClientStats { latencies: Vec::with_capacity(lines.len()), ..Default::default() };
    let mut conn: Option<(BufReader<TcpStream>, TcpStream)> = None;
    for (offset, line) in lines.iter().enumerate() {
        let mut backoff = Backoff::new(
            seed.wrapping_add((first_index + offset) as u64),
            retries,
            Duration::from_millis(50),
        );
        let answer = loop {
            if conn.is_none() {
                match connect(addr, timeout) {
                    Ok(c) => conn = Some(c),
                    Err(_) => match backoff.next_delay() {
                        Some(delay) => {
                            stats.retries += 1;
                            thread::sleep(delay);
                            continue;
                        }
                        None => break None,
                    },
                }
            }
            let (reader, writer) = conn.as_mut().expect("connected above");
            let start = Instant::now();
            let exchange =
                writeln!(writer, "{line}").and_then(|()| writer.flush()).and_then(|()| {
                    let mut response = String::new();
                    match reader.read_line(&mut response) {
                        Ok(0) => Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "daemon closed the connection mid-run",
                        )),
                        Ok(_) => Ok((response, start.elapsed())),
                        Err(e) => Err(e),
                    }
                });
            match exchange {
                Ok(answer) => break Some(answer),
                Err(_) => {
                    conn = None;
                    match backoff.next_delay() {
                        Some(delay) => {
                            stats.retries += 1;
                            thread::sleep(delay);
                        }
                        None => break None,
                    }
                }
            }
        };
        match answer {
            Some((response, latency)) => {
                stats.latencies.push(latency);
                match serde_json::from_str::<Value>(response.trim())
                    .ok()
                    .and_then(|v| v.get("decision").and_then(|d| d.as_str().map(str::to_string)))
                    .as_deref()
                {
                    Some("admitted") => stats.admitted += 1,
                    Some("rejected") => stats.rejected += 1,
                    _ => stats.errors += 1,
                }
            }
            None => stats.gave_up += 1,
        }
    }
    stats
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: stage-loadgen --addr HOST:PORT [--clients N] [--requests M] [--seed S] \
                 [--timeout-ms T] [--retries N] [--chaos S]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let target = match options.chaos {
        Some(chaos_seed) => match spawn_chaos_proxy(options.addr.clone(), chaos_seed) {
            Ok(addr) => {
                println!("chaos proxy on {addr} (seed {chaos_seed}) -> {}", options.addr);
                addr.to_string()
            }
            Err(e) => {
                eprintln!("error: cannot start chaos proxy: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => options.addr.clone(),
    };
    let lines = Arc::new(submit_lines(options.seed, options.requests));
    // Contiguous per-client slices: client c gets lines [c*share, ...).
    let share = options.requests.div_ceil(options.clients);
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..options.clients {
        let lines = Arc::clone(&lines);
        let target = target.clone();
        let timeout = options.timeout;
        let retries = options.retries;
        let seed = options.seed;
        handles.push(thread::spawn(move || {
            let lo = (client * share).min(lines.len());
            let hi = ((client + 1) * share).min(lines.len());
            run_client(&target, &lines[lo..hi], lo, timeout, retries, seed)
        }));
    }
    let mut totals = ClientStats::default();
    let mut panicked = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(stats) => {
                totals.admitted += stats.admitted;
                totals.rejected += stats.rejected;
                totals.errors += stats.errors;
                totals.retries += stats.retries;
                totals.gave_up += stats.gave_up;
                totals.latencies.extend(stats.latencies);
            }
            Err(_) => panicked += 1,
        }
    }
    let elapsed = started.elapsed();
    if panicked > 0 {
        eprintln!("client error: {panicked} client thread(s) panicked");
    }
    totals.latencies.sort_unstable();
    let answered = totals.latencies.len();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
    println!("clients: {}, requests: {} ({answered} answered)", options.clients, options.requests);
    println!(
        "admitted: {}, rejected: {}, protocol errors: {}",
        totals.admitted, totals.rejected, totals.errors
    );
    println!("retries: {}, gave up: {}", totals.retries, totals.gave_up);
    println!("elapsed: {:.3} s, throughput: {throughput:.1} req/s", elapsed.as_secs_f64());
    println!(
        "latency: p50 {} µs, p90 {} µs, p99 {} µs, max {} µs",
        percentile(&totals.latencies, 0.50).as_micros(),
        percentile(&totals.latencies, 0.90).as_micros(),
        percentile(&totals.latencies, 0.99).as_micros(),
        totals.latencies.last().copied().unwrap_or(Duration::ZERO).as_micros()
    );
    if panicked == 0 && totals.gave_up == 0 && answered == options.requests {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
