//! Concurrent load generator for the admission daemon.
//!
//! ```text
//! stage-loadgen --addr HOST:PORT [OPTIONS]
//!
//! OPTIONS:
//!   --clients N    concurrent client connections (default 8)
//!   --requests M   total submissions across all clients (default 500)
//!   --seed S       workload seed — use the daemon's --generate seed so
//!                  item names match (default 0)
//! ```
//!
//! Replays the request stream of the generated dstage-workload scenario
//! (cycling with shifted deadlines once exhausted; repeats of an already
//! admitted (item, destination) pair are legitimate rejections), then
//! prints throughput and client-side latency percentiles.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dstage_workload::{generate, GeneratorConfig};
use serde::Value;

struct Options {
    addr: String,
    clients: usize,
    requests: usize,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { addr: String::new(), clients: 8, requests: 500, seed: 0 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().ok_or("--addr needs host:port")?,
            "--clients" => {
                options.clients = args
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid client count: {e}"))?;
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("invalid request count: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if options.clients == 0 || options.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(options)
}

/// The generated scenario's requests as submit lines, cycled (with
/// deadlines shifted one hour per lap) until `total` lines exist.
fn submit_lines(seed: u64, total: usize) -> Vec<String> {
    let scenario = generate(&GeneratorConfig::paper(), seed);
    let base: Vec<(String, u64, u64, u8)> = scenario
        .requests()
        .map(|(_, r)| {
            (
                scenario.item(r.item()).name().to_string(),
                r.destination().index() as u64,
                r.deadline().as_millis(),
                r.priority().level(),
            )
        })
        .collect();
    (0..total)
        .map(|i| {
            let (item, dest, deadline_ms, priority) = &base[i % base.len()];
            let lap = (i / base.len()) as u64;
            format!(
                r#"{{"verb":"submit","item":"{item}","destination":{dest},"deadline_ms":{},"priority":{priority}}}"#,
                deadline_ms + lap * 3_600_000
            )
        })
        .collect()
}

#[derive(Default)]
struct ClientStats {
    admitted: u64,
    rejected: u64,
    errors: u64,
    latencies: Vec<Duration>,
}

/// Submits `lines` over one connection, timing each round trip.
fn run_client(addr: &str, lines: &[String]) -> Result<ClientStats, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut stats =
        ClientStats { latencies: Vec::with_capacity(lines.len()), ..Default::default() };
    let mut response = String::new();
    for line in lines {
        let start = Instant::now();
        writeln!(writer, "{line}")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        response.clear();
        let n = reader.read_line(&mut response).map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection mid-run".to_string());
        }
        stats.latencies.push(start.elapsed());
        match serde_json::from_str::<Value>(response.trim())
            .ok()
            .and_then(|v| v.get("decision").and_then(|d| d.as_str().map(str::to_string)))
            .as_deref()
        {
            Some("admitted") => stats.admitted += 1,
            Some("rejected") => stats.rejected += 1,
            _ => stats.errors += 1,
        }
    }
    Ok(stats)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: stage-loadgen --addr HOST:PORT [--clients N] [--requests M] [--seed S]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let lines = Arc::new(submit_lines(options.seed, options.requests));
    // Contiguous per-client slices: client c gets lines [c*share, ...).
    let share = options.requests.div_ceil(options.clients);
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..options.clients {
        let lines = Arc::clone(&lines);
        let addr = options.addr.clone();
        handles.push(thread::spawn(move || {
            let lo = (client * share).min(lines.len());
            let hi = ((client + 1) * share).min(lines.len());
            run_client(&addr, &lines[lo..hi])
        }));
    }
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<Duration> = Vec::with_capacity(options.requests);
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(stats)) => {
                admitted += stats.admitted;
                rejected += stats.rejected;
                errors += stats.errors;
                latencies.extend(stats.latencies);
            }
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    let elapsed = started.elapsed();
    for failure in &failures {
        eprintln!("client error: {failure}");
    }
    latencies.sort_unstable();
    let answered = latencies.len();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(f64::EPSILON);
    println!("clients: {}, requests: {} ({answered} answered)", options.clients, options.requests);
    println!("admitted: {admitted}, rejected: {rejected}, protocol errors: {errors}");
    println!("elapsed: {:.3} s, throughput: {throughput:.1} req/s", elapsed.as_secs_f64());
    println!(
        "latency: p50 {} µs, p90 {} µs, p99 {} µs, max {} µs",
        percentile(&latencies, 0.50).as_micros(),
        percentile(&latencies, 0.90).as_micros(),
        percentile(&latencies, 0.99).as_micros(),
        latencies.last().copied().unwrap_or(Duration::ZERO).as_micros()
    );
    if failures.is_empty() && answered == options.requests {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
