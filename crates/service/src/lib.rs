//! Concurrent admission-control scheduling daemon for the data-staging
//! heuristics (ICDCS 2000 reproduction).
//!
//! Turns the offline schedulers of `dstage-core` into a long-running
//! service: a TCP daemon speaking newline-delimited JSON that admits or
//! rejects data requests one at a time, reserving network capacity for
//! admitted paths in a live ledger, and repairing that ledger when
//! disturbances are injected. The moving parts:
//!
//! * [`engine::AdmissionEngine`] — deterministic admission +
//!   fault-tolerance state (catalog, admitted requests, committed
//!   reservations, injected disturbances, repair outcomes);
//! * [`batch`] — epoch-batched admission: concurrent submissions
//!   speculate in parallel against a snapshot and commit in arrival
//!   order with sharded-footprint conflict detection;
//! * [`protocol`] — the nine-verb NDJSON wire protocol (`submit`,
//!   `query`, `inject`, `optimize`, `snapshot`, `metrics`, `trace`,
//!   `checkpoint`, `shutdown`), with idempotent retries via
//!   `idempotency_key` on `submit`;
//! * [`server::Server`] — accept loop + crossbeam worker pool sharing
//!   the engine behind a `parking_lot::RwLock`, with request lines
//!   bounded at [`server::MAX_LINE_BYTES`];
//! * [`wal`] — the checksummed, length-prefixed write-ahead log with
//!   configurable fsync policies and deterministic crash points;
//! * [`durability::Durability`] — WAL staging + group commit,
//!   atomic checkpoints with log compaction, and crash recovery
//!   (`stage-serve --data-dir`);
//! * [`retry::Backoff`] — bounded, seeded exponential backoff shared by
//!   the client binaries.
//!
//! Binaries: `stage-serve` (the daemon), `stage-submit` (one-shot
//! client with timeouts, retries, and fault injection), `stage-loadgen`
//! (concurrent replay of a generated workload with reconnect-and-resume
//! clients and an optional deterministic chaos proxy, `--chaos SEED`).
//!
//! # Examples
//!
//! Drive the engine directly, without sockets:
//!
//! ```
//! use dstage_core::heuristic::{Heuristic, HeuristicConfig};
//! use dstage_service::engine::AdmissionEngine;
//! use dstage_service::protocol::{InjectArgs, InjectKind, SubmitArgs};
//! use dstage_workload::small::two_hop_chain;
//!
//! let mut engine = AdmissionEngine::new(
//!     &two_hop_chain(),
//!     Heuristic::FullPathOneDestination,
//!     HeuristicConfig::paper_best(),
//! );
//! let decision = engine
//!     .submit(&SubmitArgs {
//!         item: "alpha".to_string(),
//!         destination: 2,
//!         deadline_ms: 7_200_000,
//!         priority: 2,
//!         idempotency_key: None,
//!     })
//!     .expect("no idempotency conflict");
//! assert_eq!(decision.decision, "admitted");
//!
//! // Losing the only first-hop link displaces the request; with no
//! // surviving route it is evicted and `query` says so.
//! let outcome = engine
//!     .inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 0 }, at_ms: 1_000 })
//!     .expect("link 0 exists");
//! assert_eq!(outcome.displaced, 1);
//! assert_eq!(engine.query(0).unwrap().status, "evicted");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod durability;
pub mod engine;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod wal;

/// Convenience re-exports of the service vocabulary.
pub mod prelude {
    pub use crate::batch::{run_epoch, run_epoch_durable};
    pub use crate::durability::{CheckpointStats, Durability, RecoveryReport};
    pub use crate::engine::{
        record_from_value, record_value, AdmissionCounters, AdmissionEngine, Decision, Evaluation,
        InjectionRecord, LogRecord, RequestStatus, SubmissionRecord,
    };
    pub use crate::protocol::{
        CheckpointResponse, ClientRequest, ErrorResponse, InjectArgs, InjectKind, InjectResponse,
        QueryResponse, SubmitArgs, SubmitResponse,
    };
    pub use crate::retry::Backoff;
    pub use crate::server::{LatencyHistogram, Server, ServerConfig, MAX_LINE_BYTES};
    pub use crate::wal::{crc32, scan_segment, FsyncPolicy, SegmentWriter};
}
