//! Concurrent admission-control scheduling daemon for the data-staging
//! heuristics (ICDCS 2000 reproduction).
//!
//! Turns the offline schedulers of `dstage-core` into a long-running
//! service: a TCP daemon speaking newline-delimited JSON that admits or
//! rejects data requests one at a time, reserving network capacity for
//! admitted paths in a live ledger. The moving parts:
//!
//! * [`engine::AdmissionEngine`] — deterministic admission state
//!   (catalog, admitted requests, committed reservations);
//! * [`protocol`] — the five-verb NDJSON wire protocol
//!   (`submit`, `query`, `snapshot`, `metrics`, `shutdown`);
//! * [`server::Server`] — accept loop + crossbeam worker pool sharing
//!   the engine behind a `parking_lot::RwLock`.
//!
//! Binaries: `stage-serve` (the daemon), `stage-submit` (one-shot
//! client), `stage-loadgen` (concurrent replay of a generated workload
//! with throughput and latency percentiles).
//!
//! # Examples
//!
//! Drive the engine directly, without sockets:
//!
//! ```
//! use dstage_core::heuristic::{Heuristic, HeuristicConfig};
//! use dstage_service::engine::AdmissionEngine;
//! use dstage_service::protocol::SubmitArgs;
//! use dstage_workload::small::two_hop_chain;
//!
//! let mut engine = AdmissionEngine::new(
//!     &two_hop_chain(),
//!     Heuristic::FullPathOneDestination,
//!     HeuristicConfig::paper_best(),
//! );
//! let decision = engine.submit(&SubmitArgs {
//!     item: "alpha".to_string(),
//!     destination: 2,
//!     deadline_ms: 7_200_000,
//!     priority: 2,
//! });
//! assert_eq!(decision.decision, "admitted");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod protocol;
pub mod server;

/// Convenience re-exports of the service vocabulary.
pub mod prelude {
    pub use crate::engine::{AdmissionCounters, AdmissionEngine, Decision, SubmissionRecord};
    pub use crate::protocol::{
        ClientRequest, ErrorResponse, QueryResponse, SubmitArgs, SubmitResponse,
    };
    pub use crate::server::{LatencyHistogram, Server, ServerConfig};
}
