//! Incremental admission control on top of the offline heuristics.
//!
//! The [`AdmissionEngine`] owns the live catalog (network + data items),
//! the set of admitted requests, and the committed link reservations.
//! Each `submit` rebuilds a one-candidate [`Scenario`], replays the
//! committed reservations into a fresh [`SchedulerState`] (the same
//! replay machinery the dstage-dynamic rolling horizon uses), and lets
//! the configured heuristic try to route the candidate. If the candidate
//! can be delivered by its deadline it is admitted and its path becomes
//! part of the ledger; otherwise it is rejected and leaves no residue.
//!
//! `inject` feeds a live disturbance (link outage / copy loss) into the
//! engine: committed reservations the disturbance invalidates are
//! cancelled with the cascade semantics of [`dstage_dynamic::repair`],
//! then the displaced requests are re-admitted against the surviving
//! ledger in weighted-priority order — so forced degradation drops the
//! lowest `W[p]` first, preserving the paper's objective. A displaced
//! request that can be re-routed becomes `repaired`; one that cannot is
//! `evicted` (terminal).
//!
//! Every method is a deterministic function of the operation history
//! (submissions and injections interleaved), which is what makes
//! concurrent serving testable: serializing the same history in the same
//! order through a fresh engine must produce a byte-identical snapshot.

use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};

use dstage_core::heuristic::{drive_state, Heuristic, HeuristicConfig};
use dstage_core::schedule::{Delivery, Schedule, Transfer};
use dstage_core::state::SchedulerState;
use dstage_dynamic::{filter_consistent, final_deliveries, replay_state, Loss, Outage};
use dstage_model::data::DataItem;
use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
use dstage_model::network::Network;
use dstage_model::request::{Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_resources::shard::{Footprint, ShardConfig, ShardMap};
use serde::Value;

use crate::protocol::{
    InjectArgs, InjectKind, InjectResponse, OptimizeResponse, P2mpSubmitArgs, P2mpSubmitResponse,
    QueryResponse, RouteHop, SubmitArgs, SubmitResponse,
};

/// Swap budget used when an `optimize` request does not name one.
pub const DEFAULT_OPTIMIZE_BUDGET: u64 = 8;

/// Idempotency keys the engine remembers before forgetting the oldest.
pub const IDEMPOTENCY_CAPACITY: usize = 4096;

/// The admission decision recorded for one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The request was admitted and its path reserved.
    Admitted {
        /// Id assigned to the admitted request.
        request: RequestId,
        /// When the item reaches the destination.
        eta: SimTime,
        /// Hops on the delivery path.
        hops: u32,
        /// Link reservations added to the ledger by this admission.
        new_transfers: usize,
    },
    /// The request was refused; the ledger is unchanged.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
}

/// One processed submission: the arguments and the decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionRecord {
    /// What the client asked for.
    pub args: SubmitArgs,
    /// What the engine decided.
    pub decision: Decision,
}

/// One processed injection: the disturbance and what repair did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// The injected disturbance.
    pub args: InjectArgs,
    /// Committed reservations the disturbance invalidated (cascades
    /// through staged copies included).
    pub cancelled_transfers: usize,
    /// Displaced request ids re-admitted on surviving routes, in repair
    /// order (descending weight, then id).
    pub repaired: Vec<u32>,
    /// Displaced request ids no surviving route could satisfy.
    pub evicted: Vec<u32>,
}

/// One kept evict-and-readmit swap of an optimization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapRecord {
    /// Log index of the rejected submission that was readmitted.
    pub submission: u64,
    /// Request id evicted to free the capacity.
    pub evicted: u32,
    /// Request id assigned to the readmitted submission.
    pub admitted: u32,
}

/// One processed `optimize` pass: the budget it ran under and the swaps
/// it kept.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationRecord {
    /// Swap budget the pass ran under.
    pub budget: u64,
    /// Evict-and-readmit trials actually spent.
    pub attempted: u64,
    /// Swaps that improved `E[S]` and were kept, in adoption order.
    pub swaps: Vec<SwapRecord>,
}

/// One entry of the decision log: the engine's complete, replayable
/// operation history.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A `submit` and its decision.
    Submission(SubmissionRecord),
    /// An `inject` and its repair outcome.
    Injection(InjectionRecord),
    /// An `optimize` pass and the swaps it kept.
    Optimization(OptimizationRecord),
}

/// Lifecycle of an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Admitted and never displaced.
    Admitted,
    /// Displaced by a disturbance and re-admitted on a new route.
    Repaired,
    /// Displaced with no surviving route; terminal — a later injection
    /// never resurrects it.
    Evicted,
}

impl RequestStatus {
    /// The wire name of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RequestStatus::Admitted => "admitted",
            RequestStatus::Repaired => "repaired",
            RequestStatus::Evicted => "evicted",
        }
    }

    /// Parses a wire name back (the inverse of
    /// [`RequestStatus::as_str`]).
    #[must_use]
    pub fn from_wire(name: &str) -> Option<RequestStatus> {
        match name {
            "admitted" => Some(RequestStatus::Admitted),
            "repaired" => Some(RequestStatus::Repaired),
            "evicted" => Some(RequestStatus::Evicted),
            _ => None,
        }
    }
}

/// Bookkeeping for one admitted request.
#[derive(Debug, Clone)]
struct AdmittedInfo {
    status: RequestStatus,
    delivery: Option<Delivery>,
    route: Vec<Transfer>,
}

/// The outcome of evaluating one submission against the engine state,
/// before any mutation — the unit of speculation for batched admission
/// (see [`crate::batch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Evaluation {
    /// The candidate cannot be admitted.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// The candidate fits: committing reserves `route` and promises
    /// `delivery`.
    Admitted {
        /// The validated request.
        candidate: Request,
        /// The promised delivery. Its request id is provisional — it is
        /// reassigned from the live admitted count at commit time, so an
        /// evaluation speculated against a snapshot stays valid when
        /// other admissions commit first.
        delivery: Delivery,
        /// New link reservations the admission adds to the ledger.
        route: Vec<Transfer>,
    },
}

/// Bounded idempotency-key index with FIFO (insertion-order) eviction.
///
/// The unbounded map was a memory leak under sustained keyed traffic.
/// Bounding it must not break replay of recorded responses, so the
/// eviction rule is a pure function of the insertion sequence: when a
/// new key would exceed the capacity, the oldest *inserted* key is
/// forgotten. Replaying a decision log re-inserts the same keys in the
/// same order with the same capacity, so the replayed cache matches the
/// live one at every log index. A client that retries a key after it
/// aged out of the window is re-decided (and re-logged) instead of
/// replayed — the same outcome as a retry that never carried a key.
#[derive(Debug, Clone)]
struct IdempotencyCache {
    index: HashMap<String, usize>,
    order: VecDeque<String>,
    capacity: usize,
}

impl IdempotencyCache {
    fn new(capacity: usize) -> Self {
        IdempotencyCache { index: HashMap::new(), order: VecDeque::new(), capacity }
    }

    fn get(&self, key: &str) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Remembers `key -> submission`, evicting the oldest remembered key
    /// when full. Callers never insert a key that is already present
    /// (they replay it instead), so `order` stays duplicate-free.
    fn insert(&mut self, key: String, submission: usize) {
        if self.capacity == 0 {
            return;
        }
        while self.index.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.index.remove(&oldest);
        }
        self.order.push_back(key.clone());
        self.index.insert(key, submission);
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.index.len() > capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.index.remove(&oldest);
        }
    }
}

/// Thread-safe-by-construction admission-control state (owned data only,
/// no interior mutability — wrap it in a lock to share).
#[derive(Debug, Clone)]
pub struct AdmissionEngine {
    network: Network,
    items: Vec<DataItem>,
    item_ids: HashMap<String, u32>,
    gc_delay: SimDuration,
    horizon: SimTime,
    heuristic: Heuristic,
    config: HeuristicConfig,
    admitted: Vec<Request>,
    info: Vec<AdmittedInfo>,
    committed: Vec<Transfer>,
    outages: Vec<Outage>,
    losses: Vec<Loss>,
    now: SimTime,
    idempotency: IdempotencyCache,
    log: Vec<LogRecord>,
    /// Monotone operation counter: bumped once per logged operation
    /// (submission, injection, optimization). The batch committer
    /// compares it against its snapshot's version to detect interleaved
    /// exclusive operations.
    version: u64,
}

impl AdmissionEngine {
    /// Creates an engine serving `catalog`'s network and data items.
    ///
    /// Requests present in the catalog scenario are ignored: admission
    /// state starts empty and grows one `submit` at a time.
    #[must_use]
    pub fn new(catalog: &Scenario, heuristic: Heuristic, config: HeuristicConfig) -> Self {
        let items: Vec<DataItem> = catalog.items().map(|(_, item)| item.clone()).collect();
        let item_ids =
            items.iter().enumerate().map(|(i, item)| (item.name().to_string(), i as u32)).collect();
        AdmissionEngine {
            network: catalog.network().clone(),
            items,
            item_ids,
            gc_delay: catalog.gc_delay(),
            horizon: catalog.horizon(),
            heuristic,
            config,
            admitted: Vec::new(),
            info: Vec::new(),
            committed: Vec::new(),
            outages: Vec::new(),
            losses: Vec::new(),
            now: SimTime::ZERO,
            idempotency: IdempotencyCache::new(IDEMPOTENCY_CAPACITY),
            log: Vec::new(),
            version: 0,
        }
    }

    /// The monotone state version (one tick per logged operation).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Overrides the idempotency window, trimming oldest keys if needed.
    /// Testing hook: replay equality requires the replaying engine to
    /// use the same capacity as the recording one.
    pub fn set_idempotency_capacity(&mut self, capacity: usize) {
        self.idempotency.set_capacity(capacity);
    }

    /// Names of the data items in the catalog, in id order.
    pub fn item_names(&self) -> impl Iterator<Item = &str> {
        self.items.iter().map(DataItem::name)
    }

    /// Number of machines in the served network.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.network.machine_count()
    }

    /// Number of processed submissions (admitted + rejected); injections
    /// are not counted.
    #[must_use]
    pub fn submission_count(&self) -> usize {
        self.log.iter().filter(|r| matches!(r, LogRecord::Submission(_))).count()
    }

    /// Number of admitted requests (including later-evicted ones).
    #[must_use]
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// The processed operations, in decision order.
    #[must_use]
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Decides admission for one request and, on success, reserves its
    /// path in the ledger. Malformed asks become recorded rejections so
    /// the log stays a complete history.
    ///
    /// A resubmission carrying an already-seen `idempotency_key` with the
    /// *same* arguments replays the original response without deciding
    /// (or logging) again — a client retry after a lost response never
    /// double-admits.
    ///
    /// # Errors
    ///
    /// Returns a message when the `idempotency_key` was already used with
    /// *different* arguments; nothing is logged.
    pub fn submit(&mut self, args: &SubmitArgs) -> Result<SubmitResponse, String> {
        self.submit_with(args, None)
    }

    /// Decides admission for a point-to-multipoint group: one item, many
    /// destinations, each decided in order through the ordinary admission
    /// path. Every member after the first plans against the ledger the
    /// earlier members committed, so upstream staged copies are shared —
    /// a destination behind an already-fed hub reserves only its own
    /// final leg (smaller `new_transfers`), while still earning its own
    /// per-destination decision and `W[p]` credit.
    ///
    /// Each destination is logged as its own submission, so snapshots,
    /// replay, and the decision-log schema are unchanged: per-destination
    /// outcomes, byte-identical replays. A group `idempotency_key` fans
    /// out to derived member keys (`key#0`, `key#1`, ...), so a group
    /// retry replays every member's recorded decision.
    ///
    /// # Errors
    ///
    /// Returns a message for an empty or duplicated destination list
    /// (nothing logged), and propagates a derived-key conflict —
    /// members decided before the conflicting one stay logged, exactly
    /// as if they had been submitted individually.
    pub fn submit_p2mp(&mut self, args: &P2mpSubmitArgs) -> Result<P2mpSubmitResponse, String> {
        if args.destinations.is_empty() {
            return Err("point-to-multipoint submit needs at least one destination".to_string());
        }
        for (i, d) in args.destinations.iter().enumerate() {
            if args.destinations[..i].contains(d) {
                return Err(format!("duplicate destination {d} in point-to-multipoint submit"));
            }
        }
        dstage_obs::metrics::SERVICE_P2MP_GROUPS.inc();
        let mut group = Vec::with_capacity(args.destinations.len());
        for (i, &destination) in args.destinations.iter().enumerate() {
            let member = SubmitArgs {
                item: args.item.clone(),
                destination,
                deadline_ms: args.deadline_ms,
                priority: args.priority,
                idempotency_key: args.idempotency_key.as_ref().map(|k| format!("{k}#{i}")),
            };
            group.push(self.submit(&member)?);
        }
        let admitted = group.iter().filter(|r| r.decision == "admitted").count() as u64;
        Ok(P2mpSubmitResponse {
            ok: true,
            admitted,
            rejected: group.len() as u64 - admitted,
            group,
        })
    }

    /// Like [`AdmissionEngine::submit`], but may commit an [`Evaluation`]
    /// speculated against a clone of this engine instead of evaluating
    /// live. The caller asserts the speculation is still valid — i.e. no
    /// state change since the snapshot can alter this candidate's
    /// evaluation; [`crate::batch`] establishes that with its conflict
    /// guards. With batch verification enabled (`DSTAGE_BATCH_VERIFY`)
    /// the claim is re-checked against the live state and a divergence
    /// panics.
    ///
    /// An idempotent replay ignores `precomputed` — the recorded
    /// decision wins, as in the sequential path.
    ///
    /// # Errors
    ///
    /// Returns a message when the `idempotency_key` was already used with
    /// *different* arguments; nothing is logged.
    pub fn submit_with(
        &mut self,
        args: &SubmitArgs,
        precomputed: Option<Evaluation>,
    ) -> Result<SubmitResponse, String> {
        if let Some(key) = &args.idempotency_key {
            if let Some(index) = self.idempotency.get(key) {
                let LogRecord::Submission(record) = &self.log[index] else {
                    unreachable!("idempotency keys only index submissions");
                };
                if record.args == *args {
                    return Ok(Self::response_for(index as u64, &record.decision));
                }
                return Err(format!(
                    "idempotency key `{key}` was already used with different arguments"
                ));
            }
        }
        let submission = self.log.len() as u64;
        let evaluation = match precomputed {
            Some(evaluation) => {
                if crate::batch::verify_enabled() {
                    // The provisional delivery.request is position-
                    // dependent (it shifts with every earlier admission)
                    // and is reassigned at commit, so it is excluded
                    // from the comparison.
                    let mut live = self.evaluate(args);
                    let mut speculated = evaluation.clone();
                    for side in [&mut live, &mut speculated] {
                        if let Evaluation::Admitted { delivery, .. } = side {
                            delivery.request = RequestId::new(0);
                        }
                    }
                    assert!(
                        live == speculated,
                        "speculative evaluation diverged from the live state\n  \
                         speculated: {speculated:?}\n  live: {live:?}"
                    );
                }
                evaluation
            }
            None => self.evaluate(args),
        };
        let decision = self.apply_evaluation(args, evaluation);
        let response = Self::response_for(submission, &decision);
        if let Some(key) = &args.idempotency_key {
            self.idempotency.insert(key.clone(), submission as usize);
        }
        self.log.push(LogRecord::Submission(SubmissionRecord { args: args.clone(), decision }));
        self.version += 1;
        Ok(response)
    }

    fn response_for(submission: u64, decision: &Decision) -> SubmitResponse {
        match decision {
            Decision::Admitted { request, eta, hops, new_transfers } => SubmitResponse {
                ok: true,
                submission,
                decision: "admitted".to_string(),
                request: Some(request.index() as u64),
                eta_ms: Some(eta.as_millis()),
                hops: Some(u64::from(*hops)),
                new_transfers: Some(*new_transfers as u64),
                reason: None,
            },
            Decision::Rejected { reason } => SubmitResponse {
                ok: true,
                submission,
                decision: "rejected".to_string(),
                request: None,
                eta_ms: None,
                hops: None,
                new_transfers: None,
                reason: Some(reason.clone()),
            },
        }
    }

    /// Evaluates one submission against the current state without
    /// mutating anything — the read half of a decision, safe to run
    /// against a shared snapshot from many threads at once.
    #[must_use]
    pub fn evaluate(&self, args: &SubmitArgs) -> Evaluation {
        let Some(&item) = self.item_ids.get(args.item.as_str()) else {
            return Evaluation::Rejected { reason: format!("unknown data item `{}`", args.item) };
        };
        if args.priority >= self.config.priority_weights.levels() {
            return Evaluation::Rejected {
                reason: format!(
                    "priority {} out of range (weighting has {} levels)",
                    args.priority,
                    self.config.priority_weights.levels()
                ),
            };
        }
        let candidate = Request::new(
            DataItemId::new(item),
            MachineId::new(args.destination),
            SimTime::from_millis(args.deadline_ms),
            Priority::new(args.priority),
        );
        let scenario = match self.build_scenario(Some(candidate)) {
            Ok(s) => s,
            Err(reason) => {
                // Validation errors name the candidate by its positional
                // id — `R{admitted count}` — which depends on *when* the
                // evaluation runs: a speculated rejection would go stale
                // the moment an earlier epoch member admits. Rewriting
                // the positional token to a stable label makes the
                // reason a pure function of the arguments and the
                // (append-only) admitted set. Admitted requests always
                // revalidate cleanly, so the token can only be the
                // candidate's; ids of earlier requests are smaller and
                // never contain it as a substring.
                let positional = format!("R{}", self.admitted.len());
                return Evaluation::Rejected {
                    reason: reason.replace(&positional, "the candidate"),
                };
            }
        };
        let candidate_id = RequestId::new(self.admitted.len() as u32);
        match self.route_candidate(&scenario, candidate_id) {
            Err(reason) => Evaluation::Rejected { reason },
            Ok(None) => Evaluation::Rejected {
                reason: format!(
                    "deadline {} ms unreachable for `{}` to M{} under the current ledger",
                    args.deadline_ms, args.item, args.destination
                ),
            },
            Ok(Some((delivery, route))) => Evaluation::Admitted { candidate, delivery, route },
        }
    }

    /// Commits an evaluation: reserves the route, assigns the request id
    /// from the *live* admitted count, and bumps the decision counters
    /// exactly once per unique submission (replayed idempotent
    /// submissions never reach here).
    fn apply_evaluation(&mut self, args: &SubmitArgs, evaluation: Evaluation) -> Decision {
        dstage_obs::metrics::SERVICE_DECISIONS.inc();
        match evaluation {
            Evaluation::Rejected { reason } => {
                dstage_obs::metrics::SERVICE_REFUSED.inc();
                Decision::Rejected { reason }
            }
            Evaluation::Admitted { candidate, mut delivery, route } => {
                let request = RequestId::new(self.admitted.len() as u32);
                delivery.request = request;
                dstage_obs::metrics::SERVICE_ADMIT_SLACK_MS
                    .record(args.deadline_ms.saturating_sub(delivery.at.as_millis()));
                let new_transfers = route.len();
                self.committed.extend(route.iter().copied());
                self.info.push(AdmittedInfo {
                    status: RequestStatus::Admitted,
                    delivery: Some(delivery),
                    route,
                });
                self.admitted.push(candidate);
                dstage_obs::metrics::SERVICE_ADMITTED.inc();
                Decision::Admitted { request, eta: delivery.at, hops: delivery.hops, new_transfers }
            }
        }
    }

    /// Tries to route `target` on top of the committed ledger and the
    /// disturbances so far. Returns the delivery plus the *new* transfers
    /// the plan adds (membership-filtered, not prefix-sliced: a replay
    /// may satisfy a hop from an already-staged copy without pushing a
    /// duplicate reservation).
    fn route_candidate(
        &self,
        scenario: &Scenario,
        target: RequestId,
    ) -> Result<Option<(Delivery, Vec<Transfer>)>, String> {
        let mut state = SchedulerState::with_caching(scenario, self.config.caching);
        for r in scenario.request_ids() {
            if r != target {
                state.set_request_active(r, false);
            }
        }
        replay_state(&mut state, &self.committed, &self.outages, &self.losses, self.now)
            .map_err(|t| format!("internal: committed reservation failed to replay: {t:?}"))?;
        drive_state(&mut state, self.heuristic, &self.config);
        let (plan, _metrics) = state.into_outcome();
        let deadline = scenario.request(target).deadline();
        Ok(plan.delivery_of(target).filter(|d| d.at <= deadline).map(|delivery| {
            let route: Vec<Transfer> =
                plan.transfers().iter().filter(|t| !self.committed.contains(t)).copied().collect();
            (delivery, route)
        }))
    }

    /// The scenario horizon a candidate with `deadline_ms` would be
    /// planned under right now — the horizon fingerprint of the batched
    /// path. The admitted set only grows and deadlines only push the
    /// horizon out, so an epoch member whose live fingerprint differs
    /// from its speculated one has observably raced another admission
    /// and must be re-decided.
    #[must_use]
    pub fn effective_horizon(&self, deadline_ms: u64) -> SimTime {
        let latest = self
            .admitted
            .iter()
            .map(Request::deadline)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(SimTime::from_millis(deadline_ms));
        self.horizon.max(latest + self.gc_delay)
    }

    /// Shard layout for this engine's network (defaults from
    /// [`dstage_resources::shard::ShardConfig`]).
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.network.link_count(), ShardConfig::default())
    }

    /// Catalog id of `item`, if known.
    #[must_use]
    pub fn item_id(&self, item: &str) -> Option<u32> {
        self.item_ids.get(item).copied()
    }

    /// The sharded resource footprint committing `evaluation` would
    /// consume: its route's link busy windows, every machine the route
    /// stages a copy on, and the destination (whose hold policy the
    /// admission changes). Rejections commit nothing and have an empty
    /// footprint.
    #[must_use]
    pub fn evaluation_footprint(map: &ShardMap, evaluation: &Evaluation) -> Footprint {
        let mut footprint = Footprint::empty(map);
        if let Evaluation::Admitted { candidate, route, .. } = evaluation {
            for t in route {
                footprint.record_link(map, t.link, t.start, t.arrival);
                footprint.record_machine(map, t.from);
                footprint.record_machine(map, t.to);
            }
            footprint.record_machine(map, candidate.destination());
        }
        footprint
    }

    /// The footprint of an already-admitted request's current route —
    /// how sequentially re-decided epoch members fold into the epoch's
    /// conflict guards (see [`crate::batch`]).
    #[must_use]
    pub fn request_footprint(&self, map: &ShardMap, request: u32) -> Footprint {
        let mut footprint = Footprint::empty(map);
        if let Some(info) = self.info.get(request as usize) {
            for t in &info.route {
                footprint.record_link(map, t.link, t.start, t.arrival);
                footprint.record_machine(map, t.from);
                footprint.record_machine(map, t.to);
            }
        }
        if let Some(req) = self.admitted.get(request as usize) {
            footprint.record_machine(map, req.destination());
        }
        footprint
    }

    fn build_scenario(&self, candidate: Option<Request>) -> Result<Scenario, String> {
        let latest = self
            .admitted
            .iter()
            .map(Request::deadline)
            .chain(candidate.map(|c| c.deadline()))
            .max()
            .unwrap_or(SimTime::ZERO);
        let horizon = self.horizon.max(latest + self.gc_delay);
        let mut builder =
            Scenario::builder(self.network.clone()).gc_delay(self.gc_delay).horizon(horizon);
        for item in &self.items {
            builder = builder.add_item(item.clone());
        }
        builder
            .add_requests(self.admitted.iter().copied())
            .add_requests(candidate)
            .build()
            .map_err(|e| e.to_string())
    }

    /// Injects a disturbance and repairs the schedule around it.
    ///
    /// Invalidated reservations are cancelled (cascading through staged
    /// copies), then every displaced, non-evicted request is re-routed
    /// against the surviving ledger in descending-weight order; requests
    /// that cannot be re-routed are evicted — degradation sheds the
    /// lowest `W[p]` first.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown link, item, or machine id;
    /// nothing is logged or changed.
    pub fn inject(&mut self, args: &InjectArgs) -> Result<InjectResponse, String> {
        let at = SimTime::from_millis(args.at_ms);
        match &args.kind {
            InjectKind::LinkOutage { link } => {
                if *link as usize >= self.network.link_count() {
                    return Err(format!(
                        "unknown link id {link} (network has {} links)",
                        self.network.link_count()
                    ));
                }
                self.outages.push((VirtualLinkId::new(*link), at));
            }
            InjectKind::CopyLoss { item, machine } => {
                let Some(&item_id) = self.item_ids.get(item.as_str()) else {
                    return Err(format!("unknown data item `{item}`"));
                };
                if *machine as usize >= self.network.machine_count() {
                    return Err(format!(
                        "unknown machine id {machine} (network has {} machines)",
                        self.network.machine_count()
                    ));
                }
                self.losses.push((DataItemId::new(item_id), MachineId::new(*machine), at));
            }
        }
        self.now = self.now.max(at);
        dstage_obs::metrics::SERVICE_INJECTIONS.inc();
        let (cancelled, repaired, evicted) = self.repair();
        dstage_obs::metrics::SERVICE_REPAIRS.add(repaired.len() as u64);
        dstage_obs::metrics::SERVICE_EVICTIONS.add(evicted.len() as u64);
        let injection = self.log.len() as u64;
        let response = InjectResponse {
            ok: true,
            injection,
            kind: args.kind.as_str().to_string(),
            cancelled_transfers: cancelled as u64,
            displaced: (repaired.len() + evicted.len()) as u64,
            repaired: repaired.len() as u64,
            evicted: evicted.len() as u64,
        };
        self.log.push(LogRecord::Injection(InjectionRecord {
            args: args.clone(),
            cancelled_transfers: cancelled,
            repaired,
            evicted,
        }));
        self.version += 1;
        Ok(response)
    }

    /// Incremental repair after a disturbance: cancel invalidated
    /// reservations, refresh surviving deliveries, then re-route the
    /// displaced requests best-first. Returns `(cancelled, repaired,
    /// evicted)`.
    fn repair(&mut self) -> (usize, Vec<u32>, Vec<u32>) {
        let scenario =
            self.build_scenario(None).expect("the admitted set was validated one submit at a time");
        let (valid, cancelled) = filter_consistent(
            &scenario,
            std::mem::take(&mut self.committed),
            &self.outages,
            &self.losses,
        );
        self.committed = valid;
        let committed = &self.committed;
        for info in &mut self.info {
            info.route.retain(|t| committed.contains(t));
        }

        // The surviving ledger is the authority on who is still promised
        // a delivery (survival-to-deadline semantics, §4.4).
        let surviving = final_deliveries(&scenario, &self.committed, &self.losses);
        let mut displaced: Vec<u32> = Vec::new();
        for (id, info) in self.info.iter_mut().enumerate() {
            if info.status == RequestStatus::Evicted {
                continue;
            }
            match surviving.iter().find(|d| d.request.index() == id) {
                Some(d) => info.delivery = Some(*d),
                None => displaced.push(id as u32),
            }
        }
        displaced.sort_by_key(|&id| {
            let weight = self.config.priority_weights.weight(self.admitted[id as usize].priority());
            (Reverse(weight), id)
        });
        dstage_obs::metrics::SERVICE_DISPLACED.add(displaced.len() as u64);
        dstage_obs::metrics::SERVICE_DISPLACED_DEPTH
            .set(i64::try_from(displaced.len()).unwrap_or(i64::MAX));

        let mut repaired = Vec::new();
        let mut evicted = Vec::new();
        for id in displaced {
            // An internal replay failure (`Err`) means the surviving
            // ledger itself is inconsistent; degrade by evicting rather
            // than wedging the daemon.
            match self.route_candidate(&scenario, RequestId::new(id)).unwrap_or(None) {
                Some((delivery, route)) => {
                    self.committed.extend(route.iter().copied());
                    let info = &mut self.info[id as usize];
                    info.status = RequestStatus::Repaired;
                    info.delivery = Some(delivery);
                    info.route.extend(route);
                    repaired.push(id);
                }
                None => {
                    let info = &mut self.info[id as usize];
                    info.status = RequestStatus::Evicted;
                    info.delivery = None;
                    evicted.push(id);
                }
            }
        }
        (cancelled.len(), repaired, evicted)
    }

    /// Anytime evict-and-readmit hill climb over the live schedule.
    ///
    /// Candidates are previously *rejected* submissions (heaviest weight
    /// first, then submission order) that no earlier pass has readmitted;
    /// victims are currently satisfied requests with strictly smaller
    /// weight (lightest first, then id). Each trial evicts one victim and
    /// tries to route the candidate on the freed capacity; the swap is
    /// kept iff the weighted satisfied sum `E[S]` strictly improves and
    /// nobody else loses their delivery. The pass stops at the swap
    /// `budget` or at a local optimum, whichever comes first, and always
    /// leaves a valid schedule — it is safe to interrupt between arrivals.
    ///
    /// The pass is appended to the decision log, so replaying the log
    /// through a fresh engine re-executes it deterministically.
    pub fn optimize(&mut self, budget: u64) -> OptimizeResponse {
        let levels = self.config.priority_weights.levels();
        // Rejected submissions an earlier pass already readmitted are
        // spent: their refusal has been converted into an admission.
        let mut consumed: Vec<u64> = Vec::new();
        for record in &self.log {
            if let LogRecord::Optimization(o) = record {
                consumed.extend(o.swaps.iter().map(|s| s.submission));
            }
        }
        let mut candidates: Vec<(u64, u64, SubmitArgs)> = Vec::new();
        for (index, record) in self.log.iter().enumerate() {
            let LogRecord::Submission(s) = record else { continue };
            if !matches!(s.decision, Decision::Rejected { .. }) {
                continue;
            }
            let index = index as u64;
            if consumed.contains(&index) {
                continue;
            }
            // Malformed asks (unknown item, bad priority or machine) can
            // never be admitted, whatever capacity frees up.
            if !self.item_ids.contains_key(s.args.item.as_str())
                || s.args.priority >= levels
                || s.args.destination as usize >= self.network.machine_count()
            {
                continue;
            }
            let weight = self.config.priority_weights.weight(Priority::new(s.args.priority));
            candidates.push((weight, index, s.args.clone()));
        }
        candidates.sort_by_key(|&(weight, index, _)| (Reverse(weight), index));

        let mut attempted = 0u64;
        let mut swaps: Vec<SwapRecord> = Vec::new();
        let mut incumbent = self.counters().weighted_sum;
        'climb: loop {
            let kept_before = swaps.len();
            for (weight, submission, args) in &candidates {
                if swaps.iter().any(|s| s.submission == *submission) {
                    continue;
                }
                // Victims strictly lighter than the candidate, lightest
                // first — evicting heavier work could only lose weight.
                let mut victims: Vec<(u64, u32)> = self
                    .admitted
                    .iter()
                    .zip(&self.info)
                    .enumerate()
                    .filter(|(_, (_, info))| info.status != RequestStatus::Evicted)
                    .map(|(id, (req, _))| {
                        (self.config.priority_weights.weight(req.priority()), id as u32)
                    })
                    .filter(|&(w, _)| w < *weight)
                    .collect();
                victims.sort_unstable();
                for (_, victim) in victims {
                    if attempted >= budget {
                        break 'climb;
                    }
                    attempted += 1;
                    dstage_obs::metrics::SERVICE_OPT_SWAP_ATTEMPTS.inc();
                    let Some((trial, admitted)) = self.try_swap(args, victim) else { continue };
                    let improved = trial.counters().weighted_sum;
                    if improved > incumbent {
                        dstage_obs::metrics::SERVICE_OPT_SWAPS_ACCEPTED.inc();
                        swaps.push(SwapRecord {
                            submission: *submission,
                            evicted: victim,
                            admitted,
                        });
                        incumbent = improved;
                        *self = trial;
                        // The victim set changed; re-derive everything.
                        continue 'climb;
                    }
                }
            }
            if swaps.len() == kept_before {
                break; // a full sweep kept nothing — local optimum
            }
        }
        let optimization = self.log.len() as u64;
        let response = OptimizeResponse {
            ok: true,
            optimization,
            budget,
            attempted,
            swapped: swaps.len() as u64,
            weighted_sum: incumbent,
        };
        self.log.push(LogRecord::Optimization(OptimizationRecord { budget, attempted, swaps }));
        self.version += 1;
        response
    }

    /// One evict-and-readmit trial: returns the improved engine clone and
    /// the readmitted request's id, or `None` when the swap is infeasible
    /// — evicting the victim cascades into other reservations, costs
    /// someone else their delivery, or the candidate still does not fit.
    fn try_swap(&self, args: &SubmitArgs, victim: u32) -> Option<(AdmissionEngine, u32)> {
        let mut trial = self.clone();
        let route = std::mem::take(&mut trial.info[victim as usize].route);
        trial.committed.retain(|t| !route.contains(t));
        trial.info[victim as usize].status = RequestStatus::Evicted;
        trial.info[victim as usize].delivery = None;
        let scenario = trial.build_scenario(None).ok()?;
        let (valid, cancelled) = filter_consistent(
            &scenario,
            std::mem::take(&mut trial.committed),
            &trial.outages,
            &trial.losses,
        );
        if !cancelled.is_empty() {
            return None;
        }
        trial.committed = valid;
        let surviving = final_deliveries(&scenario, &trial.committed, &trial.losses);
        for (id, info) in trial.info.iter_mut().enumerate() {
            if info.status == RequestStatus::Evicted {
                continue;
            }
            match surviving.iter().find(|d| d.request.index() == id) {
                Some(d) => info.delivery = Some(*d),
                None => return None,
            }
        }
        let candidate = Request::new(
            DataItemId::new(*trial.item_ids.get(args.item.as_str())?),
            MachineId::new(args.destination),
            SimTime::from_millis(args.deadline_ms),
            Priority::new(args.priority),
        );
        let scenario = trial.build_scenario(Some(candidate)).ok()?;
        let readmitted = RequestId::new(trial.admitted.len() as u32);
        let (delivery, route) = trial.route_candidate(&scenario, readmitted).ok()??;
        trial.committed.extend(route.iter().copied());
        trial.info.push(AdmittedInfo {
            status: RequestStatus::Admitted,
            delivery: Some(delivery),
            route,
        });
        trial.admitted.push(candidate);
        Some((trial, readmitted.index() as u32))
    }

    /// Replays one snapshot-log record (an entry of the snapshot's
    /// `log` array) through this engine.
    ///
    /// Feeding a fresh engine every record of a daemon's snapshot log,
    /// in order, must rebuild a byte-identical snapshot — the
    /// determinism invariant the loopback and chaos tests check.
    ///
    /// # Errors
    ///
    /// Returns a message for a record with a missing/unknown verb or
    /// missing fields, and propagates `submit`/`inject` errors.
    pub fn replay_record(&mut self, entry: &Value) -> Result<(), String> {
        let u64_field = |name: &str| {
            entry.get(name).and_then(Value::as_u64).ok_or_else(|| format!("missing `{name}`"))
        };
        let str_field = |name: &str| {
            entry
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing `{name}`"))
        };
        match entry.get("verb").and_then(Value::as_str) {
            Some("submit") => {
                self.submit(&SubmitArgs {
                    item: str_field("item")?,
                    destination: u32::try_from(u64_field("destination")?)
                        .map_err(|_| "`destination` out of range".to_string())?,
                    deadline_ms: u64_field("deadline_ms")?,
                    priority: u8::try_from(u64_field("priority")?)
                        .map_err(|_| "`priority` out of range".to_string())?,
                    idempotency_key: entry
                        .get("idempotency_key")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                })?;
                Ok(())
            }
            Some("inject") => {
                let kind = match str_field("kind")?.as_str() {
                    "link_outage" => InjectKind::LinkOutage {
                        link: u32::try_from(u64_field("link")?)
                            .map_err(|_| "`link` out of range".to_string())?,
                    },
                    "copy_loss" => InjectKind::CopyLoss {
                        item: str_field("item")?,
                        machine: u32::try_from(u64_field("machine")?)
                            .map_err(|_| "`machine` out of range".to_string())?,
                    },
                    other => return Err(format!("unknown inject kind `{other}`")),
                };
                self.inject(&InjectArgs { kind, at_ms: u64_field("at_ms")? })?;
                Ok(())
            }
            Some("optimize") => {
                // Re-executing the pass is deterministic, so the replayed
                // engine rediscovers the recorded swaps.
                self.optimize(u64_field("budget")?);
                Ok(())
            }
            other => Err(format!("unknown log verb {other:?}")),
        }
    }

    /// Status, route, and ETA of an admitted request.
    ///
    /// # Errors
    ///
    /// Returns a message when `request` names no admitted request.
    pub fn query(&self, request: u32) -> Result<QueryResponse, String> {
        let index = request as usize;
        let (req, info) = match (self.admitted.get(index), self.info.get(index)) {
            (Some(r), Some(i)) => (r, i),
            _ => return Err(format!("unknown request id {request}")),
        };
        Ok(QueryResponse {
            ok: true,
            request: u64::from(request),
            status: info.status.as_str().to_string(),
            item: self.items[req.item().index()].name().to_string(),
            destination: req.destination().index() as u64,
            deadline_ms: req.deadline().as_millis(),
            priority: u64::from(req.priority().level()),
            eta_ms: info.delivery.map(|d| d.at.as_millis()),
            hops: info.delivery.map(|d| u64::from(d.hops)),
            route: info
                .route
                .iter()
                .map(|t| RouteHop {
                    from: t.from.index() as u64,
                    to: t.to.index() as u64,
                    link: t.link.index() as u64,
                    start_ms: t.start.as_millis(),
                    arrival_ms: t.arrival.as_millis(),
                })
                .collect(),
        })
    }

    /// Admission counters: per-priority admitted/rejected tallies, the
    /// fault-tolerance tallies, and the weighted sum of *currently
    /// satisfied* requests (the paper's objective — an evicted request no
    /// longer counts).
    #[must_use]
    pub fn counters(&self) -> AdmissionCounters {
        let levels = self.config.priority_weights.levels() as usize;
        let mut admitted_by_priority = vec![0u64; levels];
        let mut rejected_by_priority = vec![0u64; levels];
        let mut submissions = 0u64;
        let mut injections = 0u64;
        let mut optimizations = 0u64;
        let mut swapped = 0u64;
        for record in &self.log {
            match record {
                LogRecord::Submission(s) => {
                    submissions += 1;
                    let level = (s.args.priority as usize).min(levels.saturating_sub(1));
                    match &s.decision {
                        Decision::Admitted { .. } => admitted_by_priority[level] += 1,
                        Decision::Rejected { .. } => rejected_by_priority[level] += 1,
                    }
                }
                LogRecord::Injection(_) => injections += 1,
                LogRecord::Optimization(o) => {
                    optimizations += 1;
                    swapped += o.swaps.len() as u64;
                    // A kept swap converts a refusal into an admission;
                    // move its submission between the per-priority tallies.
                    for swap in &o.swaps {
                        let LogRecord::Submission(s) = &self.log[swap.submission as usize] else {
                            continue;
                        };
                        let level = (s.args.priority as usize).min(levels.saturating_sub(1));
                        rejected_by_priority[level] -= 1;
                        admitted_by_priority[level] += 1;
                    }
                }
            }
        }
        let mut repaired = 0u64;
        let mut evicted = 0u64;
        let mut weighted_sum = 0u64;
        for (req, info) in self.admitted.iter().zip(&self.info) {
            match info.status {
                RequestStatus::Admitted => {}
                RequestStatus::Repaired => repaired += 1,
                RequestStatus::Evicted => evicted += 1,
            }
            if info.status != RequestStatus::Evicted {
                weighted_sum += self.config.priority_weights.weight(req.priority());
            }
        }
        AdmissionCounters {
            submissions,
            admitted: self.admitted.len() as u64,
            // Each optimizer swap consumes one unique rejected
            // submission, so the difference stays the refusal count.
            rejected: submissions - self.admitted.len() as u64,
            injections,
            optimizations,
            swapped,
            repaired,
            evicted,
            satisfied: self.admitted.len() as u64 - evicted,
            admitted_by_priority,
            rejected_by_priority,
            weighted_sum,
        }
    }

    /// The full service state as one deterministic JSON value: decision
    /// log (submissions and injections interleaved), per-request
    /// statuses, committed schedule, and per-link ledger. Equal operation
    /// histories produce byte-identical serializations.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let deliveries: Vec<Delivery> = self.info.iter().filter_map(|i| i.delivery).collect();
        let schedule = Schedule::from_parts(self.committed.clone(), deliveries);
        let schedule_value = serde::to_value(&schedule).unwrap_or(Value::Null);

        let mut busy: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
        for t in &self.committed {
            let link = t.link.index() as u64;
            let window = (t.start.as_millis(), t.arrival.as_millis());
            match busy.iter_mut().find(|(l, _)| *l == link) {
                Some((_, windows)) => windows.push(window),
                None => busy.push((link, vec![window])),
            }
        }
        busy.sort_by_key(|(link, _)| *link);
        for (_, windows) in &mut busy {
            windows.sort_unstable();
        }
        let ledger = Value::Array(
            busy.into_iter()
                .map(|(link, windows)| {
                    Value::Object(vec![
                        ("link".to_string(), Value::UInt(link)),
                        (
                            "busy_ms".to_string(),
                            Value::Array(
                                windows
                                    .into_iter()
                                    .map(|(s, a)| {
                                        Value::Array(vec![Value::UInt(s), Value::UInt(a)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );

        let requests = Value::Array(
            self.admitted
                .iter()
                .zip(&self.info)
                .enumerate()
                .map(|(id, (req, info))| {
                    let mut fields = vec![
                        ("request".to_string(), Value::UInt(id as u64)),
                        (
                            "item".to_string(),
                            Value::String(self.items[req.item().index()].name().to_string()),
                        ),
                        ("destination".to_string(), Value::UInt(req.destination().index() as u64)),
                        ("priority".to_string(), Value::UInt(u64::from(req.priority().level()))),
                        ("status".to_string(), Value::String(info.status.as_str().to_string())),
                    ];
                    if let Some(d) = info.delivery {
                        fields.push(("eta_ms".to_string(), Value::UInt(d.at.as_millis())));
                    }
                    Value::Object(fields)
                })
                .collect(),
        );

        let log = Value::Array(self.log.iter().map(record_value).collect());
        let counters = self.counters();
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("submissions".to_string(), Value::UInt(counters.submissions)),
            ("admitted".to_string(), Value::UInt(counters.admitted)),
            ("rejected".to_string(), Value::UInt(counters.rejected)),
            ("injections".to_string(), Value::UInt(counters.injections)),
            ("optimizations".to_string(), Value::UInt(counters.optimizations)),
            ("swapped".to_string(), Value::UInt(counters.swapped)),
            ("repaired".to_string(), Value::UInt(counters.repaired)),
            ("evicted".to_string(), Value::UInt(counters.evicted)),
            ("satisfied".to_string(), Value::UInt(counters.satisfied)),
            ("weighted_sum".to_string(), Value::UInt(counters.weighted_sum)),
            ("log".to_string(), log),
            ("requests".to_string(), requests),
            ("schedule".to_string(), schedule_value),
            ("ledger".to_string(), ledger),
        ])
    }

    /// A stable identity of everything [`AdmissionEngine::new`] was
    /// given: a checkpoint taken by one engine may only be restored
    /// into an engine built from the same catalog, heuristic, and
    /// configuration — replaying the WAL tail re-decides operations,
    /// which is only deterministic against identical static state.
    #[must_use]
    pub fn catalog_fingerprint(&self) -> String {
        let items: Vec<&str> = self.items.iter().map(DataItem::name).collect();
        format!(
            "v1|machines={}|links={}|gc_ms={}|horizon_ms={}|heuristic={}|config={:?}|items={}",
            self.network.machine_count(),
            self.network.link_count(),
            self.gc_delay.as_millis(),
            self.horizon.as_millis(),
            self.heuristic.label(),
            self.config,
            items.join(",")
        )
    }

    /// Serializes the complete dynamic state — admitted set, per-request
    /// bookkeeping, committed reservations, disturbances, decision log,
    /// clock, version, and idempotency window — for a durability
    /// checkpoint. [`AdmissionEngine::restore`] is the exact inverse.
    #[must_use]
    pub fn checkpoint_value(&self) -> Value {
        let admitted = Value::Array(
            self.admitted
                .iter()
                .map(|req| {
                    Value::Object(vec![
                        (
                            "item".to_string(),
                            Value::String(self.items[req.item().index()].name().to_string()),
                        ),
                        ("destination".to_string(), Value::UInt(req.destination().index() as u64)),
                        ("deadline_ms".to_string(), Value::UInt(req.deadline().as_millis())),
                        ("priority".to_string(), Value::UInt(u64::from(req.priority().level()))),
                    ])
                })
                .collect(),
        );
        let info = Value::Array(
            self.info
                .iter()
                .map(|info| {
                    let mut fields = vec![(
                        "status".to_string(),
                        Value::String(info.status.as_str().to_string()),
                    )];
                    if let Some(d) = info.delivery {
                        fields.push((
                            "delivery".to_string(),
                            serde::to_value(&d).unwrap_or(Value::Null),
                        ));
                    }
                    fields.push((
                        "route".to_string(),
                        serde::to_value(&info.route).unwrap_or(Value::Null),
                    ));
                    Value::Object(fields)
                })
                .collect(),
        );
        Value::Object(vec![
            ("format".to_string(), Value::UInt(CHECKPOINT_FORMAT)),
            ("fingerprint".to_string(), Value::String(self.catalog_fingerprint())),
            ("version".to_string(), Value::UInt(self.version)),
            ("now_ms".to_string(), Value::UInt(self.now.as_millis())),
            ("idempotency_capacity".to_string(), Value::UInt(self.idempotency.capacity as u64)),
            ("admitted".to_string(), admitted),
            ("info".to_string(), info),
            ("committed".to_string(), serde::to_value(&self.committed).unwrap_or(Value::Null)),
            ("outages".to_string(), serde::to_value(&self.outages).unwrap_or(Value::Null)),
            ("losses".to_string(), serde::to_value(&self.losses).unwrap_or(Value::Null)),
            ("log".to_string(), Value::Array(self.log.iter().map(record_value).collect())),
        ])
    }

    /// Rebuilds an engine from a [`AdmissionEngine::checkpoint_value`]
    /// taken by an engine over the same catalog, heuristic, and
    /// configuration. The idempotency window is rebuilt from the
    /// restored log (first use of each key wins, FIFO eviction at the
    /// recorded capacity), so a client retrying a keyed submit across a
    /// restart still gets the recorded response.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown format, a fingerprint mismatch
    /// (different catalog or configuration), or missing/ill-typed
    /// fields.
    pub fn restore(
        catalog: &Scenario,
        heuristic: Heuristic,
        config: HeuristicConfig,
        checkpoint: &Value,
    ) -> Result<AdmissionEngine, String> {
        let u64_field = |name: &str| {
            checkpoint
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("checkpoint: missing `{name}`"))
        };
        let array_field = |name: &str| {
            checkpoint
                .get(name)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("checkpoint: missing array `{name}`"))
        };
        if u64_field("format")? != CHECKPOINT_FORMAT {
            return Err(format!(
                "checkpoint: unsupported format {} (this build reads {CHECKPOINT_FORMAT})",
                u64_field("format")?
            ));
        }
        let mut engine = AdmissionEngine::new(catalog, heuristic, config);
        let fingerprint = checkpoint
            .get("fingerprint")
            .and_then(Value::as_str)
            .ok_or_else(|| "checkpoint: missing `fingerprint`".to_string())?;
        if fingerprint != engine.catalog_fingerprint() {
            return Err("checkpoint: fingerprint mismatch (taken against a different catalog, \
                 scheduler, or configuration)"
                .to_string());
        }
        engine.version = u64_field("version")?;
        engine.now = SimTime::from_millis(u64_field("now_ms")?);
        let capacity = usize::try_from(u64_field("idempotency_capacity")?)
            .map_err(|_| "checkpoint: `idempotency_capacity` out of range".to_string())?;

        for entry in array_field("admitted")? {
            let field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("checkpoint admitted: missing `{name}`"))
            };
            let item = entry
                .get("item")
                .and_then(Value::as_str)
                .ok_or_else(|| "checkpoint admitted: missing `item`".to_string())?;
            let &item_id = engine
                .item_ids
                .get(item)
                .ok_or_else(|| format!("checkpoint admitted: unknown item `{item}`"))?;
            engine.admitted.push(Request::new(
                DataItemId::new(item_id),
                MachineId::new(
                    u32::try_from(field("destination")?)
                        .map_err(|_| "checkpoint admitted: `destination` out of range")?,
                ),
                SimTime::from_millis(field("deadline_ms")?),
                Priority::new(
                    u8::try_from(field("priority")?)
                        .map_err(|_| "checkpoint admitted: `priority` out of range")?,
                ),
            ));
        }
        for entry in array_field("info")? {
            let status = entry
                .get("status")
                .and_then(Value::as_str)
                .and_then(RequestStatus::from_wire)
                .ok_or_else(|| "checkpoint info: missing or unknown `status`".to_string())?;
            let delivery = match entry.get("delivery") {
                None => None,
                Some(v) => Some(
                    serde::from_value::<Delivery>(v.clone())
                        .map_err(|e| format!("checkpoint info: bad `delivery`: {e:?}"))?,
                ),
            };
            let route = serde::from_value::<Vec<Transfer>>(
                entry
                    .get("route")
                    .cloned()
                    .ok_or_else(|| "checkpoint info: missing `route`".to_string())?,
            )
            .map_err(|e| format!("checkpoint info: bad `route`: {e:?}"))?;
            engine.info.push(AdmittedInfo { status, delivery, route });
        }
        if engine.info.len() != engine.admitted.len() {
            return Err(format!(
                "checkpoint: {} admitted requests but {} info entries",
                engine.admitted.len(),
                engine.info.len()
            ));
        }
        engine.committed = serde::from_value(
            checkpoint
                .get("committed")
                .cloned()
                .ok_or_else(|| "checkpoint: missing `committed`".to_string())?,
        )
        .map_err(|e| format!("checkpoint: bad `committed`: {e:?}"))?;
        engine.outages = serde::from_value(
            checkpoint
                .get("outages")
                .cloned()
                .ok_or_else(|| "checkpoint: missing `outages`".to_string())?,
        )
        .map_err(|e| format!("checkpoint: bad `outages`: {e:?}"))?;
        engine.losses = serde::from_value(
            checkpoint
                .get("losses")
                .cloned()
                .ok_or_else(|| "checkpoint: missing `losses`".to_string())?,
        )
        .map_err(|e| format!("checkpoint: bad `losses`: {e:?}"))?;

        let mut log = Vec::new();
        for entry in array_field("log")? {
            log.push(record_from_value(entry)?);
        }
        // The idempotency window is a pure function of the key-insertion
        // sequence, which the log records: first use of a key inserts
        // it, FIFO eviction forgets the oldest. (A key at two log
        // indexes means the first aged out before the second was
        // decided; the same eviction happens here.)
        let mut idempotency = IdempotencyCache::new(capacity);
        for (index, record) in log.iter().enumerate() {
            if let LogRecord::Submission(s) = record {
                if let Some(key) = &s.args.idempotency_key {
                    if idempotency.get(key).is_none() {
                        idempotency.insert(key.clone(), index);
                    }
                }
            }
        }
        engine.idempotency = idempotency;
        engine.log = log;
        Ok(engine)
    }
}

/// Version tag of [`AdmissionEngine::checkpoint_value`]'s layout.
pub const CHECKPOINT_FORMAT: u64 = 1;

/// Serializes one decision-log record as the JSON object the snapshot
/// `log` array (and the write-ahead log) carries.
/// [`record_from_value`] is the exact inverse.
#[must_use]
pub fn record_value(record: &LogRecord) -> Value {
    match record {
        LogRecord::Submission(record) => {
            let mut fields = vec![
                ("verb".to_string(), Value::String("submit".to_string())),
                ("item".to_string(), Value::String(record.args.item.clone())),
                ("destination".to_string(), Value::UInt(u64::from(record.args.destination))),
                ("deadline_ms".to_string(), Value::UInt(record.args.deadline_ms)),
                ("priority".to_string(), Value::UInt(u64::from(record.args.priority))),
            ];
            if let Some(key) = &record.args.idempotency_key {
                fields.push(("idempotency_key".to_string(), Value::String(key.clone())));
            }
            match &record.decision {
                Decision::Admitted { request, eta, hops, new_transfers } => {
                    fields.push(("decision".to_string(), Value::String("admitted".to_string())));
                    fields.push(("request".to_string(), Value::UInt(request.index() as u64)));
                    fields.push(("eta_ms".to_string(), Value::UInt(eta.as_millis())));
                    fields.push(("hops".to_string(), Value::UInt(u64::from(*hops))));
                    fields.push(("new_transfers".to_string(), Value::UInt(*new_transfers as u64)));
                }
                Decision::Rejected { reason } => {
                    fields.push(("decision".to_string(), Value::String("rejected".to_string())));
                    fields.push(("reason".to_string(), Value::String(reason.clone())));
                }
            }
            Value::Object(fields)
        }
        LogRecord::Injection(record) => {
            let mut fields = vec![
                ("verb".to_string(), Value::String("inject".to_string())),
                ("kind".to_string(), Value::String(record.args.kind.as_str().to_string())),
            ];
            match &record.args.kind {
                InjectKind::LinkOutage { link } => {
                    fields.push(("link".to_string(), Value::UInt(u64::from(*link))));
                }
                InjectKind::CopyLoss { item, machine } => {
                    fields.push(("item".to_string(), Value::String(item.clone())));
                    fields.push(("machine".to_string(), Value::UInt(u64::from(*machine))));
                }
            }
            fields.push(("at_ms".to_string(), Value::UInt(record.args.at_ms)));
            fields.push((
                "cancelled_transfers".to_string(),
                Value::UInt(record.cancelled_transfers as u64),
            ));
            fields.push((
                "repaired".to_string(),
                Value::Array(record.repaired.iter().map(|&r| Value::UInt(u64::from(r))).collect()),
            ));
            fields.push((
                "evicted".to_string(),
                Value::Array(record.evicted.iter().map(|&r| Value::UInt(u64::from(r))).collect()),
            ));
            Value::Object(fields)
        }
        LogRecord::Optimization(record) => Value::Object(vec![
            ("verb".to_string(), Value::String("optimize".to_string())),
            ("budget".to_string(), Value::UInt(record.budget)),
            ("attempted".to_string(), Value::UInt(record.attempted)),
            (
                "swaps".to_string(),
                Value::Array(
                    record
                        .swaps
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("submission".to_string(), Value::UInt(s.submission)),
                                ("evicted".to_string(), Value::UInt(u64::from(s.evicted))),
                                ("admitted".to_string(), Value::UInt(u64::from(s.admitted))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Parses a [`record_value`] object back into a [`LogRecord`], decision
/// included — full fidelity, so a checkpointed log restores with the
/// same counters, snapshot bytes, and idempotent-replay responses as
/// the engine that recorded it.
///
/// # Errors
///
/// Returns a message for a missing/unknown verb, decision, or field.
pub fn record_from_value(entry: &Value) -> Result<LogRecord, String> {
    let u64_field = |name: &str| {
        entry
            .get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("log record: missing `{name}`"))
    };
    let str_field = |name: &str| {
        entry
            .get(name)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("log record: missing `{name}`"))
    };
    let u32_list = |name: &str| -> Result<Vec<u32>, String> {
        entry
            .get(name)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("log record: missing array `{name}`"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("log record: bad entry in `{name}`"))
            })
            .collect()
    };
    match entry.get("verb").and_then(Value::as_str) {
        Some("submit") => {
            let args = SubmitArgs {
                item: str_field("item")?,
                destination: u32::try_from(u64_field("destination")?)
                    .map_err(|_| "log record: `destination` out of range".to_string())?,
                deadline_ms: u64_field("deadline_ms")?,
                priority: u8::try_from(u64_field("priority")?)
                    .map_err(|_| "log record: `priority` out of range".to_string())?,
                idempotency_key: entry
                    .get("idempotency_key")
                    .and_then(Value::as_str)
                    .map(str::to_string),
            };
            let decision = match str_field("decision")?.as_str() {
                "admitted" => Decision::Admitted {
                    request: RequestId::new(
                        u32::try_from(u64_field("request")?)
                            .map_err(|_| "log record: `request` out of range".to_string())?,
                    ),
                    eta: SimTime::from_millis(u64_field("eta_ms")?),
                    hops: u32::try_from(u64_field("hops")?)
                        .map_err(|_| "log record: `hops` out of range".to_string())?,
                    new_transfers: usize::try_from(u64_field("new_transfers")?)
                        .map_err(|_| "log record: `new_transfers` out of range".to_string())?,
                },
                "rejected" => Decision::Rejected { reason: str_field("reason")? },
                other => return Err(format!("log record: unknown decision `{other}`")),
            };
            Ok(LogRecord::Submission(SubmissionRecord { args, decision }))
        }
        Some("inject") => {
            let kind = match str_field("kind")?.as_str() {
                "link_outage" => InjectKind::LinkOutage {
                    link: u32::try_from(u64_field("link")?)
                        .map_err(|_| "log record: `link` out of range".to_string())?,
                },
                "copy_loss" => InjectKind::CopyLoss {
                    item: str_field("item")?,
                    machine: u32::try_from(u64_field("machine")?)
                        .map_err(|_| "log record: `machine` out of range".to_string())?,
                },
                other => return Err(format!("log record: unknown inject kind `{other}`")),
            };
            Ok(LogRecord::Injection(InjectionRecord {
                args: InjectArgs { kind, at_ms: u64_field("at_ms")? },
                cancelled_transfers: usize::try_from(u64_field("cancelled_transfers")?)
                    .map_err(|_| "log record: `cancelled_transfers` out of range".to_string())?,
                repaired: u32_list("repaired")?,
                evicted: u32_list("evicted")?,
            }))
        }
        Some("optimize") => {
            let swaps = entry
                .get("swaps")
                .and_then(Value::as_array)
                .ok_or_else(|| "log record: missing array `swaps`".to_string())?
                .iter()
                .map(|swap| {
                    let field = |name: &str| {
                        swap.get(name)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("log record: swap missing `{name}`"))
                    };
                    Ok(SwapRecord {
                        submission: field("submission")?,
                        evicted: u32::try_from(field("evicted")?)
                            .map_err(|_| "log record: swap `evicted` out of range".to_string())?,
                        admitted: u32::try_from(field("admitted")?)
                            .map_err(|_| "log record: swap `admitted` out of range".to_string())?,
                    })
                })
                .collect::<Result<Vec<SwapRecord>, String>>()?;
            Ok(LogRecord::Optimization(OptimizationRecord {
                budget: u64_field("budget")?,
                attempted: u64_field("attempted")?,
                swaps,
            }))
        }
        other => Err(format!("log record: unknown verb {other:?}")),
    }
}

/// Admission counters reported by the `metrics` verb.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct AdmissionCounters {
    /// Processed submissions (admitted + rejected).
    pub submissions: u64,
    /// Admitted requests (including later-evicted ones).
    pub admitted: u64,
    /// Rejected submissions.
    pub rejected: u64,
    /// Processed injections.
    pub injections: u64,
    /// Processed `optimize` passes.
    pub optimizations: u64,
    /// Optimizer swaps kept across all passes.
    pub swapped: u64,
    /// Requests currently in `repaired` status.
    pub repaired: u64,
    /// Requests evicted by repair (terminal).
    pub evicted: u64,
    /// Admitted requests still promised a delivery (admitted − evicted).
    pub satisfied: u64,
    /// Admitted count per priority level (index = level).
    pub admitted_by_priority: Vec<u64>,
    /// Rejected count per priority level (index = level).
    pub rejected_by_priority: Vec<u64>,
    /// Σ weight(priority) over currently satisfied requests — the
    /// paper's objective restricted to the promises the daemon still
    /// keeps.
    pub weighted_sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_core::cost::{CostCriterion, EuWeights};
    use dstage_model::prelude::*;
    use dstage_workload::small::{fan_out, two_hop_chain};

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            criterion: CostCriterion::C4,
            eu: EuWeights::from_log10_ratio(2.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    fn engine() -> AdmissionEngine {
        AdmissionEngine::new(&two_hop_chain(), Heuristic::FullPathOneDestination, config())
    }

    fn args(item: &str, dest: u32, deadline_ms: u64) -> SubmitArgs {
        SubmitArgs {
            item: item.to_string(),
            destination: dest,
            deadline_ms,
            priority: 2,
            idempotency_key: None,
        }
    }

    fn submit(
        engine: &mut AdmissionEngine,
        item: &str,
        dest: u32,
        deadline_ms: u64,
    ) -> SubmitResponse {
        engine.submit(&args(item, dest, deadline_ms)).expect("no idempotency conflict")
    }

    #[test]
    fn admits_feasible_and_rejects_unknown() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let first = submit(&mut e, &item, dest, 7_200_000);
        assert_eq!(first.decision, "admitted");
        assert_eq!(first.request, Some(0));
        assert!(first.eta_ms.unwrap() <= 7_200_000);

        let unknown = submit(&mut e, "no-such-item", dest, 7_200_000);
        assert_eq!(unknown.decision, "rejected");
        assert!(unknown.reason.unwrap().contains("unknown data item"));
        assert_eq!(e.admitted_count(), 1);
        assert_eq!(e.submission_count(), 2);
    }

    #[test]
    fn duplicate_pair_and_impossible_deadline_reject_without_residue() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        assert_eq!(submit(&mut e, &item, dest, 7_200_000).decision, "admitted");
        let ledger_before = serde_json::to_string(&e.snapshot()).unwrap();
        let dup = submit(&mut e, &item, dest, 7_200_000);
        assert_eq!(dup.decision, "rejected");
        let hopeless = submit(&mut e, &item, 0, 1);
        assert_eq!(hopeless.decision, "rejected");
        // Rejections append to the log but leave schedule + ledger alone.
        let after = e.snapshot();
        let schedule_before: Value = serde_json::from_str(&ledger_before).unwrap();
        assert_eq!(schedule_before.get("schedule"), after.get("schedule"));
        assert_eq!(schedule_before.get("ledger"), after.get("ledger"));
    }

    #[test]
    fn query_reports_route_and_counters_add_up() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let r = submit(&mut e, &item, dest, 7_200_000);
        let q = e.query(r.request.unwrap() as u32).unwrap();
        assert_eq!(q.item, item);
        assert_eq!(q.status, "admitted");
        assert_eq!(q.eta_ms, r.eta_ms);
        assert_eq!(q.route.len() as u64, r.new_transfers.unwrap());
        assert!(e.query(99).is_err());

        submit(&mut e, "no-such-item", dest, 1);
        let c = e.counters();
        assert_eq!(c.submissions, 2);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.injections, 0);
        assert_eq!(c.satisfied, 1);
        assert_eq!(c.admitted_by_priority.iter().sum::<u64>(), 1);
        assert_eq!(c.weighted_sum, 100);
    }

    #[test]
    fn snapshot_is_deterministic_for_equal_histories() {
        let run = || {
            let mut e = engine();
            let item = e.item_names().next().unwrap().to_string();
            let dest = (e.machine_count() - 1) as u32;
            submit(&mut e, &item, dest, 7_200_000);
            submit(&mut e, "ghost", dest, 5);
            e.inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 0 }, at_ms: 1_000 })
                .unwrap();
            serde_json::to_string(&e.snapshot()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn idempotent_resubmit_replays_and_conflicting_reuse_errors() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let mut keyed = args(&item, dest, 7_200_000);
        keyed.idempotency_key = Some("retry-1".to_string());
        let first = e.submit(&keyed).unwrap();
        assert_eq!(first.decision, "admitted");
        // Same key, same args: the original decision replays, nothing is
        // re-admitted, and the log does not grow.
        let replay = e.submit(&keyed).unwrap();
        assert_eq!(serde_json::to_string(&replay).unwrap(), serde_json::to_string(&first).unwrap());
        assert_eq!(e.submission_count(), 1);
        assert_eq!(e.admitted_count(), 1);
        // Same key, different args: hard error, not a silent dedupe.
        let mut conflicting = keyed.clone();
        conflicting.deadline_ms += 1;
        let err = e.submit(&conflicting).unwrap_err();
        assert!(err.contains("different arguments"), "got: {err}");
        assert_eq!(e.submission_count(), 1);
    }

    #[test]
    fn idempotency_window_evicts_oldest_and_replay_stays_identical() {
        let mut e = engine();
        e.set_idempotency_capacity(2);
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let keyed = |key: &str, deadline_ms: u64| {
            let mut a = args(&item, dest, deadline_ms);
            a.idempotency_key = Some(key.to_string());
            a
        };
        e.submit(&keyed("k1", 7_200_000)).unwrap();
        e.submit(&keyed("k2", 7_100_000)).unwrap();
        // Inserting k3 evicts k1 (oldest inserted).
        e.submit(&keyed("k3", 7_000_000)).unwrap();
        assert_eq!(e.submission_count(), 3);
        // k3 is still remembered: the retry replays without logging.
        e.submit(&keyed("k3", 7_000_000)).unwrap();
        assert_eq!(e.submission_count(), 3);
        // k1 aged out: the retry is re-decided and re-logged — same
        // outcome as a keyless retry, never a wrong replay.
        e.submit(&keyed("k1", 7_200_000)).unwrap();
        assert_eq!(e.submission_count(), 4);
        // Reusing an evicted key with different arguments is no longer a
        // conflict (the window forgot it) — it decides fresh.
        e.submit(&keyed("k2", 6_900_000)).unwrap();
        assert_eq!(e.submission_count(), 5);
        // ... while the still-remembered k1 does conflict.
        e.submit(&keyed("k1", 1)).unwrap_err();

        // Replay through a fresh engine with the same capacity rebuilds
        // a byte-identical snapshot, eviction sequence included.
        let snapshot = e.snapshot();
        let Some(Value::Array(log)) = snapshot.get("log") else { panic!("no log") };
        let mut replayed = engine();
        replayed.set_idempotency_capacity(2);
        for entry in log {
            replayed.replay_record(entry).unwrap();
        }
        assert_eq!(
            serde_json::to_string(&snapshot).unwrap(),
            serde_json::to_string(&replayed.snapshot()).unwrap()
        );
    }

    #[test]
    fn inject_rejects_unknown_ids_without_logging() {
        let mut e = engine();
        let bad_link =
            e.inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 99 }, at_ms: 0 });
        assert!(bad_link.unwrap_err().contains("unknown link"));
        let bad_item = e.inject(&InjectArgs {
            kind: InjectKind::CopyLoss { item: "ghost".to_string(), machine: 0 },
            at_ms: 0,
        });
        assert!(bad_item.unwrap_err().contains("unknown data item"));
        let known_item = e.item_names().next().unwrap().to_string();
        let bad_machine = e.inject(&InjectArgs {
            kind: InjectKind::CopyLoss { item: known_item, machine: 99 },
            at_ms: 0,
        });
        assert!(bad_machine.unwrap_err().contains("unknown machine"));
        assert!(e.log().is_empty());
        assert_eq!(e.counters().injections, 0);
    }

    #[test]
    fn copy_loss_repairs_from_retained_intermediate_copy() {
        // fan_out: m0 --L0--> hub(m1) --L1/L2/L3--> d1..d3. Losing d1's
        // copy after arrival lets repair redeliver from the hub's
        // retained copy (γ retention, §4.4).
        let mut e = AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        let item = e.item_names().next().unwrap().to_string();
        let r = submit(&mut e, &item, 2, 1_800_000);
        assert_eq!(r.decision, "admitted");
        let eta = r.eta_ms.unwrap();
        let loss_at = eta + 1_000;
        let resp = e
            .inject(&InjectArgs {
                kind: InjectKind::CopyLoss { item: item.clone(), machine: 2 },
                at_ms: loss_at,
            })
            .unwrap();
        assert_eq!(resp.displaced, 1);
        assert_eq!(resp.repaired, 1);
        assert_eq!(resp.evicted, 0);
        assert_eq!(resp.cancelled_transfers, 0, "the loss hit the copy, not a transfer");
        let q = e.query(0).unwrap();
        assert_eq!(q.status, "repaired");
        assert!(q.eta_ms.unwrap() > loss_at, "re-delivery must postdate the loss");
        let c = e.counters();
        assert_eq!((c.injections, c.repaired, c.evicted, c.satisfied), (1, 1, 0, 1));
    }

    fn p2mp(item: &str, destinations: Vec<u32>, key: Option<&str>) -> P2mpSubmitArgs {
        P2mpSubmitArgs {
            item: item.to_string(),
            destinations,
            deadline_ms: 1_800_000,
            priority: 2,
            idempotency_key: key.map(str::to_string),
        }
    }

    #[test]
    fn p2mp_group_shares_staged_hops_and_logs_per_destination() {
        // fan_out: m0 --L0--> hub(m1) --L1/L2/L3--> d1..d3 (machines
        // 2..4). The first destination stages src->hub plus its leaf
        // leg; every later destination reuses the hub's staged copy and
        // reserves only its own leg.
        let mut e = AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        let item = e.item_names().next().unwrap().to_string();
        let g = e.submit_p2mp(&p2mp(&item, vec![2, 3, 4], None)).unwrap();
        assert_eq!((g.admitted, g.rejected), (3, 0));
        assert_eq!(g.group.len(), 3);
        let new_transfers: Vec<u64> = g.group.iter().map(|r| r.new_transfers.unwrap()).collect();
        assert_eq!(new_transfers[0], 2, "first member pays the shared hop plus its leg");
        assert_eq!(&new_transfers[1..], &[1, 1], "later members reuse the staged hub copy");
        // Per-destination outcomes: one submission log record each.
        assert_eq!(e.submission_count(), 3);
        assert_eq!(e.admitted_count(), 3);
        assert_eq!(e.counters().weighted_sum, 300);

        // Replaying the per-destination log rebuilds the same snapshot.
        let snapshot = e.snapshot();
        let Some(Value::Array(log)) = snapshot.get("log") else { panic!("no log") };
        let mut replayed =
            AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        for entry in log {
            replayed.replay_record(entry).unwrap();
        }
        assert_eq!(
            serde_json::to_string(&snapshot).unwrap(),
            serde_json::to_string(&replayed.snapshot()).unwrap()
        );
    }

    #[test]
    fn single_destination_p2mp_matches_plain_submit() {
        let mut grouped =
            AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        let item = grouped.item_names().next().unwrap().to_string();
        let g = grouped.submit_p2mp(&p2mp(&item, vec![2], None)).unwrap();
        assert_eq!((g.admitted, g.rejected), (1, 0));

        let mut plain =
            AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        submit(&mut plain, &item, 2, 1_800_000);
        assert_eq!(
            serde_json::to_string(&grouped.snapshot()).unwrap(),
            serde_json::to_string(&plain.snapshot()).unwrap(),
            "a single-destination group must be indistinguishable from a plain submit"
        );
    }

    #[test]
    fn p2mp_rejects_malformed_groups_without_residue() {
        let mut e = AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        let item = e.item_names().next().unwrap().to_string();
        assert!(e.submit_p2mp(&p2mp(&item, vec![], None)).is_err());
        let err = e.submit_p2mp(&p2mp(&item, vec![2, 3, 2], None)).unwrap_err();
        assert!(err.contains("duplicate destination"), "got: {err}");
        assert!(e.log().is_empty());
    }

    #[test]
    fn p2mp_group_retry_replays_every_member() {
        let mut e = AdmissionEngine::new(&fan_out(), Heuristic::FullPathOneDestination, config());
        let item = e.item_names().next().unwrap().to_string();
        let first = e.submit_p2mp(&p2mp(&item, vec![2, 3], Some("g-1"))).unwrap();
        assert_eq!(e.submission_count(), 2);
        // The derived member keys (g-1#0, g-1#1) replay the recorded
        // decisions: nothing new is logged or admitted.
        let retry = e.submit_p2mp(&p2mp(&item, vec![2, 3], Some("g-1"))).unwrap();
        assert_eq!(serde_json::to_string(&retry).unwrap(), serde_json::to_string(&first).unwrap());
        assert_eq!(e.submission_count(), 2);
        assert_eq!(e.admitted_count(), 2);
        // The same group key with different members conflicts.
        assert!(e.submit_p2mp(&p2mp(&item, vec![2, 4], Some("g-1"))).is_err());
    }

    #[test]
    fn repair_evicts_in_ascending_weight_order() {
        // Two parallel links m0 -> m1: L0 open from t=0, L1 only from
        // t=30s. Both requests fit on L0 (10 s each); after L0 dies at
        // t=1s only ONE can make its 45 s deadline via L1 (30-40 s). The
        // high-priority request must win that slot even though the
        // low-priority one was admitted first.
        let mut b = NetworkBuilder::new();
        for i in 0..2 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
        }
        let m = MachineId::new;
        let two_hours = SimTime::from_hours(2);
        b.add_link(VirtualLink::new(m(0), m(1), SimTime::ZERO, two_hours, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            SimTime::from_secs(30),
            two_hours,
            BitsPerSec::new(8_000),
        ));
        let catalog = Scenario::builder(b.build())
            .add_item(DataItem::new(
                "alpha",
                Bytes::new(10_000),
                vec![DataSource::new(m(0), SimTime::ZERO)],
            ))
            .add_item(DataItem::new(
                "beta",
                Bytes::new(10_000),
                vec![DataSource::new(m(0), SimTime::ZERO)],
            ))
            .build()
            .unwrap();
        let mut e = AdmissionEngine::new(&catalog, Heuristic::FullPathOneDestination, config());
        let low = e
            .submit(&SubmitArgs {
                item: "beta".to_string(),
                destination: 1,
                deadline_ms: 45_000,
                priority: 0,
                idempotency_key: None,
            })
            .unwrap();
        assert_eq!(low.decision, "admitted");
        let high = e
            .submit(&SubmitArgs {
                item: "alpha".to_string(),
                destination: 1,
                deadline_ms: 45_000,
                priority: 2,
                idempotency_key: None,
            })
            .unwrap();
        assert_eq!(high.decision, "admitted");

        let resp = e
            .inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 0 }, at_ms: 1_000 })
            .unwrap();
        assert_eq!(resp.displaced, 2);
        assert_eq!(resp.repaired, 1);
        assert_eq!(resp.evicted, 1);
        // Repair ran best-first: the high-priority request (id 1) holds
        // the surviving slot, the low-priority one (id 0) was shed.
        assert_eq!(e.query(1).unwrap().status, "repaired");
        assert_eq!(e.query(0).unwrap().status, "evicted");
        assert!(e.query(0).unwrap().eta_ms.is_none());
        let c = e.counters();
        assert_eq!(c.weighted_sum, 100, "only the repaired W=100 request still counts");
        // Eviction is terminal: a later injection does not resurrect it.
        let later = e
            .inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 0 }, at_ms: 2_000 })
            .unwrap();
        assert_eq!(later.displaced, 0);
        assert_eq!(e.query(0).unwrap().status, "evicted");
    }

    /// One link m0 → m1 (10 s per 10 kB item at 8 kbps) and two items, so
    /// only one 15 s deadline can be honoured — the canonical swap setup.
    fn one_link_catalog() -> Scenario {
        let mut b = NetworkBuilder::new();
        for i in 0..2 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
        }
        let m = MachineId::new;
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            SimTime::ZERO,
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        Scenario::builder(b.build())
            .add_item(DataItem::new(
                "alpha",
                Bytes::new(10_000),
                vec![DataSource::new(m(0), SimTime::ZERO)],
            ))
            .add_item(DataItem::new(
                "beta",
                Bytes::new(10_000),
                vec![DataSource::new(m(0), SimTime::ZERO)],
            ))
            .build()
            .unwrap()
    }

    fn prioritized(item: &str, deadline_ms: u64, priority: u8) -> SubmitArgs {
        SubmitArgs {
            item: item.to_string(),
            destination: 1,
            deadline_ms,
            priority,
            idempotency_key: None,
        }
    }

    #[test]
    fn alap_beats_partial_on_staggered_arrivals() {
        // The DDCCast headroom claim end to end: arrivals come worst-case
        // ordered (a loose-deadline LOW request first), and only the
        // latest-gap scheduler keeps early capacity for the urgent late
        // arrival.
        let catalog = dstage_workload::small::staggered_arrivals();
        let run = |heuristic: Heuristic| {
            let mut e = AdmissionEngine::new(&catalog, heuristic, config());
            let low = e
                .submit(&SubmitArgs {
                    item: "background-archive".to_string(),
                    destination: 1,
                    deadline_ms: 100_000,
                    priority: 0,
                    idempotency_key: None,
                })
                .expect("valid submission");
            assert_eq!(low.decision, "admitted", "{heuristic}: the early LOW request fits alone");
            let high = e
                .submit(&SubmitArgs {
                    item: "urgent-update".to_string(),
                    destination: 1,
                    deadline_ms: 15_000,
                    priority: 2,
                    idempotency_key: None,
                })
                .expect("valid submission");
            (high.decision, e.counters().weighted_sum)
        };
        let (partial_high, partial_sum) = run(Heuristic::PartialPath);
        let (alap_high, alap_sum) = run(Heuristic::Alap);
        assert_eq!(partial_high, "rejected", "earliest-gap placement burned the tight window");
        assert_eq!(partial_sum, 1);
        assert_eq!(alap_high, "admitted", "latest-gap placement left the window free");
        assert_eq!(alap_sum, 101);
        assert!(alap_sum > partial_sum, "alap must strictly beat partial on E[S]");
    }

    #[test]
    fn optimize_swaps_a_light_admit_for_a_heavy_refusal() {
        let mut e =
            AdmissionEngine::new(&one_link_catalog(), Heuristic::FullPathOneDestination, config());
        // The light request takes the only slot before t=15 s ...
        assert_eq!(e.submit(&prioritized("alpha", 15_000, 0)).unwrap().decision, "admitted");
        // ... so the heavy one bounces off the full link.
        assert_eq!(e.submit(&prioritized("beta", 15_000, 2)).unwrap().decision, "rejected");
        assert_eq!(e.counters().weighted_sum, 1);

        let r = e.optimize(8);
        assert_eq!((r.attempted, r.swapped), (1, 1));
        assert_eq!(r.weighted_sum, 100);
        assert_eq!(e.query(0).unwrap().status, "evicted");
        let readmitted = e.query(1).unwrap();
        assert_eq!(readmitted.status, "admitted");
        assert_eq!(readmitted.item, "beta");
        assert!(readmitted.eta_ms.unwrap() <= 15_000);
        let c = e.counters();
        assert_eq!((c.admitted, c.rejected, c.optimizations, c.swapped), (2, 0, 1, 1));
        assert_eq!((c.satisfied, c.weighted_sum), (1, 100));
        assert_eq!(c.admitted_by_priority, vec![1, 0, 1]);
        assert_eq!(c.rejected_by_priority, vec![0, 0, 0]);
    }

    #[test]
    fn optimize_never_decreases_the_weighted_sum() {
        let mut e =
            AdmissionEngine::new(&one_link_catalog(), Heuristic::FullPathOneDestination, config());
        // Heavy admitted first: the light refusal must NOT displace it.
        assert_eq!(e.submit(&prioritized("beta", 15_000, 2)).unwrap().decision, "admitted");
        assert_eq!(e.submit(&prioritized("alpha", 15_000, 0)).unwrap().decision, "rejected");
        let before = e.counters().weighted_sum;
        let r = e.optimize(8);
        assert_eq!(r.swapped, 0, "a lighter candidate has no viable victims");
        assert_eq!(r.weighted_sum, before);
        assert_eq!(e.query(0).unwrap().status, "admitted");
        // A second pass finds the same local optimum without spending
        // budget on consumed or hopeless candidates.
        assert_eq!(e.optimize(8).swapped, 0);
        assert_eq!(e.counters().weighted_sum, before);
    }

    #[test]
    fn optimize_respects_the_swap_budget() {
        let mut e =
            AdmissionEngine::new(&one_link_catalog(), Heuristic::FullPathOneDestination, config());
        assert_eq!(e.submit(&prioritized("alpha", 15_000, 0)).unwrap().decision, "admitted");
        assert_eq!(e.submit(&prioritized("beta", 15_000, 2)).unwrap().decision, "rejected");
        let r = e.optimize(0);
        assert_eq!((r.attempted, r.swapped), (0, 0));
        assert_eq!(e.counters().weighted_sum, 1, "zero budget leaves the schedule alone");
    }

    #[test]
    fn optimize_lands_in_the_log_and_replays_byte_identically() {
        let mut e =
            AdmissionEngine::new(&one_link_catalog(), Heuristic::FullPathOneDestination, config());
        e.submit(&prioritized("alpha", 15_000, 0)).unwrap();
        e.submit(&prioritized("beta", 15_000, 2)).unwrap();
        e.optimize(8);
        e.submit(&prioritized("alpha", 7_200_000, 1)).unwrap();
        let snapshot = e.snapshot();
        let Some(Value::Array(log)) = snapshot.get("log") else {
            panic!("snapshot has no log array");
        };
        assert!(
            log.iter().any(|r| r.get("verb").and_then(Value::as_str) == Some("optimize")),
            "the optimize pass must be a log record"
        );
        let mut replayed =
            AdmissionEngine::new(&one_link_catalog(), Heuristic::FullPathOneDestination, config());
        for entry in log {
            replayed.replay_record(entry).unwrap();
        }
        assert_eq!(
            serde_json::to_string(&snapshot).unwrap(),
            serde_json::to_string(&replayed.snapshot()).unwrap()
        );
    }
}
