//! Incremental admission control on top of the offline heuristics.
//!
//! The [`AdmissionEngine`] owns the live catalog (network + data items),
//! the set of admitted requests, and the committed link reservations.
//! Each `submit` rebuilds a one-candidate [`Scenario`], replays the
//! committed reservations into a fresh [`SchedulerState`] (the same
//! replay machinery the dstage-dynamic rolling horizon uses), and lets
//! the configured heuristic try to route the candidate. If the candidate
//! can be delivered by its deadline it is admitted and its path becomes
//! part of the ledger; otherwise it is rejected and leaves no residue.
//!
//! Every method is a deterministic function of the submission history,
//! which is what makes concurrent serving testable: serializing the same
//! submissions in the same order through a fresh engine must produce a
//! byte-identical snapshot.

use std::collections::HashMap;

use dstage_core::heuristic::{drive_state, Heuristic, HeuristicConfig};
use dstage_core::schedule::{Delivery, Schedule, Transfer};
use dstage_core::state::SchedulerState;
use dstage_model::data::DataItem;
use dstage_model::ids::{MachineId, RequestId};
use dstage_model::network::Network;
use dstage_model::request::{Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_path::Hop;
use serde::Value;

use crate::protocol::{QueryResponse, RouteHop, SubmitArgs, SubmitResponse};

/// The admission decision recorded for one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The request was admitted and its path reserved.
    Admitted {
        /// Id assigned to the admitted request.
        request: RequestId,
        /// When the item reaches the destination.
        eta: SimTime,
        /// Hops on the delivery path.
        hops: u32,
        /// Link reservations added to the ledger by this admission.
        new_transfers: usize,
    },
    /// The request was refused; the ledger is unchanged.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
}

/// One processed submission: the arguments and the decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionRecord {
    /// What the client asked for.
    pub args: SubmitArgs,
    /// What the engine decided.
    pub decision: Decision,
}

/// Bookkeeping for one admitted request.
#[derive(Debug, Clone)]
struct AdmittedInfo {
    delivery: Delivery,
    route: Vec<Transfer>,
}

/// Thread-safe-by-construction admission-control state (owned data only,
/// no interior mutability — wrap it in a lock to share).
#[derive(Debug, Clone)]
pub struct AdmissionEngine {
    network: Network,
    items: Vec<DataItem>,
    item_ids: HashMap<String, u32>,
    gc_delay: SimDuration,
    horizon: SimTime,
    heuristic: Heuristic,
    config: HeuristicConfig,
    admitted: Vec<Request>,
    info: Vec<AdmittedInfo>,
    committed: Vec<Transfer>,
    log: Vec<SubmissionRecord>,
}

impl AdmissionEngine {
    /// Creates an engine serving `catalog`'s network and data items.
    ///
    /// Requests present in the catalog scenario are ignored: admission
    /// state starts empty and grows one `submit` at a time.
    #[must_use]
    pub fn new(catalog: &Scenario, heuristic: Heuristic, config: HeuristicConfig) -> Self {
        let items: Vec<DataItem> = catalog.items().map(|(_, item)| item.clone()).collect();
        let item_ids =
            items.iter().enumerate().map(|(i, item)| (item.name().to_string(), i as u32)).collect();
        AdmissionEngine {
            network: catalog.network().clone(),
            items,
            item_ids,
            gc_delay: catalog.gc_delay(),
            horizon: catalog.horizon(),
            heuristic,
            config,
            admitted: Vec::new(),
            info: Vec::new(),
            committed: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Names of the data items in the catalog, in id order.
    pub fn item_names(&self) -> impl Iterator<Item = &str> {
        self.items.iter().map(DataItem::name)
    }

    /// Number of machines in the served network.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.network.machine_count()
    }

    /// Number of processed submissions (admitted + rejected).
    #[must_use]
    pub fn submission_count(&self) -> usize {
        self.log.len()
    }

    /// Number of admitted requests.
    #[must_use]
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// The processed submissions, in decision order.
    #[must_use]
    pub fn log(&self) -> &[SubmissionRecord] {
        &self.log
    }

    /// Decides admission for one request and, on success, reserves its
    /// path in the ledger. Never fails: malformed asks become recorded
    /// rejections so the log stays a complete history.
    pub fn submit(&mut self, args: &SubmitArgs) -> SubmitResponse {
        let submission = self.log.len() as u64;
        let decision = self.decide(args);
        let response = match &decision {
            Decision::Admitted { request, eta, hops, new_transfers } => SubmitResponse {
                ok: true,
                submission,
                decision: "admitted".to_string(),
                request: Some(request.index() as u64),
                eta_ms: Some(eta.as_millis()),
                hops: Some(u64::from(*hops)),
                new_transfers: Some(*new_transfers as u64),
                reason: None,
            },
            Decision::Rejected { reason } => SubmitResponse {
                ok: true,
                submission,
                decision: "rejected".to_string(),
                request: None,
                eta_ms: None,
                hops: None,
                new_transfers: None,
                reason: Some(reason.clone()),
            },
        };
        self.log.push(SubmissionRecord { args: args.clone(), decision });
        response
    }

    fn decide(&mut self, args: &SubmitArgs) -> Decision {
        let reject = |reason: String| Decision::Rejected { reason };
        let Some(&item) = self.item_ids.get(args.item.as_str()) else {
            return reject(format!("unknown data item `{}`", args.item));
        };
        if args.priority >= self.config.priority_weights.levels() {
            return reject(format!(
                "priority {} out of range (weighting has {} levels)",
                args.priority,
                self.config.priority_weights.levels()
            ));
        }
        let candidate = Request::new(
            dstage_model::ids::DataItemId::new(item),
            MachineId::new(args.destination),
            SimTime::from_millis(args.deadline_ms),
            Priority::new(args.priority),
        );
        let scenario = match self.build_scenario(candidate) {
            Ok(s) => s,
            Err(reason) => return reject(reason),
        };
        let candidate_id = RequestId::new(self.admitted.len() as u32);

        let mut state = SchedulerState::with_caching(&scenario, self.config.caching);
        for r in scenario.request_ids() {
            if r != candidate_id {
                state.set_request_active(r, false);
            }
        }
        for t in &self.committed {
            let hop =
                Hop { from: t.from, to: t.to, link: t.link, start: t.start, arrival: t.arrival };
            if !state.try_commit_stale_hop(t.item, hop) {
                return reject("internal: committed reservation failed to replay".to_string());
            }
        }
        drive_state(&mut state, self.heuristic, &self.config);
        let (plan, _metrics) = state.into_outcome();

        match plan.delivery_of(candidate_id) {
            Some(delivery) if delivery.at <= candidate.deadline() => {
                let transfers = plan.transfers();
                debug_assert!(
                    transfers.starts_with(&self.committed),
                    "replayed reservations must be a prefix of the new plan"
                );
                let route: Vec<Transfer> = transfers[self.committed.len()..].to_vec();
                let new_transfers = route.len();
                self.committed = transfers.to_vec();
                self.info.push(AdmittedInfo { delivery, route });
                self.admitted.push(candidate);
                Decision::Admitted {
                    request: candidate_id,
                    eta: delivery.at,
                    hops: delivery.hops,
                    new_transfers,
                }
            }
            _ => reject(format!(
                "deadline {} ms unreachable for `{}` to M{} under the current ledger",
                args.deadline_ms, args.item, args.destination
            )),
        }
    }

    fn build_scenario(&self, candidate: Request) -> Result<Scenario, String> {
        let latest = self
            .admitted
            .iter()
            .map(Request::deadline)
            .chain([candidate.deadline()])
            .max()
            .unwrap_or(SimTime::ZERO);
        let horizon = self.horizon.max(latest + self.gc_delay);
        let mut builder =
            Scenario::builder(self.network.clone()).gc_delay(self.gc_delay).horizon(horizon);
        for item in &self.items {
            builder = builder.add_item(item.clone());
        }
        builder
            .add_requests(self.admitted.iter().copied())
            .add_request(candidate)
            .build()
            .map_err(|e| e.to_string())
    }

    /// Status, route, and ETA of an admitted request.
    ///
    /// # Errors
    ///
    /// Returns a message when `request` names no admitted request.
    pub fn query(&self, request: u32) -> Result<QueryResponse, String> {
        let index = request as usize;
        let (req, info) = match (self.admitted.get(index), self.info.get(index)) {
            (Some(r), Some(i)) => (r, i),
            _ => return Err(format!("unknown request id {request}")),
        };
        Ok(QueryResponse {
            ok: true,
            request: u64::from(request),
            status: "admitted".to_string(),
            item: self.items[req.item().index()].name().to_string(),
            destination: req.destination().index() as u64,
            deadline_ms: req.deadline().as_millis(),
            priority: u64::from(req.priority().level()),
            eta_ms: info.delivery.at.as_millis(),
            hops: u64::from(info.delivery.hops),
            route: info
                .route
                .iter()
                .map(|t| RouteHop {
                    from: t.from.index() as u64,
                    to: t.to.index() as u64,
                    link: t.link.index() as u64,
                    start_ms: t.start.as_millis(),
                    arrival_ms: t.arrival.as_millis(),
                })
                .collect(),
        })
    }

    /// Admission counters: per-priority admitted/rejected tallies and the
    /// weighted sum of satisfied requests (paper's objective).
    #[must_use]
    pub fn counters(&self) -> AdmissionCounters {
        let levels = self.config.priority_weights.levels() as usize;
        let mut admitted_by_priority = vec![0u64; levels];
        let mut rejected_by_priority = vec![0u64; levels];
        let mut weighted_sum = 0u64;
        for record in &self.log {
            let level = (record.args.priority as usize).min(levels.saturating_sub(1));
            match &record.decision {
                Decision::Admitted { .. } => {
                    admitted_by_priority[level] += 1;
                    weighted_sum += self.config.priority_weights.weight(Priority::new(level as u8));
                }
                Decision::Rejected { .. } => rejected_by_priority[level] += 1,
            }
        }
        AdmissionCounters {
            submissions: self.log.len() as u64,
            admitted: self.admitted.len() as u64,
            rejected: (self.log.len() - self.admitted.len()) as u64,
            admitted_by_priority,
            rejected_by_priority,
            weighted_sum,
        }
    }

    /// The full service state as one deterministic JSON value: decision
    /// log, committed schedule, and per-link ledger. Equal submission
    /// histories produce byte-identical serializations.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let deliveries: Vec<Delivery> = self.info.iter().map(|i| i.delivery).collect();
        let schedule = Schedule::from_parts(self.committed.clone(), deliveries);
        let schedule_value = serde::to_value(&schedule).unwrap_or(Value::Null);

        let mut busy: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
        for t in &self.committed {
            let link = t.link.index() as u64;
            let window = (t.start.as_millis(), t.arrival.as_millis());
            match busy.iter_mut().find(|(l, _)| *l == link) {
                Some((_, windows)) => windows.push(window),
                None => busy.push((link, vec![window])),
            }
        }
        busy.sort_by_key(|(link, _)| *link);
        for (_, windows) in &mut busy {
            windows.sort_unstable();
        }
        let ledger = Value::Array(
            busy.into_iter()
                .map(|(link, windows)| {
                    Value::Object(vec![
                        ("link".to_string(), Value::UInt(link)),
                        (
                            "busy_ms".to_string(),
                            Value::Array(
                                windows
                                    .into_iter()
                                    .map(|(s, a)| {
                                        Value::Array(vec![Value::UInt(s), Value::UInt(a)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );

        let log = Value::Array(self.log.iter().map(record_value).collect());
        let counters = self.counters();
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("submissions".to_string(), Value::UInt(counters.submissions)),
            ("admitted".to_string(), Value::UInt(counters.admitted)),
            ("rejected".to_string(), Value::UInt(counters.rejected)),
            ("weighted_sum".to_string(), Value::UInt(counters.weighted_sum)),
            ("log".to_string(), log),
            ("schedule".to_string(), schedule_value),
            ("ledger".to_string(), ledger),
        ])
    }
}

fn record_value(record: &SubmissionRecord) -> Value {
    let mut fields = vec![
        ("item".to_string(), Value::String(record.args.item.clone())),
        ("destination".to_string(), Value::UInt(u64::from(record.args.destination))),
        ("deadline_ms".to_string(), Value::UInt(record.args.deadline_ms)),
        ("priority".to_string(), Value::UInt(u64::from(record.args.priority))),
    ];
    match &record.decision {
        Decision::Admitted { request, eta, hops, new_transfers } => {
            fields.push(("decision".to_string(), Value::String("admitted".to_string())));
            fields.push(("request".to_string(), Value::UInt(request.index() as u64)));
            fields.push(("eta_ms".to_string(), Value::UInt(eta.as_millis())));
            fields.push(("hops".to_string(), Value::UInt(u64::from(*hops))));
            fields.push(("new_transfers".to_string(), Value::UInt(*new_transfers as u64)));
        }
        Decision::Rejected { reason } => {
            fields.push(("decision".to_string(), Value::String("rejected".to_string())));
            fields.push(("reason".to_string(), Value::String(reason.clone())));
        }
    }
    Value::Object(fields)
}

/// Admission counters reported by the `metrics` verb.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct AdmissionCounters {
    /// Processed submissions (admitted + rejected).
    pub submissions: u64,
    /// Admitted requests.
    pub admitted: u64,
    /// Rejected submissions.
    pub rejected: u64,
    /// Admitted count per priority level (index = level).
    pub admitted_by_priority: Vec<u64>,
    /// Rejected count per priority level (index = level).
    pub rejected_by_priority: Vec<u64>,
    /// Σ weight(priority) over admitted requests — the paper's objective
    /// restricted to the admitted set (every admitted request is
    /// satisfied by construction).
    pub weighted_sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_core::cost::{CostCriterion, EuWeights};
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::two_hop_chain;

    fn engine() -> AdmissionEngine {
        AdmissionEngine::new(
            &two_hop_chain(),
            Heuristic::FullPathOneDestination,
            HeuristicConfig {
                criterion: CostCriterion::C4,
                eu: EuWeights::from_log10_ratio(2.0),
                priority_weights: PriorityWeights::paper_1_10_100(),
                caching: true,
            },
        )
    }

    fn submit(
        engine: &mut AdmissionEngine,
        item: &str,
        dest: u32,
        deadline_ms: u64,
    ) -> SubmitResponse {
        engine.submit(&SubmitArgs {
            item: item.to_string(),
            destination: dest,
            deadline_ms,
            priority: 2,
        })
    }

    #[test]
    fn admits_feasible_and_rejects_unknown() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let first = submit(&mut e, &item, dest, 7_200_000);
        assert_eq!(first.decision, "admitted");
        assert_eq!(first.request, Some(0));
        assert!(first.eta_ms.unwrap() <= 7_200_000);

        let unknown = submit(&mut e, "no-such-item", dest, 7_200_000);
        assert_eq!(unknown.decision, "rejected");
        assert!(unknown.reason.unwrap().contains("unknown data item"));
        assert_eq!(e.admitted_count(), 1);
        assert_eq!(e.submission_count(), 2);
    }

    #[test]
    fn duplicate_pair_and_impossible_deadline_reject_without_residue() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        assert_eq!(submit(&mut e, &item, dest, 7_200_000).decision, "admitted");
        let ledger_before = serde_json::to_string(&e.snapshot()).unwrap();
        let dup = submit(&mut e, &item, dest, 7_200_000);
        assert_eq!(dup.decision, "rejected");
        let hopeless = submit(&mut e, &item, 0, 1);
        assert_eq!(hopeless.decision, "rejected");
        // Rejections append to the log but leave schedule + ledger alone.
        let after = e.snapshot();
        let schedule_before: Value = serde_json::from_str(&ledger_before).unwrap();
        assert_eq!(schedule_before.get("schedule"), after.get("schedule"));
        assert_eq!(schedule_before.get("ledger"), after.get("ledger"));
    }

    #[test]
    fn query_reports_route_and_counters_add_up() {
        let mut e = engine();
        let item = e.item_names().next().unwrap().to_string();
        let dest = (e.machine_count() - 1) as u32;
        let r = submit(&mut e, &item, dest, 7_200_000);
        let q = e.query(r.request.unwrap() as u32).unwrap();
        assert_eq!(q.item, item);
        assert_eq!(q.eta_ms, r.eta_ms.unwrap());
        assert_eq!(q.route.len() as u64, r.new_transfers.unwrap());
        assert!(e.query(99).is_err());

        submit(&mut e, "no-such-item", dest, 1);
        let c = e.counters();
        assert_eq!(c.submissions, 2);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.admitted_by_priority.iter().sum::<u64>(), 1);
        assert_eq!(c.weighted_sum, 100);
    }

    #[test]
    fn snapshot_is_deterministic_for_equal_histories() {
        let run = || {
            let mut e = engine();
            let item = e.item_names().next().unwrap().to_string();
            let dest = (e.machine_count() - 1) as u32;
            submit(&mut e, &item, dest, 7_200_000);
            submit(&mut e, "ghost", dest, 5);
            serde_json::to_string(&e.snapshot()).unwrap()
        };
        assert_eq!(run(), run());
    }
}
