//! Chaos integration test: the real `stage-serve` binary under the real
//! `stage-loadgen` with its deterministic fault proxy interposed, plus
//! live disturbance injections mid-run. The invariant: the daemon's
//! post-chaos snapshot must be byte-identical to a fault-free sequential
//! replay of the surviving decision log — faults may slow clients down
//! and force retries, but they must never corrupt admission state.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_service::engine::AdmissionEngine;
use dstage_service::protocol::{InjectArgs, InjectKind, SubmitArgs};
use dstage_workload::{generate, Family, GeneratorConfig};
use serde::Value;

/// Workload seed shared by the daemon (`--generate`) and the load
/// generator (`--seed`) so item names line up.
const SEED: u64 = 11;
/// Fault-schedule seed for the loadgen chaos proxy. Fixed so CI runs the
/// same refuse/cut/delay schedule every time.
const CHAOS_SEED: u64 = 7;
const REQUESTS: usize = 48;
/// Wall-clock ceiling for the whole run (chaos delays + retries
/// included); CI treats a slower run as a hang.
const BUDGET: Duration = Duration::from_secs(120);

/// The heuristic configuration matching `stage-serve`'s defaults.
fn config() -> HeuristicConfig {
    HeuristicConfig {
        criterion: CostCriterion::C4,
        eu: EuWeights::from_log10_ratio(2.0),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    }
}

fn spawn_server(family: &str) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stage-serve"))
        .args([
            "--generate",
            &SEED.to_string(),
            "--family",
            family,
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stage-serve");
    let stdout = child.stdout.take().expect("stage-serve stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    writer.flush().expect("flush");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv");
    assert!(n > 0, "daemon closed the connection after {request:?}");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

/// Parses a Prometheus exposition and asserts the chaos-run ledger
/// identities: every decision is admitted or refused, every displaced
/// request is repaired or evicted, and all four instrumented layers
/// expose series.
fn assert_ledger_consistent(text: &str) {
    let value = |series: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(series).and_then(|rest| rest.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("series {series} missing from scrape:\n{text}"))
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("series {series} is not a u64: {e}"))
    };

    let decisions = value("dstage_service_decisions_total");
    let admitted = value("dstage_service_admitted_total");
    let refused = value("dstage_service_refused_total");
    // Keyed retries dedup before the engine decides, so despite chaos
    // re-sends there is exactly one decision per unique submission.
    assert_eq!(decisions, REQUESTS as u64, "one decision per unique submission");
    assert_eq!(decisions, admitted + refused, "every decision admits or refuses");

    assert_eq!(value("dstage_service_injections_total"), 2, "both disturbances recorded");
    let displaced = value("dstage_service_displaced_total");
    let repairs = value("dstage_service_repairs_total");
    let evictions = value("dstage_service_evictions_total");
    assert_eq!(displaced, repairs + evictions, "every displaced request is repaired or evicted");

    // Breadth: at least 12 distinct metric families spanning all four
    // instrumented layers (histogram _bucket/_sum/_count rows fold into
    // one family).
    let mut families: Vec<&str> = text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split([' ', '{']).next())
        .map(|name| {
            name.strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name)
        })
        .collect();
    families.sort_unstable();
    families.dedup();
    assert!(families.len() >= 12, "only {} metric families: {families:?}", families.len());
    for layer in ["dstage_service_", "dstage_resources_", "dstage_path_", "dstage_sim_"] {
        assert!(families.iter().any(|f| f.starts_with(layer)), "no {layer}* series in the scrape");
    }
}

/// The DDCCast headroom claim under the harness's fixed injection
/// script: because `alap` parks low-priority transfers against their
/// deadlines instead of packing the early timeline, repair after the
/// scripted disturbances finds free capacity more often — at least as
/// many displaced requests are re-admitted (and no more are evicted)
/// than under `partial`.
#[test]
fn alap_repairs_at_least_as_many_displaced_requests_as_partial() {
    let scenario = generate(&GeneratorConfig::paper(), SEED);
    let item = {
        let (_, request) = scenario.requests().next().expect("paper catalog has requests");
        scenario.item(request.item()).name().to_string()
    };
    let run = |heuristic: Heuristic| {
        let mut engine = AdmissionEngine::new(&scenario, heuristic, config());
        for (_, r) in scenario.requests() {
            engine
                .submit(&SubmitArgs {
                    item: scenario.item(r.item()).name().to_string(),
                    destination: r.destination().index() as u32,
                    deadline_ms: r.deadline().as_millis(),
                    priority: r.priority().level(),
                    idempotency_key: None,
                })
                .expect("valid submission");
        }
        engine
            .inject(&InjectArgs { kind: InjectKind::LinkOutage { link: 0 }, at_ms: 60_000 })
            .expect("inject the outage");
        engine
            .inject(&InjectArgs {
                kind: InjectKind::CopyLoss { item: item.clone(), machine: 0 },
                at_ms: 120_000,
            })
            .expect("inject the copy loss");
        engine.counters()
    };
    let partial = run(Heuristic::PartialPath);
    let alap = run(Heuristic::Alap);
    let (partial_displaced, alap_displaced) =
        (partial.repaired + partial.evicted, alap.repaired + alap.evicted);
    assert!(
        partial_displaced > 0 && alap_displaced > 0,
        "the injection script must displace admitted requests under both schedulers"
    );
    assert!(
        alap.evicted <= partial.evicted,
        "alap evicted more displaced requests than partial: {} > {}",
        alap.evicted,
        partial.evicted
    );
    // Re-admission *rate* (repaired / displaced), compared exactly via
    // cross-multiplication: the absolute counts are incomparable because
    // fewer alap reservations get displaced in the first place.
    assert!(
        alap.repaired * partial_displaced >= partial.repaired * alap_displaced,
        "alap re-admitted a smaller share of its displaced requests: {}/{alap_displaced} < \
         {}/{partial_displaced}",
        alap.repaired,
        partial.repaired
    );
    assert!(
        alap.weighted_sum > partial.weighted_sum,
        "alap must keep a strictly larger post-repair weighted sum: {} <= {}",
        alap.weighted_sum,
        partial.weighted_sum
    );
}

#[test]
fn chaotic_run_snapshot_equals_fault_free_replay() {
    chaos_run(Family::Paper);
}

/// The same chaos invariant on the inter-datacenter WAN family: its
/// catalog is built from point-to-multipoint groups expanded to
/// per-destination requests, so this pins that expansion survives faults
/// and replays byte-for-byte like any plain catalog.
#[test]
fn wan_family_chaos_snapshot_matches_fault_free_replay() {
    chaos_run(Family::Wan);
}

fn chaos_run(family: Family) {
    let started = Instant::now();
    let scenario = family.generate(SEED);
    let item = {
        let (_, request) = scenario.requests().next().expect("catalog has requests");
        scenario.item(request.item()).name().to_string()
    };
    let (mut server, addr) = spawn_server(family.name());

    // Load phase: the real loadgen binary with the chaos proxy
    // interposed. Every submit line is keyed, so retries through the
    // faulty proxy must converge on exactly one decision per line.
    let loadgen = Command::new(env!("CARGO_BIN_EXE_stage-loadgen"))
        .args([
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            &REQUESTS.to_string(),
            "--seed",
            &SEED.to_string(),
            "--family",
            family.name(),
            "--timeout-ms",
            "2000",
            "--retries",
            "8",
            "--chaos",
            &CHAOS_SEED.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stage-loadgen");

    // Disturbances land while the chaotic load is in flight; the engine's
    // write lock serializes them into the decision log wherever they fall.
    std::thread::sleep(Duration::from_millis(200));
    let (mut reader, mut writer) = connect(&addr);
    let outage = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"inject","kind":"link_outage","link":0,"at_ms":60000}"#,
    );
    assert_eq!(outage.get("ok").and_then(Value::as_bool), Some(true), "{outage:?}");
    let loss = round_trip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"verb":"inject","kind":"copy_loss","item":"{item}","machine":0,"at_ms":120000}}"#
        ),
    );
    assert_eq!(loss.get("ok").and_then(Value::as_bool), Some(true), "{loss:?}");
    drop((reader, writer));

    let output = loadgen.wait_with_output().expect("wait for stage-loadgen");
    let summary = String::from_utf8_lossy(&output.stdout).to_string();
    assert!(
        output.status.success(),
        "stage-loadgen must answer every line despite chaos, got {:?}\n{summary}",
        output.status
    );
    assert!(summary.contains("gave up: 0"), "no line may be abandoned:\n{summary}");
    assert!(summary.contains("chaos proxy on"), "the proxy must be interposed:\n{summary}");

    // Authoritative post-chaos state, then shutdown.
    let (mut reader, mut writer) = connect(&addr);
    let snapshot = round_trip(&mut reader, &mut writer, r#"{"verb":"snapshot"}"#);
    // Keyed retries deduplicate: despite cut connections and re-sent
    // lines, exactly REQUESTS submissions reach the log.
    assert_eq!(snapshot.get("submissions").and_then(Value::as_u64), Some(REQUESTS as u64));
    assert_eq!(snapshot.get("injections").and_then(Value::as_u64), Some(2));

    // Prometheus scrape while the daemon is still up: the observability
    // ledger must be arithmetically consistent with the chaos run.
    let scrape =
        round_trip(&mut reader, &mut writer, r#"{"verb":"metrics","format":"prometheus"}"#);
    assert_eq!(scrape.get("ok").and_then(Value::as_bool), Some(true), "{scrape:?}");
    let text = scrape.get("text").and_then(Value::as_str).expect("prometheus text").to_string();
    assert_ledger_consistent(&text);

    let bye = round_trip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((reader, writer));
    let status = server.wait().expect("wait for stage-serve");
    assert!(status.success(), "stage-serve must drain cleanly, got {status:?}");

    // The invariant: a fresh engine replaying the surviving decision log
    // with no faults anywhere reproduces the snapshot byte for byte.
    let mut replay = AdmissionEngine::new(&scenario, Heuristic::FullPathOneDestination, config());
    let log = snapshot.get("log").and_then(Value::as_array).expect("snapshot log");
    for entry in log {
        replay.replay_record(entry).expect("replay log record");
    }
    let live_bytes = serde_json::to_string(&snapshot).expect("reserialize snapshot");
    let replay_bytes = serde_json::to_string(&replay.snapshot()).expect("serialize replay");
    assert_eq!(replay_bytes, live_bytes, "chaos must not corrupt admission state");

    assert!(
        started.elapsed() < BUDGET,
        "chaos run exceeded its wall-clock budget: {:?}",
        started.elapsed()
    );
}
