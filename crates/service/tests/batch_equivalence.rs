//! Lockstep equivalence of batched and single-lock admission (the
//! batching analogue of `dstage-core`'s cache-consistency suite).
//!
//! Two engines are driven through the same randomized operation
//! sequence: epochs of concurrent-style submissions go through
//! `run_epoch` on one and one-at-a-time `submit` on the other, with
//! injections and optimization passes interleaved through the plain
//! write-lock path on both. Every response pair, the final snapshots,
//! and a from-scratch replay of the decision log must agree byte for
//! byte — with paranoid verify mode on, so any speculative commit that
//! diverges from the live decision panics on the spot.

use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::scenario::Scenario;
use dstage_service::batch::{run_epoch, set_verify};
use dstage_service::engine::AdmissionEngine;
use dstage_service::protocol::{InjectArgs, InjectKind, SubmitArgs};
use dstage_workload::{generate, GeneratorConfig};
use parking_lot::RwLock;
use proptest::prelude::*;

fn engine(scenario: &Scenario) -> AdmissionEngine {
    AdmissionEngine::new(scenario, Heuristic::FullPathOneDestination, {
        HeuristicConfig::paper_best()
    })
}

fn submit_args(scenario: &Scenario, pick: usize, sequence: usize, deadline_ms: u64) -> SubmitArgs {
    let items: Vec<&str> = scenario.item_ids().map(|i| scenario.item(i).name()).collect();
    SubmitArgs {
        item: items[pick % items.len()].to_string(),
        destination: (pick % scenario.network().machine_count()) as u32,
        deadline_ms,
        priority: (pick % 3) as u8,
        // Every third submission carries a key so epochs also exercise
        // the bounded idempotency window.
        idempotency_key: sequence.is_multiple_of(3).then(|| format!("pb-{sequence}")),
    }
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_epochs_with_mixed_ops_stay_in_lockstep(
        seed in 0u64..6,
        ops in prop::collection::vec((0u8..8, 0usize..64, 0u64..900, 2usize..7), 1..10),
    ) {
        set_verify(true);
        let scenario = generate(&GeneratorConfig::small(), seed);
        let links = scenario.network().link_count();
        let machines = scenario.network().machine_count();
        let concurrent = RwLock::new(engine(&scenario));
        let mut sequential = engine(&scenario);

        let mut sequence = 0usize;
        for &(op, pick, time, width) in &ops {
            match op {
                // An epoch of `width` submissions: batched on one side,
                // fed one at a time (in the same arrival order — the
                // order run_epoch logs) on the other.
                0..=4 => {
                    let batch: Vec<SubmitArgs> = (0..width)
                        .map(|member| {
                            let deadline = 400_000 + time * 7_000 + member as u64 * 90_000;
                            submit_args(&scenario, pick + member * 11, sequence + member, deadline)
                        })
                        .collect();
                    sequence += width;
                    let batched = run_epoch(&concurrent, &batch);
                    prop_assert_eq!(batched.len(), batch.len());
                    for (args, batched) in batch.iter().zip(batched) {
                        let expected = sequential.submit(args);
                        prop_assert_eq!(
                            batched.as_ref().map(json).map_err(String::clone),
                            expected.as_ref().map(json).map_err(String::clone)
                        );
                    }
                }
                // A disturbance through the exclusive write-lock path.
                5 | 6 => {
                    let kind = if pick % 2 == 0 {
                        InjectKind::LinkOutage { link: (pick / 2 % links.max(1)) as u32 }
                    } else {
                        let item = scenario
                            .item_ids()
                            .map(|i| scenario.item(i).name().to_string())
                            .nth(pick % scenario.item_count())
                            .expect("item index in range");
                        InjectKind::CopyLoss { item, machine: (pick % machines) as u32 }
                    };
                    let args = InjectArgs { kind, at_ms: time * 1_000 };
                    let live = concurrent.write().inject(&args);
                    let mirror = sequential.inject(&args);
                    prop_assert_eq!(
                        live.as_ref().map(json).map_err(String::clone),
                        mirror.as_ref().map(json).map_err(String::clone)
                    );
                }
                // An optimization pass, also exclusive.
                _ => {
                    let budget = (pick % 3 + 1) as u64;
                    let live = concurrent.write().optimize(budget);
                    let mirror = sequential.optimize(budget);
                    prop_assert_eq!(json(&live), json(&mirror));
                }
            }
        }

        let live_snapshot = json(&concurrent.read().snapshot());
        prop_assert_eq!(&live_snapshot, &json(&sequential.snapshot()));

        // Single-lock replay of the logged commit order rebuilds the
        // batched engine's snapshot byte for byte.
        let mut replayed = engine(&scenario);
        let snapshot = concurrent.read().snapshot();
        let log = snapshot.get("log").and_then(serde::Value::as_array).expect("snapshot log");
        for entry in log {
            replayed.replay_record(entry).expect("replay log record");
        }
        prop_assert_eq!(&json(&replayed.snapshot()), &live_snapshot);
    }
}
