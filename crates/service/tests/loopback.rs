//! Loopback integration test: the real `stage-serve` binary on an
//! ephemeral port, hammered by concurrent clients, must make exactly the
//! admission decisions a sequential offline replay of the same order
//! makes — checked byte for byte on the snapshot JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::thread;

use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_service::engine::AdmissionEngine;
use dstage_workload::{generate, GeneratorConfig};
use serde::Value;

const SEED: u64 = 11;
const CLIENTS: usize = 4;

fn catalog() -> Scenario {
    generate(&GeneratorConfig::small(), SEED)
}

/// The heuristic configuration `stage-serve` is started with below.
fn config() -> HeuristicConfig {
    HeuristicConfig {
        criterion: CostCriterion::C4,
        eu: EuWeights::from_log10_ratio(2.0),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    }
}

/// Starts the daemon on an ephemeral port and returns (child, addr).
fn spawn_server(scenario_path: &std::path::Path, workers: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stage-serve"))
        .args([
            "--scenario",
            scenario_path.to_str().expect("utf-8 temp path"),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--heuristic",
            "full-one",
            "--criterion",
            "C4",
            "--ratio",
            "2",
            "--weights",
            "1,10,100",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stage-serve");
    let stdout = child.stdout.take().expect("stage-serve stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

/// One NDJSON round trip on an existing connection.
fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    writer.flush().expect("flush");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv");
    assert!(n > 0, "daemon closed the connection after {request:?}");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

/// Byte-identity at 8 workers — the daemon's default-ish pool size.
#[test]
fn concurrent_decisions_match_sequential_replay_byte_for_byte() {
    exercise_loopback(8);
}

/// Byte-identity at 4 workers: small epochs, frequent leader handoffs.
#[test]
fn four_worker_batches_match_sequential_replay() {
    exercise_loopback(4);
}

/// Byte-identity at 16 workers: the largest epochs the client count can
/// form, maximizing speculative commits and conflict retries.
#[test]
fn sixteen_worker_batches_match_sequential_replay() {
    exercise_loopback(16);
}

/// A point-to-multipoint submit over the wire: the group response
/// carries one per-destination decision each, later members reuse the
/// staged upstream copy, and the per-destination decision log replays
/// byte-for-byte.
#[test]
fn p2mp_submit_round_trip_shares_hops_and_replays() {
    let scenario = dstage_workload::small::fan_out();
    let scenario_path =
        std::env::temp_dir().join(format!("dstage-loopback-p2mp-{}.json", std::process::id()));
    std::fs::write(&scenario_path, serde_json::to_string(&scenario).expect("serialize catalog"))
        .expect("write catalog file");
    let (mut child, addr) = spawn_server(&scenario_path, 2);

    let item = scenario.items().next().expect("fan_out has an item").1.name().to_string();
    let (mut reader, mut writer) = connect(&addr);
    let line = format!(
        r#"{{"verb":"submit","item":"{item}","destinations":[2,3,4],"deadline_ms":1800000,"priority":2,"idempotency_key":"wire-g1"}}"#
    );
    let response = round_trip(&mut reader, &mut writer, &line);
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("admitted").and_then(Value::as_u64), Some(3));
    assert_eq!(response.get("rejected").and_then(Value::as_u64), Some(0));
    let group = response.get("group").and_then(Value::as_array).expect("group array");
    let new_transfers: Vec<u64> = group
        .iter()
        .map(|m| m.get("new_transfers").and_then(Value::as_u64).expect("new_transfers"))
        .collect();
    assert_eq!(new_transfers, [2, 1, 1], "later members must reuse the staged hub copy");
    // A group retry replays every member decision byte-for-byte.
    let retry = round_trip(&mut reader, &mut writer, &line);
    assert_eq!(serde_json::to_string(&retry).unwrap(), serde_json::to_string(&response).unwrap());

    let snapshot = round_trip(&mut reader, &mut writer, r#"{"verb":"snapshot"}"#);
    assert_eq!(snapshot.get("submissions").and_then(Value::as_u64), Some(3));
    let bye = round_trip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((reader, writer));
    let status = child.wait().expect("wait for stage-serve");
    assert!(status.success(), "stage-serve must drain cleanly, got {status:?}");
    let _ = std::fs::remove_file(&scenario_path);

    let mut replay = AdmissionEngine::new(&scenario, Heuristic::FullPathOneDestination, config());
    let log = snapshot.get("log").and_then(Value::as_array).expect("snapshot log");
    for entry in log {
        replay.replay_record(entry).expect("replay log record");
    }
    assert_eq!(
        serde_json::to_string(&replay.snapshot()).expect("serialize replay"),
        serde_json::to_string(&snapshot).expect("reserialize snapshot"),
        "per-destination decisions must replay identically"
    );
}

fn exercise_loopback(workers: usize) {
    let scenario = catalog();
    let scenario_path = std::env::temp_dir()
        .join(format!("dstage-loopback-{}-{SEED}-w{workers}.json", std::process::id()));
    std::fs::write(&scenario_path, serde_json::to_string(&scenario).expect("serialize catalog"))
        .expect("write catalog file");
    let (mut child, addr) = spawn_server(&scenario_path, workers);

    // The catalog's request stream, as wire submissions.
    let submissions: Vec<String> = scenario
        .requests()
        .map(|(_, r)| {
            format!(
                r#"{{"verb":"submit","item":"{}","destination":{},"deadline_ms":{},"priority":{}}}"#,
                scenario.item(r.item()).name(),
                r.destination().index(),
                r.deadline().as_millis(),
                r.priority().level()
            )
        })
        .collect();
    // One connection per worker (floored so every client still has a
    // couple of lines), so the pool can actually fill epochs that wide.
    let clients = workers.min(submissions.len() / 2).max(1);
    assert!(
        submissions.len() >= CLIENTS * 2,
        "need a few submissions per client, got {}",
        submissions.len()
    );

    // Concurrent phase: `clients` connections submitting disjoint chunks.
    let chunk_len = submissions.len().div_ceil(clients);
    let mut clients = Vec::new();
    for chunk in submissions.chunks(chunk_len) {
        let chunk = chunk.to_vec();
        let addr = addr.clone();
        clients.push(thread::spawn(move || {
            let (mut reader, mut writer) = connect(&addr);
            chunk
                .iter()
                .map(|line| round_trip(&mut reader, &mut writer, line))
                .collect::<Vec<Value>>()
        }));
    }
    let mut submission_indices = Vec::new();
    for client in clients {
        for response in client.join().expect("client thread") {
            assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
            let decision = response.get("decision").and_then(Value::as_str).unwrap_or("");
            assert!(
                decision == "admitted" || decision == "rejected",
                "unexpected decision in {response:?}"
            );
            submission_indices
                .push(response.get("submission").and_then(Value::as_u64).expect("submission id"));
        }
    }
    // Every submission was processed exactly once, in some serialized order.
    submission_indices.sort_unstable();
    assert_eq!(submission_indices, (0..submissions.len() as u64).collect::<Vec<_>>());

    // Authoritative state, a query spot-check, then shutdown.
    let (mut reader, mut writer) = connect(&addr);
    let snapshot = round_trip(&mut reader, &mut writer, r#"{"verb":"snapshot"}"#);
    assert_eq!(snapshot.get("submissions").and_then(Value::as_u64), Some(submissions.len() as u64));
    let admitted = snapshot.get("admitted").and_then(Value::as_u64).expect("admitted count");
    assert!(admitted > 0, "the small catalog must admit something");
    let query = round_trip(&mut reader, &mut writer, r#"{"verb":"query","request":0}"#);
    assert_eq!(query.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(query.get("status").and_then(Value::as_str), Some("admitted"));
    let metrics = round_trip(&mut reader, &mut writer, r#"{"verb":"metrics"}"#);
    assert_eq!(
        metrics.get("latency").and_then(|l| l.get("count")).and_then(Value::as_u64),
        Some(submissions.len() as u64)
    );
    let bye = round_trip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((reader, writer));
    let status = child.wait().expect("wait for stage-serve");
    assert!(status.success(), "stage-serve must drain cleanly, got {status:?}");
    let _ = std::fs::remove_file(&scenario_path);

    // Sequential replay of the daemon's serialized decision order through
    // a fresh in-process engine must reproduce the snapshot byte for byte.
    let mut replay = AdmissionEngine::new(&scenario, Heuristic::FullPathOneDestination, config());
    let log = snapshot.get("log").and_then(Value::as_array).expect("snapshot log");
    for entry in log {
        replay.replay_record(entry).expect("replay log record");
    }
    let live_bytes = serde_json::to_string(&snapshot).expect("reserialize snapshot");
    let replay_bytes = serde_json::to_string(&replay.snapshot()).expect("serialize replay");
    assert_eq!(replay_bytes, live_bytes, "concurrent and sequential admission must agree");
}
