//! Property tests for torn and corrupt WAL tails: randomized
//! truncations and bit-flips over a valid log must recover exactly the
//! longest valid prefix — never panic, never invent a record, and (at
//! the engine level) never admit a request that is absent from that
//! prefix.

use std::path::PathBuf;

use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_service::durability::{Durability, DEFAULT_CHECKPOINT_EVERY};
use dstage_service::engine::AdmissionEngine;
use dstage_service::protocol::SubmitArgs;
use dstage_service::wal::{
    scan_segment, FsyncPolicy, SegmentWriter, RECORD_HEADER_BYTES, WAL_MAGIC,
};
use dstage_workload::{generate, GeneratorConfig};
use proptest::prelude::*;

/// A deterministic payload for spec `(seed, len)`: xorshift bytes, so
/// accidental CRC collisions after a flip are as unlikely as they get.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

fn temp_path(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstage-walprop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}-{case}.log"))
}

/// Writes one segment holding `specs` payloads and returns the byte
/// offsets one past each record (for computing expected prefixes).
fn write_segment(path: &std::path::Path, specs: &[(u64, usize)]) -> Vec<u64> {
    let mut writer = SegmentWriter::create(path).expect("create segment");
    let mut ends = Vec::with_capacity(specs.len());
    for &(seed, len) in specs {
        writer.append(&payload(seed, len)).expect("append");
        ends.push(writer.len());
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chopping the file at any offset keeps exactly the records that
    /// end at or before the cut.
    #[test]
    fn truncation_recovers_the_longest_valid_prefix(
        case in 0u64..1_000_000,
        specs in prop::collection::vec((0u64..1_000_000, 0usize..200), 1..10),
        cut in 0u64..100_000,
    ) {
        let path = temp_path("cut", case);
        let ends = write_segment(&path, &specs);
        let file_len = *ends.last().expect("at least one record");
        let cut = cut % (file_len + 1); // anywhere from empty to intact
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..cut as usize]).expect("truncate");

        let scan = scan_segment(&path).expect("scan never fails on corruption");
        let expected: Vec<Vec<u8>> = specs
            .iter()
            .zip(&ends)
            .filter(|&(_, &end)| end <= cut)
            .map(|(&(seed, len), _)| payload(seed, len))
            .collect();
        let got: Vec<&[u8]> = scan.records.iter().map(|r| r.payload.as_slice()).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(*g, e.as_slice());
        }
        // The reported valid prefix is exactly the surviving records; a
        // cut inside the magic header invalidates the whole file.
        if cut < WAL_MAGIC.len() as u64 {
            prop_assert_eq!(scan.valid_len, 0);
        } else {
            let valid_len = scan.records.last().map_or(WAL_MAGIC.len() as u64, |r| r.end);
            prop_assert_eq!(scan.valid_len, valid_len);
        }
        prop_assert_eq!(scan.truncated, cut < file_len);
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single bit keeps exactly the records that lie
    /// entirely before the flipped byte (a flip in the magic header
    /// invalidates everything).
    #[test]
    fn bit_flip_keeps_the_prefix_before_the_flip(
        case in 0u64..1_000_000,
        specs in prop::collection::vec((0u64..1_000_000, 1usize..200), 1..10),
        position in 0u64..100_000,
        bit in 0u32..8,
    ) {
        let path = temp_path("flip", case);
        let ends = write_segment(&path, &specs);
        let file_len = *ends.last().expect("at least one record");
        let position = position % file_len;
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[position as usize] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite");

        let scan = scan_segment(&path).expect("scan never fails on corruption");
        let expected: Vec<Vec<u8>> = specs
            .iter()
            .zip(&ends)
            .filter(|&(_, &end)| end <= position)
            .map(|(&(seed, len), _)| payload(seed, len))
            .collect();
        let got: Vec<&[u8]> = scan.records.iter().map(|r| r.payload.as_slice()).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(*g, e.as_slice());
        }
        prop_assert!(scan.truncated);
        prop_assert!(scan.valid_len <= position.max(WAL_MAGIC.len() as u64));
        std::fs::remove_file(&path).ok();
    }

    /// End-to-end over a real decision log: however the tail is torn,
    /// recovery admits exactly the requests of the surviving prefix —
    /// byte-identical to a fresh engine replaying that prefix, with no
    /// invented admissions.
    #[test]
    fn recovery_never_admits_a_request_absent_from_the_prefix(
        cut in 0u64..100_000,
        submissions in 2usize..7,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "dstage-walprop-rec-{}-{cut}-{submissions}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let catalog = generate(&GeneratorConfig::small(), 3);
        let heuristic = Heuristic::FullPathOneDestination;
        let (durability, mut engine, _) = Durability::recover(
            &dir,
            FsyncPolicy::Always,
            DEFAULT_CHECKPOINT_EVERY,
            &catalog,
            heuristic,
            HeuristicConfig::paper_best(),
        )
        .expect("recover empty dir");
        let items: Vec<String> = engine.item_names().map(str::to_string).collect();
        for i in 0..submissions {
            let _ = engine.submit(&SubmitArgs {
                item: items[i % items.len()].clone(),
                destination: (i % engine.machine_count()) as u32,
                deadline_ms: 500_000 + i as u64 * 70_000,
                priority: (i % 3) as u8,
                idempotency_key: Some(format!("prop-{i}")),
            });
            let seq = durability.stage(&engine);
            durability.commit(seq);
        }
        let full_log = engine.snapshot();
        let full_log = full_log.get("log").and_then(serde::Value::as_array).expect("log");
        drop((durability, engine));

        // Tear the segment at a random offset.
        let segment = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .expect("one segment");
        let bytes = std::fs::read(&segment).expect("read segment");
        let cut = cut % (bytes.len() as u64 + 1);
        std::fs::write(&segment, &bytes[..cut as usize]).expect("truncate");
        let survivors =
            scan_segment(&segment).expect("scan").records.len();

        let (_, recovered, report) = Durability::recover(
            &dir,
            FsyncPolicy::Always,
            DEFAULT_CHECKPOINT_EVERY,
            &catalog,
            heuristic,
            HeuristicConfig::paper_best(),
        )
        .expect("recover torn dir");
        prop_assert_eq!(report.replayed, survivors as u64);
        prop_assert_eq!(recovered.log().len(), survivors);
        let mut expected = AdmissionEngine::new(&catalog, heuristic, HeuristicConfig::paper_best());
        for entry in &full_log[..survivors] {
            expected.replay_record(entry).expect("replay surviving prefix");
        }
        prop_assert_eq!(
            serde_json::to_string(&recovered.snapshot()).expect("snapshot"),
            serde_json::to_string(&expected.snapshot()).expect("snapshot")
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Framing sanity used by the properties above: the constants the
/// expected-prefix arithmetic relies on.
#[test]
fn frame_arithmetic_matches_the_writer() {
    let path = temp_path("arith", 0);
    let specs = [(1u64, 10usize), (2, 0), (3, 33)];
    let ends = write_segment(&path, &specs);
    let mut expected_end = WAL_MAGIC.len() as u64;
    for ((_, len), end) in specs.iter().zip(&ends) {
        expected_end += RECORD_HEADER_BYTES + *len as u64;
        assert_eq!(*end, expected_end);
    }
    std::fs::remove_file(&path).ok();
}
