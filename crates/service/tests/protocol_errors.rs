//! Protocol error paths against an in-process daemon: invalid
//! injections, idempotency-key misuse, oversized request lines, and
//! mid-line disconnects must all leave the server healthy.
//!
//! The server runs ONE worker on purpose: if any of the abusive
//! connections wedged it, every later round trip would hang (and the
//! harness would time the test out).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::thread;

use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_service::engine::AdmissionEngine;
use dstage_service::server::{Server, ServerConfig, MAX_LINE_BYTES};
use dstage_workload::small::two_hop_chain;
use serde::Value;

fn connect(addr: &std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    writer.flush().expect("flush");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv");
    assert!(n > 0, "daemon closed the connection after {request:?}");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn error_of(value: &Value) -> String {
    assert_eq!(value.get("ok").and_then(Value::as_bool), Some(false), "expected error: {value:?}");
    value.get("error").and_then(Value::as_str).expect("error message").to_string()
}

#[test]
fn abusive_clients_get_errors_and_the_worker_survives() {
    let engine = AdmissionEngine::new(
        &two_hop_chain(),
        Heuristic::FullPathOneDestination,
        HeuristicConfig::paper_best(),
    );
    let server =
        Server::bind(engine, "127.0.0.1:0", ServerConfig { workers: 1 }).expect("bind server");
    let addr = server.local_addr().expect("local addr");
    let daemon = thread::spawn(move || server.run());

    // --- inject with unknown ids is an error, never a logged injection.
    let (mut reader, mut writer) = connect(&addr);
    let bad_link = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"inject","kind":"link_outage","link":99,"at_ms":0}"#,
    );
    assert!(error_of(&bad_link).contains("unknown link"), "{bad_link:?}");
    let bad_item = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"inject","kind":"copy_loss","item":"ghost","machine":0,"at_ms":0}"#,
    );
    assert!(error_of(&bad_item).contains("unknown data item"), "{bad_item:?}");
    let bad_machine = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"inject","kind":"copy_loss","item":"alpha","machine":99,"at_ms":0}"#,
    );
    assert!(error_of(&bad_machine).contains("unknown machine"), "{bad_machine:?}");
    let bad_kind =
        round_trip(&mut reader, &mut writer, r#"{"verb":"inject","kind":"meteor","at_ms":0}"#);
    assert!(error_of(&bad_kind).contains("unknown inject kind"), "{bad_kind:?}");

    // --- idempotency: replaying the same key+args returns the original
    // bytes; the same key with different args is rejected, not deduped.
    let keyed = r#"{"verb":"submit","item":"alpha","destination":2,"deadline_ms":7200000,"priority":2,"idempotency_key":"k1"}"#;
    let first = round_trip(&mut reader, &mut writer, keyed);
    assert_eq!(first.get("decision").and_then(Value::as_str), Some("admitted"));
    let replayed = round_trip(&mut reader, &mut writer, keyed);
    assert_eq!(
        serde_json::to_string(&replayed).unwrap(),
        serde_json::to_string(&first).unwrap(),
        "a keyed retry must replay the original decision"
    );
    let conflicting = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"submit","item":"alpha","destination":2,"deadline_ms":9999999,"priority":2,"idempotency_key":"k1"}"#,
    );
    assert!(error_of(&conflicting).contains("different arguments"), "{conflicting:?}");
    let metrics = round_trip(&mut reader, &mut writer, r#"{"verb":"metrics"}"#);
    assert_eq!(
        metrics.get("submissions").and_then(Value::as_u64),
        Some(1),
        "dedup and conflict must not grow the log: {metrics:?}"
    );
    drop((reader, writer));

    // --- a client disconnecting mid-line must not wedge the (single)
    // worker for the next connection.
    {
        let mut half = TcpStream::connect(addr).expect("connect");
        half.write_all(br#"{"verb":"submit","item":"al"#).expect("send partial line");
        half.flush().expect("flush");
        half.shutdown(Shutdown::Both).expect("disconnect mid-line");
    }

    // --- an endless line is cut off at MAX_LINE_BYTES with one error
    // response, then the connection is dropped.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        let blob = vec![b'x'; MAX_LINE_BYTES + 1024];
        writer.write_all(&blob).expect("stream an endless line");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read the error line");
        let value: Value = serde_json::from_str(response.trim()).expect("error is JSON");
        assert!(error_of(&value).contains("exceeds"), "{value:?}");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("connection must be closed");
        assert!(rest.is_empty(), "nothing after the error line");
    }

    // --- the worker is still alive and serving correct answers.
    let (mut reader, mut writer) = connect(&addr);
    let query = round_trip(&mut reader, &mut writer, r#"{"verb":"query","request":0}"#);
    assert_eq!(query.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(query.get("status").and_then(Value::as_str), Some("admitted"));
    let bye = round_trip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((reader, writer));
    let snapshot = daemon.join().expect("daemon thread").expect("clean drain");
    assert_eq!(snapshot.get("submissions").and_then(Value::as_u64), Some(1));
    assert_eq!(snapshot.get("injections").and_then(Value::as_u64), Some(0));
}
