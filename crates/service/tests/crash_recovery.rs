//! Crash-injection harness: the real `stage-serve` binary is killed at
//! deterministic crash points (and with plain SIGKILL) in a loop, then
//! restarted on the same data directory. After every restart the
//! recovered snapshot must be byte-identical to a fresh engine's replay
//! of the surviving decision log, and with `--durability always` no
//! acknowledged decision may be lost — a client retrying an
//! acknowledged key gets the recorded response back, not a double
//! admission.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_service::engine::AdmissionEngine;
use dstage_workload::{generate, GeneratorConfig};
use serde::Value;

/// Catalog seed shared by the daemon (`--generate`) and the in-test
/// replay engines.
const SEED: u64 = 11;
/// Wall-clock ceiling for each kill/restart loop; CI treats a slower
/// run as a hang.
const BUDGET: Duration = Duration::from_secs(120);

/// The heuristic configuration matching `stage-serve`'s defaults.
fn config() -> HeuristicConfig {
    HeuristicConfig {
        criterion: CostCriterion::C4,
        eu: EuWeights::from_log10_ratio(2.0),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    }
}

fn catalog() -> Scenario {
    generate(&GeneratorConfig::paper(), SEED)
}

fn item_names(scenario: &Scenario) -> Vec<String> {
    scenario.item_ids().map(|i| scenario.item(i).name().to_string()).collect()
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstage-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Spawns the daemon on `data_dir`, optionally arming a crash point,
/// and waits for the banner.
fn spawn_server(data_dir: &Path, durability: &str, crash: Option<&str>) -> (Child, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_stage-serve"));
    command
        .args([
            "--generate",
            &SEED.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--durability",
            durability,
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("DSTAGE_CRASH_POINT");
    if let Some(point) = crash {
        command.env("DSTAGE_CRASH_POINT", point);
    }
    let mut child = command.spawn().expect("spawn stage-serve");
    let stdout = child.stdout.take().expect("stage-serve stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

/// One round trip that tolerates the server dying mid-request (that is
/// the point of this suite): `None` means no response arrived.
fn try_round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> Option<Value> {
    if writeln!(writer, "{request}").is_err() || writer.flush().is_err() {
        return None;
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(n) if n > 0 => serde_json::from_str(response.trim()).ok(),
        _ => None,
    }
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    try_round_trip(reader, writer, request)
        .unwrap_or_else(|| panic!("no response to {request:?} from a healthy server"))
}

fn acked_ok(response: &Value) -> bool {
    response.get("ok").and_then(Value::as_bool) == Some(true)
}

fn submit_line(items: &[String], machines: usize, pick: usize, key: &str) -> String {
    format!(
        "{{\"verb\":\"submit\",\"item\":\"{}\",\"destination\":{},\"deadline_ms\":{},\
         \"priority\":{},\"idempotency_key\":\"{key}\"}}",
        items[pick % items.len()],
        pick % machines,
        3_600_000 + (pick as u64) * 120_000,
        pick % 3,
    )
}

/// Asserts the daemon's snapshot is byte-identical to a fresh engine
/// replaying the snapshot's own decision log, and that every
/// acknowledged submission is present with its recorded decision —
/// which a keyed retry replays verbatim instead of deciding again.
fn assert_recovered(addr: &str, scenario: &Scenario, acked: &HashMap<String, Value>) {
    let (mut reader, mut writer) = connect(addr);
    let snapshot = round_trip(&mut reader, &mut writer, "{\"verb\":\"snapshot\"}");
    let log = snapshot.get("log").and_then(Value::as_array).expect("snapshot log");

    // Byte-identity: the recovered state replays from its own log.
    let mut replay = AdmissionEngine::new(scenario, Heuristic::FullPathOneDestination, config());
    for entry in log {
        replay.replay_record(entry).expect("replay log record");
    }
    assert_eq!(
        serde_json::to_string(&snapshot).expect("snapshot json"),
        serde_json::to_string(&replay.snapshot()).expect("replay json"),
        "recovered snapshot must equal a fault-free replay of the surviving log"
    );

    // No acknowledged decision lost, and retries replay it unchanged.
    for (key, response) in acked {
        let entry = log
            .iter()
            .find(|e| e.get("idempotency_key").and_then(Value::as_str) == Some(key))
            .unwrap_or_else(|| panic!("acknowledged submission {key} missing after recovery"));
        assert_eq!(
            entry.get("decision").and_then(Value::as_str),
            response.get("decision").and_then(Value::as_str),
            "decision for {key} changed across recovery"
        );
        let item = entry.get("item").and_then(Value::as_str).expect("item");
        let destination = entry.get("destination").and_then(Value::as_u64).expect("destination");
        let deadline = entry.get("deadline_ms").and_then(Value::as_u64).expect("deadline");
        let priority = entry.get("priority").and_then(Value::as_u64).expect("priority");
        let retry = round_trip(
            &mut reader,
            &mut writer,
            &format!(
                "{{\"verb\":\"submit\",\"item\":\"{item}\",\"destination\":{destination},\
                 \"deadline_ms\":{deadline},\"priority\":{priority},\
                 \"idempotency_key\":\"{key}\"}}"
            ),
        );
        assert_eq!(
            serde_json::to_string(&retry).expect("retry json"),
            serde_json::to_string(response).expect("acked json"),
            "retry of acknowledged key {key} must return the recorded response"
        );
    }
}

/// Drains the daemon with the `shutdown` verb and insists on exit 0.
fn drain(child: &mut Child, addr: &str) {
    let (mut reader, mut writer) = connect(addr);
    round_trip(&mut reader, &mut writer, "{\"verb\":\"shutdown\"}");
    drop((reader, writer));
    let status = child.wait().expect("wait for drained server");
    assert!(status.success(), "drain must exit cleanly, got {status:?}");
}

/// Every named crash point: the daemon is driven until the armed point
/// aborts it, restarted, and checked — acknowledged decisions survive
/// `kill -9`-grade crashes at every stage of the WAL and checkpoint
/// paths.
#[test]
fn every_crash_point_recovers_without_losing_acknowledged_decisions() {
    let started = Instant::now();
    let scenario = catalog();
    let items = item_names(&scenario);
    let machines = scenario.network().machine_count();
    let dir = temp_data_dir("points");
    // `:2` arms the second passage so at least one earlier operation is
    // acknowledged before the crash lands; checkpoint points fire on the
    // explicit `checkpoint` verb.
    let rounds = [
        ("wal_append:2", false),
        ("wal_tear:1", false),
        ("pre_fsync:2", false),
        ("post_fsync:2", false),
        ("checkpoint_tmp:1", true),
        ("checkpoint_rename:1", true),
    ];
    let mut acked: HashMap<String, Value> = HashMap::new();
    let mut pick = 0usize;
    for (round, &(point, checkpoint)) in rounds.iter().enumerate() {
        let (mut child, addr) = spawn_server(&dir, "always", Some(point));
        let (mut reader, mut writer) = connect(&addr);
        // Submit until the armed point kills the server (bounded: every
        // decision appends and commits, so the second append or fsync
        // lands by the second submission).
        let mut crashed = false;
        for i in 0..6 {
            let key = format!("cp-{round}-{i}");
            let line = submit_line(&items, machines, pick, &key);
            pick += 1;
            match try_round_trip(&mut reader, &mut writer, &line) {
                Some(response) if acked_ok(&response) => {
                    acked.insert(key, response);
                }
                _ => {
                    crashed = true;
                    break;
                }
            }
            if checkpoint
                && i >= 1
                && try_round_trip(&mut reader, &mut writer, "{\"verb\":\"checkpoint\"}").is_none()
            {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "crash point {point} never fired");
        let status = child.wait().expect("wait for crashed server");
        assert!(!status.success(), "a crash must not exit cleanly ({point})");

        // Restart without the crash point: recovery must hold the line.
        let (mut child, addr) = spawn_server(&dir, "always", None);
        assert_recovered(&addr, &scenario, &acked);
        // No checkpoint temp files survive recovery.
        let leftovers = std::fs::read_dir(&dir)
            .expect("read data dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0, "recovery must clear checkpoint temp files");
        drain(&mut child, &addr);
        assert!(started.elapsed() < BUDGET, "crash-point loop exceeded {BUDGET:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Randomized crash chaos: a fixed-seed LCG picks crash points, arm
/// counts, and outright SIGKILLs across rounds; the data directory
/// accumulates state the whole way. Every restart must recover a
/// snapshot equal to the fault-free replay of the surviving log, with
/// every acknowledged decision intact — then a clean drain preserves
/// everything.
#[test]
fn randomized_crash_chaos_preserves_acknowledged_decisions() {
    let started = Instant::now();
    let scenario = catalog();
    let items = item_names(&scenario);
    let machines = scenario.network().machine_count();
    let dir = temp_data_dir("chaos");
    let mut state: u64 = 0xD5_7A6E; // fixed seed: same kill schedule every run
    let mut next = move || {
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let points = ["wal_append", "wal_tear", "pre_fsync", "post_fsync", "checkpoint_tmp"];
    let mut acked: HashMap<String, Value> = HashMap::new();
    let mut pick = 0usize;
    for round in 0..5 {
        let sigkill = next() % 3 == 0;
        let point;
        let crash = if sigkill {
            None
        } else {
            point = format!("{}:{}", points[next() as usize % points.len()], next() % 2 + 1);
            Some(point.as_str())
        };
        let (mut child, addr) = spawn_server(&dir, "always", crash);
        let (mut reader, mut writer) = connect(&addr);
        let submissions = 2 + next() as usize % 3;
        for i in 0..submissions {
            let key = format!("chaos-{round}-{i}");
            let line = submit_line(&items, machines, pick, &key);
            pick += 1;
            match try_round_trip(&mut reader, &mut writer, &line) {
                Some(response) if acked_ok(&response) => {
                    acked.insert(key, response);
                }
                _ => break, // the armed point fired
            }
            if crash.is_some() && i + 1 == submissions {
                // Give checkpoint-stage points a chance to fire too.
                let _ = try_round_trip(&mut reader, &mut writer, "{\"verb\":\"checkpoint\"}");
            }
        }
        // Whatever survived the round dies hard — an armed point that
        // never fired still gets its crash, via SIGKILL.
        let _ = child.kill();
        let _ = child.wait();

        let (mut child, addr) = spawn_server(&dir, "always", None);
        assert_recovered(&addr, &scenario, &acked);
        drain(&mut child, &addr);
        assert!(started.elapsed() < BUDGET, "chaos loop exceeded {BUDGET:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGTERM is a graceful drain: in-flight state is fsynced whatever the
/// policy (here `interval:60000`, which would otherwise leave the tail
/// unsynced for a minute), the process exits 0, and a restart recovers
/// every decision.
#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_loses_nothing() {
    let scenario = catalog();
    let items = item_names(&scenario);
    let machines = scenario.network().machine_count();
    let dir = temp_data_dir("sigterm");
    let (mut child, addr) = spawn_server(&dir, "interval:60000", None);

    let mut acked: HashMap<String, Value> = HashMap::new();
    let (mut reader, mut writer) = connect(&addr);
    for i in 0..4 {
        let key = format!("term-{i}");
        let response =
            round_trip(&mut reader, &mut writer, &submit_line(&items, machines, i, &key));
        assert!(acked_ok(&response), "submit must be acknowledged: {response:?}");
        acked.insert(key, response);
    }
    drop((reader, writer));

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = child.wait().expect("wait for drained server");
    assert!(status.success(), "SIGTERM must drain and exit 0, got {status:?}");

    let (mut child, addr) = spawn_server(&dir, "always", None);
    assert_recovered(&addr, &scenario, &acked);
    drain(&mut child, &addr);
    std::fs::remove_dir_all(&dir).ok();
}
