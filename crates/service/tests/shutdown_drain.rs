//! Shutdown-drain regression: a connection that is already accepted (and
//! queued behind the single worker) when another client triggers
//! `shutdown` must still get its in-flight request answered during the
//! drain grace window — the old code dropped it at the first
//! post-shutdown read-timeout tick, closing the socket with no response.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_service::engine::AdmissionEngine;
use dstage_service::server::{Server, ServerConfig};
use dstage_workload::small::two_hop_chain;
use serde::Value;

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    (BufReader::new(stream.try_clone().expect("clone stream")), stream)
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    writer.flush().expect("flush");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv");
    assert!(n > 0, "daemon closed the connection after {request:?}");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

#[test]
fn queued_connection_is_answered_during_shutdown_drain() {
    let engine = AdmissionEngine::new(
        &two_hop_chain(),
        Heuristic::FullPathOneDestination,
        HeuristicConfig::paper_best(),
    );
    let server =
        Server::bind(engine, "127.0.0.1:0", ServerConfig { workers: 1 }).expect("bind server");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || server.run().expect("server run"));

    // Connection B occupies the only worker (proven by a round trip);
    // connection A is accepted but waits in the worker queue.
    let (mut b_reader, mut b_writer) = connect(&addr);
    let warmup = round_trip(
        &mut b_reader,
        &mut b_writer,
        r#"{"verb":"submit","item":"alpha","destination":2,"deadline_ms":7200000,"priority":2}"#,
    );
    assert_eq!(warmup.get("decision").and_then(Value::as_str), Some("admitted"));
    let (mut a_reader, mut a_writer) = connect(&addr);

    // A goes silent past the old failure point (the worker's first
    // post-shutdown 200 ms timeout tick), then submits — the drain grace
    // must still answer it.
    let late_submit = thread::spawn(move || {
        thread::sleep(Duration::from_millis(500));
        round_trip(
            &mut a_reader,
            &mut a_writer,
            r#"{"verb":"submit","item":"alpha","destination":1,"deadline_ms":7200000,"priority":1}"#,
        )
    });

    let bye = round_trip(&mut b_reader, &mut b_writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((b_reader, b_writer)); // frees the worker for the queued A

    let late = late_submit.join().expect("late client thread");
    assert_eq!(late.get("ok").and_then(Value::as_bool), Some(true));
    let decision = late.get("decision").and_then(Value::as_str).unwrap_or("");
    assert!(
        decision == "admitted" || decision == "rejected",
        "queued connection must get a real decision, got {late:?}"
    );

    let snapshot = server.join().expect("server thread");
    assert_eq!(
        snapshot.get("submissions").and_then(Value::as_u64),
        Some(2),
        "both submissions must be in the drained snapshot"
    );
}
