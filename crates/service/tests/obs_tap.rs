//! Read-only-tap byte-identity test at the service boundary: two
//! `stage-serve` daemons run the same sequential script, one with the
//! observability tap enabled (`DSTAGE_OBS=1`) and one with it disabled
//! (`DSTAGE_OBS=0`). Their snapshots must be byte-identical — metrics
//! and flight-recorder state may differ wildly, admission state may not.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use dstage_workload::{generate, GeneratorConfig};
use serde::Value;

const SEED: u64 = 11;

fn spawn_server(scenario_path: &std::path::Path, obs: &str) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stage-serve"))
        .args([
            "--scenario",
            scenario_path.to_str().expect("utf-8 temp path"),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
        ])
        .env("DSTAGE_OBS", obs)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn stage-serve");
    let stdout = child.stdout.take().expect("stage-serve stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Value {
    writeln!(writer, "{request}").expect("send");
    writer.flush().expect("flush");
    let mut response = String::new();
    let n = reader.read_line(&mut response).expect("recv");
    assert!(n > 0, "daemon closed the connection after {request:?}");
    serde_json::from_str(response.trim())
        .unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

/// Runs the fixed script against a fresh daemon with `DSTAGE_OBS=obs`:
/// every catalog request submitted sequentially on one connection, one
/// disturbance, then snapshot + prometheus scrape + trace + shutdown.
/// Returns (snapshot bytes, prometheus text, trace response).
fn run_script(
    scenario_path: &std::path::Path,
    submissions: &[String],
    obs: &str,
) -> (String, String, Value) {
    let (mut child, addr) = spawn_server(scenario_path, obs);
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;

    for line in submissions {
        let response = round_trip(&mut reader, &mut writer, line);
        assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true), "{response:?}");
    }
    let outage = round_trip(
        &mut reader,
        &mut writer,
        r#"{"verb":"inject","kind":"link_outage","link":0,"at_ms":60000}"#,
    );
    assert_eq!(outage.get("ok").and_then(Value::as_bool), Some(true), "{outage:?}");

    let snapshot = round_trip(&mut reader, &mut writer, r#"{"verb":"snapshot"}"#);
    assert_eq!(snapshot.get("submissions").and_then(Value::as_u64), Some(submissions.len() as u64));
    let scrape =
        round_trip(&mut reader, &mut writer, r#"{"verb":"metrics","format":"prometheus"}"#);
    assert_eq!(scrape.get("ok").and_then(Value::as_bool), Some(true), "{scrape:?}");
    let text = scrape.get("text").and_then(Value::as_str).expect("prometheus text").to_string();
    let trace = round_trip(&mut reader, &mut writer, r#"{"verb":"trace","limit":64}"#);
    assert_eq!(trace.get("ok").and_then(Value::as_bool), Some(true), "{trace:?}");

    let bye = round_trip(&mut reader, &mut writer, r#"{"verb":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Value::as_bool), Some(true));
    drop((reader, writer));
    let status = child.wait().expect("wait for stage-serve");
    assert!(status.success(), "stage-serve must drain cleanly, got {status:?}");

    let bytes = serde_json::to_string(&snapshot).expect("reserialize snapshot");
    (bytes, text, trace)
}

fn counter(text: &str, series: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("series {series} missing from scrape:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("series {series} is not a u64: {e}"))
}

#[test]
fn snapshots_are_byte_identical_with_obs_on_and_off() {
    let scenario = generate(&GeneratorConfig::small(), SEED);
    let scenario_path =
        std::env::temp_dir().join(format!("dstage-obs-tap-{}-{SEED}.json", std::process::id()));
    std::fs::write(&scenario_path, serde_json::to_string(&scenario).expect("serialize catalog"))
        .expect("write catalog file");

    let submissions: Vec<String> = scenario
        .requests()
        .map(|(_, r)| {
            format!(
                r#"{{"verb":"submit","item":"{}","destination":{},"deadline_ms":{},"priority":{}}}"#,
                scenario.item(r.item()).name(),
                r.destination().index(),
                r.deadline().as_millis(),
                r.priority().level()
            )
        })
        .collect();
    assert!(!submissions.is_empty());

    let (snapshot_on, prom_on, trace_on) = run_script(&scenario_path, &submissions, "1");
    let (snapshot_off, prom_off, trace_off) = run_script(&scenario_path, &submissions, "0");
    let _ = std::fs::remove_file(&scenario_path);

    // The invariant: admission state is untouched by the tap.
    assert_eq!(snapshot_on, snapshot_off, "observability must be a read-only tap");

    // Tap on: the ledger reflects the script (one decision per submit,
    // each admitted or refused; one injection) and the verb histograms
    // saw every dispatch.
    let n = submissions.len() as u64;
    assert_eq!(counter(&prom_on, "dstage_service_decisions_total"), n);
    assert_eq!(
        counter(&prom_on, "dstage_service_decisions_total"),
        counter(&prom_on, "dstage_service_admitted_total")
            + counter(&prom_on, "dstage_service_refused_total"),
    );
    assert_eq!(counter(&prom_on, "dstage_service_injections_total"), 1);
    assert_eq!(
        counter(&prom_on, r#"dstage_service_verb_latency_us_count{verb="submit"}"#),
        n,
        "every submit dispatch must land in the verb histogram"
    );
    // The flight recorder kept the logical order: sequence numbers are
    // strictly increasing and the submit events are present.
    let events = trace_on.get("events").and_then(Value::as_array).expect("trace events");
    assert!(!events.is_empty(), "tap on must record flight events");
    let seqs: Vec<u64> =
        events.iter().map(|e| e.get("seq").and_then(Value::as_u64).expect("seq")).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sequence numbers must increase: {seqs:?}");
    assert!(
        events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("verb.submit")),
        "submit dispatches must appear in the flight recorder"
    );

    // Tap off: same exposition shape, but nothing recorded anywhere.
    assert_eq!(counter(&prom_off, "dstage_service_decisions_total"), 0);
    assert_eq!(counter(&prom_off, r#"dstage_service_verb_latency_us_count{verb="submit"}"#), 0);
    assert_eq!(trace_off.get("total_recorded").and_then(Value::as_u64), Some(0));
    assert_eq!(
        trace_off.get("events").and_then(Value::as_array).map(|events| events.len()),
        Some(0),
        "tap off must leave the flight recorder empty"
    );
}
