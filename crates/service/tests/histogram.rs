//! Property tests for `LatencyHistogram`: every statistic it reports
//! must agree with a naive reference computed straight from the raw
//! sample set, across random samples and quantiles — including the
//! edge quantiles (`p = 0`, `p = 1`) and the truncation-prone mean.

use dstage_service::server::{LatencyHistogram, BUCKET_BOUNDS_US};
use proptest::prelude::*;

/// The bucket bound the histogram can resolve one raw observation to:
/// the smallest configured bound at or above it, or — for observations
/// in the unbounded overflow bucket — the maximum recorded observation.
fn reference_bound(sample: u64, samples: &[u64]) -> u64 {
    BUCKET_BOUNDS_US
        .iter()
        .copied()
        .find(|&bound| sample <= bound)
        .unwrap_or_else(|| samples.iter().copied().max().expect("non-empty"))
}

/// Rank-based reference quantile over the raw samples, mirroring the
/// histogram's contract: rank `max(1, ceil(p·n))` clamped to `n`, then
/// mapped to the bucket bound that observation falls in.
fn reference_percentile(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let product = p * n as f64;
    let rank = if product >= 1.0 { (product.ceil() as u64).min(n) } else { 1 };
    reference_bound(sorted[(rank - 1) as usize], samples)
}

/// Mean of the raw samples, rounded half-up to the nearest microsecond.
fn reference_mean(samples: &[u64]) -> u64 {
    let n = samples.len() as u64;
    (samples.iter().sum::<u64>() + n / 2) / n
}

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn percentiles_match_naive_reference(
        samples in prop::collection::vec(0u64..3_000_000, 1..200),
        p_milli in 0u64..=1_000,
    ) {
        let h = histogram_of(&samples);
        let p = p_milli as f64 / 1_000.0;
        prop_assert_eq!(
            h.percentile_us(p),
            reference_percentile(&samples, p),
            "p = {} over {:?}", p, samples
        );
    }

    #[test]
    fn edge_quantiles_match_naive_reference(
        samples in prop::collection::vec(0u64..3_000_000, 1..100),
    ) {
        let h = histogram_of(&samples);
        // p = 0 clamps to rank 1 (the minimum observation's bucket).
        prop_assert_eq!(h.percentile_us(0.0), reference_percentile(&samples, 0.0));
        // p = 1 covers every observation.
        prop_assert_eq!(h.percentile_us(1.0), reference_percentile(&samples, 1.0));
        // The covering quantile of the overflow bucket is the exact max.
        let max = samples.iter().copied().max().expect("non-empty");
        if max > *BUCKET_BOUNDS_US.last().expect("non-empty bounds") {
            prop_assert_eq!(h.percentile_us(1.0), max);
        }
    }

    #[test]
    fn mean_matches_naive_rounded_reference(
        samples in prop::collection::vec(0u64..3_000_000, 1..200),
    ) {
        let h = histogram_of(&samples);
        prop_assert_eq!(h.mean_us(), reference_mean(&samples), "samples {:?}", samples);
    }

    /// Regression: `record` used an unchecked `sum_us += micros`, so a
    /// handful of huge observations (e.g. the `u64::MAX` sentinel a
    /// failed `Instant` conversion produces) wrapped the sum — panicking
    /// in debug builds and corrupting the mean in release. The sum must
    /// saturate instead, pinning the mean at a sane upper bound.
    #[test]
    fn huge_observations_saturate_instead_of_wrapping(
        samples in prop::collection::vec(0u64..3_000_000, 0..50),
        huge in prop::collection::vec((u64::MAX - 1_000_000)..=u64::MAX, 1..5),
    ) {
        let mut h = LatencyHistogram::new();
        for &s in samples.iter().chain(&huge) {
            h.record(s); // must not overflow-panic
        }
        let n = (samples.len() + huge.len()) as u64;
        prop_assert_eq!(h.count(), n);
        // The saturated sum still yields a mean within the observed range
        // and at least the naive saturating reference (which the true
        // mean would meet or exceed as well).
        let mean = h.mean_us();
        prop_assert!(mean <= u64::MAX / n + 1, "mean {} exceeds any real average", mean);
        let saturated_ref = samples
            .iter()
            .chain(&huge)
            .fold(0u64, |acc, &s| acc.saturating_add(s));
        prop_assert_eq!(mean, saturated_ref.saturating_add(n / 2) / n);
    }

    #[test]
    fn percentiles_are_monotone_in_p(
        samples in prop::collection::vec(0u64..3_000_000, 1..100),
        a_milli in 0u64..=1_000,
        b_milli in 0u64..=1_000,
    ) {
        let h = histogram_of(&samples);
        let (lo, hi) = if a_milli <= b_milli { (a_milli, b_milli) } else { (b_milli, a_milli) };
        prop_assert!(
            h.percentile_us(lo as f64 / 1_000.0) <= h.percentile_us(hi as f64 / 1_000.0)
        );
    }
}
