//! Bounded flight recorder: a ring of recent structured events keyed by
//! logical sequence numbers.
//!
//! Events are recorded at coarse boundaries only (service verb
//! dispatches, sweep work units) — per-iteration hot loops use the
//! counters in [`crate::metrics`] instead, so the ring's mutex never
//! sits on a tight loop. Sequence numbers are logical (assigned under
//! the ring lock); the wall-clock duration riding on each event is
//! diagnostic payload and never flows into determinism-checked output.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How many events the ring retains before dropping the oldest.
pub const RING_CAPACITY: usize = 1024;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical sequence number, monotone from 0 per process (survives
    /// ring eviction — later events keep counting).
    pub seq: u64,
    /// Instrumented layer: `service`, `resources`, `path`, or `sim`.
    pub layer: &'static str,
    /// Event name within the layer (e.g. `verb.submit`, `work_unit`).
    pub name: &'static str,
    /// Event-specific magnitude (request id, unit index, ...).
    pub value: u64,
    /// Wall-clock duration of the recorded operation, microseconds.
    /// Diagnostic only — never compared across runs.
    pub wall_us: u64,
}

struct Ring {
    next_seq: u64,
    events: VecDeque<Event>,
}

static RING: Mutex<Ring> = Mutex::new(Ring { next_seq: 0, events: VecDeque::new() });

/// Appends an event to the ring, evicting the oldest entry once
/// [`RING_CAPACITY`] is reached. No-op while the tap is disabled.
pub fn record(layer: &'static str, name: &'static str, value: u64, wall_us: u64) {
    if !crate::enabled() {
        return;
    }
    let mut ring = RING.lock().expect("flight recorder lock");
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.events.len() == RING_CAPACITY {
        ring.events.pop_front();
    }
    ring.events.push_back(Event { seq, layer, name, value, wall_us });
}

/// The most recent `limit` events, oldest first. `limit` of zero returns
/// an empty window; anything above the ring size returns the whole ring.
#[must_use]
pub fn recent(limit: usize) -> Vec<Event> {
    let ring = RING.lock().expect("flight recorder lock");
    let skip = ring.events.len().saturating_sub(limit);
    ring.events.iter().skip(skip).cloned().collect()
}

/// Total events recorded since process start (including evicted ones).
#[must_use]
pub fn total_recorded() -> u64 {
    RING.lock().expect("flight recorder lock").next_seq
}

/// Empties the ring and rewinds the sequence counter (test/profile
/// isolation only).
pub fn clear() {
    let mut ring = RING.lock().expect("flight recorder lock");
    ring.next_seq = 0;
    ring.events.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "tap")]
    #[test]
    fn ring_keeps_most_recent_and_sequences_logically() {
        crate::set_enabled(true);
        clear();
        for i in 0..(RING_CAPACITY as u64 + 8) {
            record("sim", "work_unit", i, 0);
        }
        assert_eq!(total_recorded(), RING_CAPACITY as u64 + 8);
        let window = recent(4);
        assert_eq!(window.len(), 4);
        assert_eq!(window[0].seq, RING_CAPACITY as u64 + 4);
        assert_eq!(window[3].seq, RING_CAPACITY as u64 + 7);
        assert_eq!(window[3].value, RING_CAPACITY as u64 + 7);
        // Oldest entries were evicted but the ring is still full.
        assert_eq!(recent(usize::MAX).len(), RING_CAPACITY);
        assert_eq!(recent(0).len(), 0);
        clear();
        assert_eq!(total_recorded(), 0);
    }

    #[test]
    fn disabled_tap_records_no_events() {
        crate::set_enabled(false);
        clear();
        record("service", "verb.submit", 1, 10);
        assert_eq!(total_recorded(), 0);
        crate::set_enabled(true);
    }
}
