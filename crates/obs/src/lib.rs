//! Deterministic observability for the data-staging system.
//!
//! The crate is a *read-only tap*: instrumented code reports what it did
//! (counters, gauges, histograms, flight-recorder events) and nothing in
//! the system ever reads that state back to make a decision. Sweep
//! reports and service snapshots are therefore byte-identical whether the
//! tap is enabled, disabled at runtime, or compiled out entirely — the
//! invariant the `obs_readonly_tap` integration tests pin down.
//!
//! Three design rules keep the tap cheap and deterministic:
//!
//! 1. **Zero dependencies.** Only `std::sync::atomic` and one `Mutex`
//!    (around the flight-recorder ring). Hot paths batch their counts
//!    locally and publish with a single relaxed `fetch_add`.
//! 2. **Static inventory.** Every metric is a `static` declared in
//!    [`metrics`]; there is no registration step, no hashing, and the
//!    Prometheus exposition renders the fixed table in declaration order,
//!    so equal states render byte-identically.
//! 3. **Logical sequencing.** Flight-recorder events are keyed by a
//!    logical sequence number assigned under the ring lock. Wall-clock
//!    durations are *recorded* (they are the point of a profile) but
//!    never flow into any determinism-checked output.
//!
//! Runtime control: the tap starts enabled unless the `DSTAGE_OBS`
//! environment variable is `0`/`off`/`false`/`no`; [`set_enabled`]
//! overrides either way. Compile-time control: building `dstage-obs`
//! without the default `tap` feature turns every record call into a
//! no-op with the API unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instruments;
pub mod metrics;
pub mod recorder;

pub use instruments::{Counter, Gauge, Histogram, HistogramSnapshot};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state runtime switch: 0 = not yet resolved from the environment,
/// 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the tap records anything right now.
///
/// First call resolves the `DSTAGE_OBS` environment variable (default:
/// enabled); later calls are a single relaxed atomic load. Always `false`
/// when the `tap` feature is compiled out.
#[must_use]
pub fn enabled() -> bool {
    if cfg!(not(feature = "tap")) {
        return false;
    }
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("DSTAGE_OBS")
                .map_or(true, |v| !matches!(v.trim(), "0" | "off" | "false" | "no"));
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns the tap on or off at runtime, overriding `DSTAGE_OBS`.
///
/// Process-global: the byte-identity tests flip this around whole runs,
/// never mid-measurement.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Clears every metric and the flight recorder (sequence numbers
/// included). Test and profile isolation only — production code never
/// resets the tap.
pub fn reset() {
    metrics::reset_all();
    recorder::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_toggle_round_trips() {
        set_enabled(true);
        assert!(enabled() == cfg!(feature = "tap"));
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
