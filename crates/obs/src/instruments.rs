//! The three metric primitives: counter, gauge, fixed-bucket histogram.
//!
//! All are const-constructible so the inventory in [`crate::metrics`] can
//! be plain `static`s, and all writes are relaxed atomics — the tap never
//! orders anything, it only tallies.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Hot loops count locally and publish once through this.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() && n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test/profile isolation).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A value that can move both ways (queue depths, in-flight counts).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test/profile isolation).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Most buckets a [`Histogram`] can have (bounds plus the overflow
/// bucket).
pub const MAX_BUCKETS: usize = 16;

/// A fixed-bucket histogram over `u64` observations (microseconds,
/// iteration counts, ...). Bucket bounds are upper-inclusive and a final
/// unbounded bucket catches everything above the last bound, matching
/// Prometheus `le` semantics.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (strictly increasing, at
    /// most [`MAX_BUCKETS`]` - 1` entries).
    #[must_use]
    pub const fn new(bounds: &'static [u64]) -> Self {
        assert!(bounds.len() < MAX_BUCKETS, "too many histogram bounds");
        Histogram {
            bounds,
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let bucket =
            self.bounds.iter().position(|&bound| value <= bound).unwrap_or(self.bounds.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The configured bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: (0..=self.bounds.len())
                .map(|i| self.buckets[i].load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket and tally to zero (test/profile isolation).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds.
    pub bounds: &'static [u64],
    /// Per-bucket counts; one more entry than `bounds` (the overflow
    /// bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation rounded to the nearest integer (half up); zero
    /// when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        (self.sum + self.count / 2).checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        crate::set_enabled(true);
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0); // no-op, not a fetch_add of zero spam
        assert_eq!(c.get(), if cfg!(feature = "tap") { 5 } else { 0 });
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(-3);
        assert_eq!(g.get(), if cfg!(feature = "tap") { -3 } else { 0 });
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[cfg(feature = "tap")]
    #[test]
    fn histogram_buckets_observations() {
        crate::set_enabled(true);
        static BOUNDS: [u64; 3] = [10, 100, 1_000];
        let h = Histogram::new(&BOUNDS);
        for v in [5, 10, 11, 5_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![2, 1, 0, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 5_026);
        assert_eq!(snap.max, 5_000);
        assert_eq!(snap.mean(), 1_257); // 5026/4 = 1256.5 rounds half up
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[cfg(feature = "tap")]
    #[test]
    fn disabled_tap_records_nothing() {
        crate::set_enabled(false);
        let c = Counter::new();
        c.inc();
        static BOUNDS: [u64; 1] = [10];
        let h = Histogram::new(&BOUNDS);
        h.record(7);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }
}
