//! The fixed metric inventory and its Prometheus text exposition.
//!
//! Every metric the system records is a `static` here, grouped by the
//! four instrumented layers (`service`, `resources`, `path`, `sim`).
//! Instrumented crates increment the statics directly — no registration,
//! no lookup, no allocation on the hot path. [`render_prometheus`]
//! renders the whole table in declaration order, so equal states always
//! produce byte-identical exposition text.

use crate::instruments::{Counter, Gauge, Histogram};

/// Upper bucket bounds shared by every latency/wall-time histogram, in
/// microseconds (mirrors the service's submit-latency buckets).
pub const LATENCY_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

// --- service layer (admission engine + daemon dispatch) ---------------

/// Admission decisions made (one per non-deduplicated submission).
pub static SERVICE_DECISIONS: Counter = Counter::new();
/// Submissions admitted.
pub static SERVICE_ADMITTED: Counter = Counter::new();
/// Submissions refused.
pub static SERVICE_REFUSED: Counter = Counter::new();
/// Point-to-multipoint submission groups processed (each group also
/// counts one decision per destination).
pub static SERVICE_P2MP_GROUPS: Counter = Counter::new();
/// Disturbance injections processed.
pub static SERVICE_INJECTIONS: Counter = Counter::new();
/// Requests displaced by disturbances (before repair triage).
pub static SERVICE_DISPLACED: Counter = Counter::new();
/// Displaced requests re-admitted on a surviving route.
pub static SERVICE_REPAIRS: Counter = Counter::new();
/// Displaced requests no surviving route could satisfy.
pub static SERVICE_EVICTIONS: Counter = Counter::new();
/// Depth of the displaced queue at the most recent repair.
pub static SERVICE_DISPLACED_DEPTH: Gauge = Gauge::new();
/// Wall latency of `submit` dispatches.
pub static SERVICE_VERB_SUBMIT_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Wall latency of `query` dispatches.
pub static SERVICE_VERB_QUERY_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Wall latency of `inject` dispatches.
pub static SERVICE_VERB_INJECT_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Wall latency of `snapshot` dispatches.
pub static SERVICE_VERB_SNAPSHOT_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Wall latency of `metrics` and `trace` dispatches.
pub static SERVICE_VERB_METRICS_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Wall latency of `optimize` dispatches.
pub static SERVICE_VERB_OPTIMIZE_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Evict-and-readmit swaps attempted by the optimizer.
pub static SERVICE_OPT_SWAP_ATTEMPTS: Counter = Counter::new();
/// Optimizer swaps that improved `E[S]` and were kept.
pub static SERVICE_OPT_SWAPS_ACCEPTED: Counter = Counter::new();
/// Deadline slack at admission (`deadline − ETA`), milliseconds. Wide
/// buckets: scenarios span minutes to days.
pub static SERVICE_ADMIT_SLACK_MS: Histogram = Histogram::new(&SLACK_BOUNDS_MS);
/// Admission epochs committed by the batcher (singletons included).
pub static SERVICE_BATCHES: Counter = Counter::new();
/// Submissions per committed admission epoch.
pub static SERVICE_BATCH_SIZE: Histogram = Histogram::new(&BATCH_SIZE_BOUNDS);
/// Speculative decisions re-decided sequentially after a commit-time
/// conflict (same-item, footprint, or horizon guard).
pub static SERVICE_CONFLICT_RETRIES: Counter = Counter::new();
/// Whole epochs demoted to the sequential path because an exclusive
/// operation interleaved between snapshot and commit.
pub static SERVICE_BATCH_FALLBACKS: Counter = Counter::new();
/// Commit-time footprint collisions attributed to ledger shard stripes
/// (shard index modulo the stripe count).
pub static SERVICE_SHARD_CONTENTION: [Counter; 8] = [
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
];
/// Records appended to the write-ahead decision log.
pub static SERVICE_WAL_APPENDS: Counter = Counter::new();
/// Bytes appended to the write-ahead decision log (frame headers
/// included).
pub static SERVICE_WAL_BYTES: Counter = Counter::new();
/// fsync (fdatasync) calls issued against the write-ahead log.
pub static SERVICE_WAL_FSYNCS: Counter = Counter::new();
/// Wall time of each WAL fsync.
pub static SERVICE_WAL_FSYNC_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Checkpoints written (manual `checkpoint` verb + periodic triggers).
pub static SERVICE_CHECKPOINTS: Counter = Counter::new();
/// Decision-log records replayed from the WAL during recovery.
pub static SERVICE_RECOVERY_REPLAYED: Counter = Counter::new();
/// Torn or corrupt WAL records truncated during recovery.
pub static SERVICE_RECOVERY_TRUNCATED: Counter = Counter::new();
/// Wall time of each recovery (checkpoint load + WAL replay).
pub static SERVICE_RECOVERY_WALL_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);

/// Upper bucket bounds for the epoch-size histogram.
pub const BATCH_SIZE_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Upper bucket bounds for the admission-slack histogram, milliseconds
/// (1 s up to 24 h).
pub const SLACK_BOUNDS_MS: [u64; 10] =
    [1_000, 5_000, 15_000, 60_000, 300_000, 900_000, 3_600_000, 14_400_000, 43_200_000, 86_400_000];

// --- resources layer (ledger, busy intervals, capacity timelines) -----

/// Reservation probes (`NetworkLedger::earliest_transfer` calls).
pub static RESOURCES_PROBES: Counter = Counter::new();
/// Probe restarts forced by storage contention (the probe loop re-seeding
/// the link gap search at a later storage-feasible start).
pub static RESOURCES_PROBE_RESTARTS: Counter = Counter::new();
/// Gap-search loop iterations (`BusyIntervals::earliest_gap`).
pub static RESOURCES_GAP_ITERATIONS: Counter = Counter::new();
/// Capacity-peak scans (`CapacityTimeline::peak_usage` calls).
pub static RESOURCES_PEAK_SCANS: Counter = Counter::new();
/// Transfers committed into the ledger.
pub static RESOURCES_COMMITS: Counter = Counter::new();

// --- path layer (earliest-arrival Dijkstra) ---------------------------

/// Earliest-arrival trees computed (from scratch or by repair).
pub static PATH_TREES: Counter = Counter::new();
/// Edge relaxations issued as ledger probes (one `earliest_transfer` call
/// each; always equals `dstage_resources_probes_total` for pure-path
/// workloads).
pub static PATH_RELAXATIONS: Counter = Counter::new();
/// Outgoing edges considered by the search, including every edge the
/// label or lower-bound prunes discarded before probing.
pub static PATH_EDGE_SCANS: Counter = Counter::new();
/// Edges discarded by the static lower bound (unloaded-network crossing
/// time) before any ledger probe.
pub static PATH_LB_PRUNES: Counter = Counter::new();
/// Queue pushes (sources plus label improvements).
pub static PATH_HEAP_PUSHES: Counter = Counter::new();
/// Stale queue entries popped and skipped.
pub static PATH_STALE_POPS: Counter = Counter::new();
/// Trees produced by incremental repair instead of a from-scratch run
/// (a subset of `dstage_path_trees_total`).
pub static PATH_TREE_REPAIRS: Counter = Counter::new();
/// Queue seeds fed into repair runs (frontier machines plus re-seeded
/// sources).
pub static PATH_REPAIR_SEEDS: Counter = Counter::new();
/// Trees computed with the horizon-bucketed queue backend (the rest used
/// the binary-heap fallback).
pub static PATH_BUCKET_TREES: Counter = Counter::new();
/// Empty buckets the bucket queue's cursor swept past.
pub static PATH_BUCKET_ADVANCES: Counter = Counter::new();

// --- sim layer (sweep executor) ---------------------------------------

/// Work units executed by the sweep pool.
pub static SIM_WORK_UNITS: Counter = Counter::new();
/// Per-work-unit wall time.
pub static SIM_WORK_UNIT_WALL_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);
/// Time a work unit waited in the pool queue before a worker picked it
/// up.
pub static SIM_QUEUE_WAIT_US: Histogram = Histogram::new(&LATENCY_BOUNDS_US);

/// What kind of instrument a [`MetricDef`] points at.
#[derive(Debug, Clone, Copy)]
pub enum MetricKind {
    /// A monotone counter.
    Counter(&'static Counter),
    /// A point-in-time gauge.
    Gauge(&'static Gauge),
    /// A fixed-bucket histogram.
    Histogram(&'static Histogram),
}

/// One row of the metric inventory.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus family name (series sharing a family share the name and
    /// differ by `label`).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Instrumented layer: `service`, `resources`, `path`, or `sim`.
    pub layer: &'static str,
    /// Optional `key="value"` label distinguishing series in a family.
    pub label: Option<(&'static str, &'static str)>,
    /// The instrument backing the row.
    pub kind: MetricKind,
}

/// The complete inventory, in exposition order.
#[must_use]
pub fn registry() -> &'static [MetricDef] {
    use MetricKind::{Counter, Gauge, Histogram};
    static REGISTRY: &[MetricDef] = &[
        MetricDef {
            name: "dstage_service_decisions_total",
            help: "Admission decisions made (admitted + refused)",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_DECISIONS),
        },
        MetricDef {
            name: "dstage_service_admitted_total",
            help: "Submissions admitted",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_ADMITTED),
        },
        MetricDef {
            name: "dstage_service_refused_total",
            help: "Submissions refused",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_REFUSED),
        },
        MetricDef {
            name: "dstage_service_p2mp_groups_total",
            help: "Point-to-multipoint submission groups processed",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_P2MP_GROUPS),
        },
        MetricDef {
            name: "dstage_service_injections_total",
            help: "Disturbance injections processed",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_INJECTIONS),
        },
        MetricDef {
            name: "dstage_service_displaced_total",
            help: "Requests displaced by disturbances (repairs + evictions)",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_DISPLACED),
        },
        MetricDef {
            name: "dstage_service_repairs_total",
            help: "Displaced requests re-admitted on a surviving route",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_REPAIRS),
        },
        MetricDef {
            name: "dstage_service_evictions_total",
            help: "Displaced requests with no surviving route",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_EVICTIONS),
        },
        MetricDef {
            name: "dstage_service_displaced_queue_depth",
            help: "Depth of the displaced queue at the most recent repair",
            layer: "service",
            label: None,
            kind: Gauge(&SERVICE_DISPLACED_DEPTH),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "submit")),
            kind: Histogram(&SERVICE_VERB_SUBMIT_US),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "query")),
            kind: Histogram(&SERVICE_VERB_QUERY_US),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "inject")),
            kind: Histogram(&SERVICE_VERB_INJECT_US),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "snapshot")),
            kind: Histogram(&SERVICE_VERB_SNAPSHOT_US),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "metrics")),
            kind: Histogram(&SERVICE_VERB_METRICS_US),
        },
        MetricDef {
            name: "dstage_service_verb_latency_us",
            help: "Wall latency of request dispatch by verb, microseconds",
            layer: "service",
            label: Some(("verb", "optimize")),
            kind: Histogram(&SERVICE_VERB_OPTIMIZE_US),
        },
        MetricDef {
            name: "dstage_service_opt_swap_attempts_total",
            help: "Evict-and-readmit swaps attempted by the optimizer",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_OPT_SWAP_ATTEMPTS),
        },
        MetricDef {
            name: "dstage_service_opt_swaps_accepted_total",
            help: "Optimizer swaps that improved E[S] and were kept",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_OPT_SWAPS_ACCEPTED),
        },
        MetricDef {
            name: "dstage_service_admit_slack_ms",
            help: "Deadline slack at admission (deadline minus ETA), milliseconds",
            layer: "service",
            label: None,
            kind: Histogram(&SERVICE_ADMIT_SLACK_MS),
        },
        MetricDef {
            name: "dstage_service_batches_total",
            help: "Admission epochs committed by the batcher",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_BATCHES),
        },
        MetricDef {
            name: "dstage_service_batch_size",
            help: "Submissions per committed admission epoch",
            layer: "service",
            label: None,
            kind: Histogram(&SERVICE_BATCH_SIZE),
        },
        MetricDef {
            name: "dstage_service_conflict_retries_total",
            help: "Speculative decisions re-decided after a commit-time conflict",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_CONFLICT_RETRIES),
        },
        MetricDef {
            name: "dstage_service_batch_fallbacks_total",
            help: "Epochs demoted to sequential decision by an interleaved exclusive op",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_BATCH_FALLBACKS),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s0")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[0]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s1")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[1]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s2")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[2]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s3")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[3]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s4")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[4]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s5")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[5]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s6")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[6]),
        },
        MetricDef {
            name: "dstage_service_shard_contention_total",
            help: "Commit-time footprint collisions per ledger shard stripe",
            layer: "service",
            label: Some(("shard", "s7")),
            kind: Counter(&SERVICE_SHARD_CONTENTION[7]),
        },
        MetricDef {
            name: "dstage_service_wal_appends_total",
            help: "Records appended to the write-ahead decision log",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_WAL_APPENDS),
        },
        MetricDef {
            name: "dstage_service_wal_bytes_total",
            help: "Bytes appended to the write-ahead decision log",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_WAL_BYTES),
        },
        MetricDef {
            name: "dstage_service_wal_fsyncs_total",
            help: "fsync calls issued against the write-ahead log",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_WAL_FSYNCS),
        },
        MetricDef {
            name: "dstage_service_wal_fsync_us",
            help: "Wall time of each WAL fsync, microseconds",
            layer: "service",
            label: None,
            kind: Histogram(&SERVICE_WAL_FSYNC_US),
        },
        MetricDef {
            name: "dstage_service_checkpoints_total",
            help: "Engine checkpoints written (manual and periodic)",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_CHECKPOINTS),
        },
        MetricDef {
            name: "dstage_service_recovery_replayed_total",
            help: "Decision-log records replayed from the WAL during recovery",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_RECOVERY_REPLAYED),
        },
        MetricDef {
            name: "dstage_service_recovery_truncated_total",
            help: "Torn or corrupt WAL records truncated during recovery",
            layer: "service",
            label: None,
            kind: Counter(&SERVICE_RECOVERY_TRUNCATED),
        },
        MetricDef {
            name: "dstage_service_recovery_wall_us",
            help: "Wall time of each recovery (checkpoint load + WAL replay), microseconds",
            layer: "service",
            label: None,
            kind: Histogram(&SERVICE_RECOVERY_WALL_US),
        },
        MetricDef {
            name: "dstage_resources_probes_total",
            help: "Reservation probes (earliest_transfer calls)",
            layer: "resources",
            label: None,
            kind: Counter(&RESOURCES_PROBES),
        },
        MetricDef {
            name: "dstage_resources_probe_restarts_total",
            help: "Probe restarts forced by storage contention",
            layer: "resources",
            label: None,
            kind: Counter(&RESOURCES_PROBE_RESTARTS),
        },
        MetricDef {
            name: "dstage_resources_gap_iterations_total",
            help: "Gap-search loop iterations (earliest_gap)",
            layer: "resources",
            label: None,
            kind: Counter(&RESOURCES_GAP_ITERATIONS),
        },
        MetricDef {
            name: "dstage_resources_peak_scans_total",
            help: "Capacity-peak scans (peak_usage calls)",
            layer: "resources",
            label: None,
            kind: Counter(&RESOURCES_PEAK_SCANS),
        },
        MetricDef {
            name: "dstage_resources_commits_total",
            help: "Transfers committed into the ledger",
            layer: "resources",
            label: None,
            kind: Counter(&RESOURCES_COMMITS),
        },
        MetricDef {
            name: "dstage_path_trees_total",
            help: "Earliest-arrival trees computed",
            layer: "path",
            label: None,
            kind: Counter(&PATH_TREES),
        },
        MetricDef {
            name: "dstage_path_relaxations_total",
            help: "Edge relaxations issued as ledger probes",
            layer: "path",
            label: None,
            kind: Counter(&PATH_RELAXATIONS),
        },
        MetricDef {
            name: "dstage_path_edge_scans_total",
            help: "Outgoing edges considered, including pruned ones",
            layer: "path",
            label: None,
            kind: Counter(&PATH_EDGE_SCANS),
        },
        MetricDef {
            name: "dstage_path_lb_prunes_total",
            help: "Edges discarded by the static lower bound before probing",
            layer: "path",
            label: None,
            kind: Counter(&PATH_LB_PRUNES),
        },
        MetricDef {
            name: "dstage_path_heap_pushes_total",
            help: "Queue pushes (sources plus label improvements)",
            layer: "path",
            label: None,
            kind: Counter(&PATH_HEAP_PUSHES),
        },
        MetricDef {
            name: "dstage_path_stale_pops_total",
            help: "Stale queue entries popped and skipped",
            layer: "path",
            label: None,
            kind: Counter(&PATH_STALE_POPS),
        },
        MetricDef {
            name: "dstage_path_tree_repairs_total",
            help: "Trees produced by incremental repair",
            layer: "path",
            label: None,
            kind: Counter(&PATH_TREE_REPAIRS),
        },
        MetricDef {
            name: "dstage_path_repair_seeds_total",
            help: "Queue seeds fed into repair runs",
            layer: "path",
            label: None,
            kind: Counter(&PATH_REPAIR_SEEDS),
        },
        MetricDef {
            name: "dstage_path_bucket_trees_total",
            help: "Trees computed with the bucket-queue backend",
            layer: "path",
            label: None,
            kind: Counter(&PATH_BUCKET_TREES),
        },
        MetricDef {
            name: "dstage_path_bucket_advances_total",
            help: "Empty buckets swept past by the bucket-queue cursor",
            layer: "path",
            label: None,
            kind: Counter(&PATH_BUCKET_ADVANCES),
        },
        MetricDef {
            name: "dstage_sim_work_units_total",
            help: "Sweep work units executed",
            layer: "sim",
            label: None,
            kind: Counter(&SIM_WORK_UNITS),
        },
        MetricDef {
            name: "dstage_sim_work_unit_wall_us",
            help: "Per-work-unit wall time, microseconds",
            layer: "sim",
            label: None,
            kind: Histogram(&SIM_WORK_UNIT_WALL_US),
        },
        MetricDef {
            name: "dstage_sim_queue_wait_us",
            help: "Pool queue wait before a worker picked the unit up, microseconds",
            layer: "sim",
            label: None,
            kind: Histogram(&SIM_QUEUE_WAIT_US),
        },
    ];
    REGISTRY
}

/// Zeroes every instrument in the inventory (test/profile isolation).
pub fn reset_all() {
    for def in registry() {
        match def.kind {
            MetricKind::Counter(c) => c.reset(),
            MetricKind::Gauge(g) => g.reset(),
            MetricKind::Histogram(h) => h.reset(),
        }
    }
}

/// Renders the inventory as Prometheus text exposition (format 0.0.4).
///
/// `# HELP`/`# TYPE` headers are emitted once per family; series render
/// in declaration order, so equal instrument states yield byte-identical
/// text.
#[must_use]
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(4096);
    let mut last_family = "";
    for def in registry() {
        if def.name != last_family {
            let kind = match def.kind {
                MetricKind::Counter(_) => "counter",
                MetricKind::Gauge(_) => "gauge",
                MetricKind::Histogram(_) => "histogram",
            };
            out.push_str(&format!(
                "# HELP {} {}\n# TYPE {} {}\n",
                def.name, def.help, def.name, kind
            ));
            last_family = def.name;
        }
        let label = |extra: Option<(&str, String)>| -> String {
            let mut parts = Vec::new();
            if let Some((k, v)) = def.label {
                parts.push(format!("{k}=\"{v}\""));
            }
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        match def.kind {
            MetricKind::Counter(c) => {
                out.push_str(&format!("{}{} {}\n", def.name, label(None), c.get()));
            }
            MetricKind::Gauge(g) => {
                out.push_str(&format!("{}{} {}\n", def.name, label(None), g.get()));
            }
            MetricKind::Histogram(h) => {
                let snap = h.snapshot();
                let mut cumulative = 0u64;
                for (i, &count) in snap.buckets.iter().enumerate() {
                    cumulative += count;
                    let le =
                        snap.bounds.get(i).map_or_else(|| "+Inf".to_string(), ToString::to_string);
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        def.name,
                        label(Some(("le", le))),
                        cumulative
                    ));
                }
                out.push_str(&format!("{}_sum{} {}\n", def.name, label(None), snap.sum));
                out.push_str(&format!("{}_count{} {}\n", def.name, label(None), snap.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_spans_four_layers_with_enough_series() {
        let defs = registry();
        let layers: BTreeSet<&str> = defs.iter().map(|d| d.layer).collect();
        assert_eq!(
            layers.into_iter().collect::<Vec<_>>(),
            vec!["path", "resources", "service", "sim"]
        );
        // Distinct series = (family, label) pairs; the acceptance bar is
        // at least 12 across all four layers.
        let series: BTreeSet<(&str, Option<(&str, &str)>)> =
            defs.iter().map(|d| (d.name, d.label)).collect();
        assert!(series.len() >= 12, "only {} series", series.len());
        assert_eq!(series.len(), defs.len(), "duplicate (family, label) rows");
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_well_formed() {
        let a = render_prometheus();
        let b = render_prometheus();
        assert_eq!(a, b);
        assert!(a.contains("# TYPE dstage_service_decisions_total counter"));
        assert!(a.contains("# TYPE dstage_service_verb_latency_us histogram"));
        assert!(a.contains("dstage_service_verb_latency_us_bucket{verb=\"submit\",le=\"50\"}"));
        assert!(a.contains("dstage_sim_work_unit_wall_us_bucket{le=\"+Inf\"}"));
        assert!(a.contains("dstage_path_heap_pushes_total"));
        assert!(a.contains("dstage_resources_gap_iterations_total"));
        // HELP/TYPE emitted once per family, not once per labeled series.
        assert_eq!(a.matches("# TYPE dstage_service_verb_latency_us histogram").count(), 1);
    }

    #[cfg(feature = "tap")]
    #[test]
    fn histogram_buckets_render_cumulatively() {
        crate::set_enabled(true);
        SIM_QUEUE_WAIT_US.reset();
        SIM_QUEUE_WAIT_US.record(10);
        SIM_QUEUE_WAIT_US.record(60);
        let text = render_prometheus();
        assert!(text.contains("dstage_sim_queue_wait_us_bucket{le=\"50\"} 1"));
        assert!(text.contains("dstage_sim_queue_wait_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("dstage_sim_queue_wait_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("dstage_sim_queue_wait_us_count 2"));
        SIM_QUEUE_WAIT_US.reset();
    }
}
