//! Property-based tests for the online simulator: random disturbance
//! mixes over small scenarios must preserve the core invariants.

use dstage_core::schedule::Transfer;
use dstage_dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
use dstage_model::time::SimTime;
use dstage_workload::small::{contended_link, fan_out, two_hop_chain};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum WhichScenario {
    Chain,
    Contended,
    FanOut,
}

fn scenario_for(which: WhichScenario) -> dstage_model::scenario::Scenario {
    match which {
        WhichScenario::Chain => two_hop_chain(),
        WhichScenario::Contended => contended_link(),
        WhichScenario::FanOut => fan_out(),
    }
}

fn which_strategy() -> impl Strategy<Value = WhichScenario> {
    prop_oneof![
        Just(WhichScenario::Chain),
        Just(WhichScenario::Contended),
        Just(WhichScenario::FanOut),
    ]
}

/// Random events with ids clamped into the scenario's ranges.
fn events_for(
    scenario: &dstage_model::scenario::Scenario,
    raw: &[(u64, u8, usize, usize)],
) -> EventLog {
    let mut released = vec![false; scenario.request_count()];
    let mut events = Vec::new();
    for &(at_s, kind, a, b) in raw {
        let at = SimTime::from_secs(at_s % 3_600);
        match kind % 3 {
            0 if scenario.request_count() > 0 => {
                let r = RequestId::new((a % scenario.request_count()) as u32);
                if !released[r.index()] {
                    released[r.index()] = true;
                    events.push(Event::new(at, EventKind::Release(r)));
                }
            }
            1 if scenario.network().link_count() > 0 => {
                let l = VirtualLinkId::new((a % scenario.network().link_count()) as u32);
                events.push(Event::new(at, EventKind::LinkOutage(l)));
            }
            2 if scenario.item_count() > 0 => {
                let item = DataItemId::new((a % scenario.item_count()) as u32);
                let machine = MachineId::new((b % scenario.network().machine_count()) as u32);
                events.push(Event::new(at, EventKind::CopyLoss { item, machine }));
            }
            _ => {}
        }
    }
    EventLog::new(scenario, events).expect("ids clamped into range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executed_schedules_always_replay(
        which in which_strategy(),
        raw in prop::collection::vec((0u64..3_600, 0u8..3, 0usize..64, 0usize..64), 0..10),
    ) {
        let scenario = scenario_for(which);
        let log = events_for(&scenario, &raw);
        let outcome = simulate(&scenario, &log, &OnlinePolicy::paper_best());
        // Every executed transfer respects the model on the original
        // network (outages only removed capacity).
        outcome.executed.validate(&scenario).expect("executed schedule must replay");
    }

    #[test]
    fn cancelled_and_executed_partition_commits(
        which in which_strategy(),
        raw in prop::collection::vec((0u64..3_600, 0u8..3, 0usize..64, 0usize..64), 0..10),
    ) {
        let scenario = scenario_for(which);
        let log = events_for(&scenario, &raw);
        let outcome = simulate(&scenario, &log, &OnlinePolicy::paper_best());
        let executed: Vec<&Transfer> = outcome.executed.transfers().iter().collect();
        for c in &outcome.cancelled {
            prop_assert!(!executed.contains(&c), "transfer in both sets: {c:?}");
        }
        // No duplicate executed transfers.
        for (i, a) in executed.iter().enumerate() {
            for b in &executed[i + 1..] {
                prop_assert_ne!(*a, *b, "duplicate executed transfer");
            }
        }
    }

    #[test]
    fn replans_equal_boundaries(
        which in which_strategy(),
        raw in prop::collection::vec((0u64..3_600, 0u8..3, 0usize..64, 0usize..64), 0..10),
    ) {
        let scenario = scenario_for(which);
        let log = events_for(&scenario, &raw);
        let outcome = simulate(&scenario, &log, &OnlinePolicy::paper_best());
        let mut expected = 1 + log.boundaries().len() as u64;
        if log.boundaries().first() == Some(&SimTime::ZERO) {
            expected -= 1; // time-0 events merge into the initial plan
        }
        prop_assert_eq!(outcome.replans, expected);
    }

    #[test]
    fn deliveries_meet_deadlines_and_are_unique(
        which in which_strategy(),
        raw in prop::collection::vec((0u64..3_600, 0u8..3, 0usize..64, 0usize..64), 0..10),
    ) {
        let scenario = scenario_for(which);
        let log = events_for(&scenario, &raw);
        let outcome = simulate(&scenario, &log, &OnlinePolicy::paper_best());
        let mut seen = std::collections::HashSet::new();
        for d in outcome.executed.deliveries() {
            let req = scenario.request(d.request);
            prop_assert!(d.at <= req.deadline());
            prop_assert!(seen.insert(d.request), "request delivered twice");
        }
    }
}
