//! Online (dynamic) data staging.
//!
//! The ICDCS 2000 paper solves the *static* data staging problem and
//! names the dynamic version — ad-hoc requests, changing link
//! availability, lost copies — as the motivating next step (§1, §6).
//! This crate builds that layer on top of the static heuristics: a
//! rolling-horizon simulator that re-plans with a chosen
//! heuristic/cost-criterion pairing at every disturbance, executing only
//! the plan prefix that precedes the next event.
//!
//! It also operationalizes two design rationales the paper states but
//! cannot exercise in the static setting:
//!
//! * partial paths left in place after their request becomes
//!   unsatisfiable may pay off "in a dynamic situation" (§4.5) — staged
//!   copies from cancelled plans are reused by later re-plans;
//! * intermediate copies retained for γ after the latest deadline provide
//!   fault tolerance "in cases when ... a destination loses its copy of
//!   the data" (§4.4) — a destination copy loss is healed from a retained
//!   intermediate copy when one exists.
//!
//! # Examples
//!
//! ```
//! use dstage_dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
//! use dstage_model::ids::RequestId;
//! use dstage_model::time::SimTime;
//! use dstage_workload::small::two_hop_chain;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = two_hop_chain();
//! // Request 1 is an ad-hoc request arriving two minutes in.
//! let events = EventLog::new(&scenario, vec![
//!     Event::new(SimTime::from_mins(2), EventKind::Release(RequestId::new(1))),
//! ])?;
//! let outcome = simulate(&scenario, &events, &OnlinePolicy::paper_best());
//! assert!(outcome.executed.delivery_of(RequestId::new(1)).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod repair;
pub mod simulate;

pub use event::{Event, EventError, EventKind, EventLog};
pub use repair::{filter_consistent, final_deliveries, replay_state, Loss, Outage};
pub use simulate::{simulate, OnlineOutcome, OnlinePolicy};
