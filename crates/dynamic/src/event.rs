//! Events of an online data staging run.
//!
//! The paper's static formulation assumes "all parameter values ... stay
//! fixed throughout the scheduling process" and names the dynamic
//! extension — ad-hoc requests, changing link availability, lost copies —
//! as the next step (§1, §6). This module models those three disturbance
//! kinds; [`crate::simulate()`] replays them against a re-planning scheduler.

use serde::{Deserialize, Serialize};

use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;

/// What happens at an event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A request becomes known to the scheduler (an ad-hoc request).
    /// Requests without a release event are known from time 0.
    Release(RequestId),
    /// A virtual link goes down for the remainder of its window; any
    /// transfer still in flight on it is lost.
    LinkOutage(VirtualLinkId),
    /// The copy of an item held at a machine is lost (crash, storage
    /// fault). In-progress and future transfers sourced from that copy
    /// fail; requests delivered by it and still before their deadline
    /// become pending again.
    CopyLoss {
        /// The item whose copy vanishes.
        item: DataItemId,
        /// The machine losing it.
        machine: MachineId,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// When the event takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    #[must_use]
    pub fn new(at: SimTime, kind: EventKind) -> Self {
        Event { at, kind }
    }
}

/// A validated, time-sorted list of events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

/// Validation errors for an [`EventLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventError {
    /// An event references a request id outside the scenario.
    UnknownRequest(RequestId),
    /// An event references a link id outside the network.
    UnknownLink(VirtualLinkId),
    /// An event references an item id outside the scenario.
    UnknownItem(DataItemId),
    /// An event references a machine id outside the network.
    UnknownMachine(MachineId),
    /// The same request has two release events.
    DuplicateRelease(RequestId),
}

impl core::fmt::Display for EventError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EventError::UnknownRequest(r) => write!(f, "event references unknown request {r}"),
            EventError::UnknownLink(l) => write!(f, "event references unknown link {l}"),
            EventError::UnknownItem(i) => write!(f, "event references unknown item {i}"),
            EventError::UnknownMachine(m) => write!(f, "event references unknown machine {m}"),
            EventError::DuplicateRelease(r) => write!(f, "request {r} released twice"),
        }
    }
}

impl std::error::Error for EventError {}

impl EventLog {
    /// Builds a validated log from unordered events.
    ///
    /// # Errors
    ///
    /// Returns an [`EventError`] when an event references an id outside
    /// the scenario or a request is released twice.
    pub fn new(scenario: &Scenario, mut events: Vec<Event>) -> Result<Self, EventError> {
        let mut released = vec![false; scenario.request_count()];
        for e in &events {
            match e.kind {
                EventKind::Release(r) => {
                    if r.index() >= scenario.request_count() {
                        return Err(EventError::UnknownRequest(r));
                    }
                    if released[r.index()] {
                        return Err(EventError::DuplicateRelease(r));
                    }
                    released[r.index()] = true;
                }
                EventKind::LinkOutage(l) => {
                    if l.index() >= scenario.network().link_count() {
                        return Err(EventError::UnknownLink(l));
                    }
                }
                EventKind::CopyLoss { item, machine } => {
                    if item.index() >= scenario.item_count() {
                        return Err(EventError::UnknownItem(item));
                    }
                    if machine.index() >= scenario.network().machine_count() {
                        return Err(EventError::UnknownMachine(machine));
                    }
                }
            }
        }
        events.sort_by_key(|e| e.at);
        Ok(EventLog { events })
    }

    /// The events in time order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// `true` when the log is empty (the run degenerates to the static
    /// scheduler).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct event instants, ascending.
    #[must_use]
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.events.iter().map(|e| e.at).collect();
        times.dedup();
        times
    }

    /// The release time of each request: its release event's time, or
    /// time 0 when it has none.
    #[must_use]
    pub fn release_times(&self, scenario: &Scenario) -> Vec<SimTime> {
        let mut releases = vec![SimTime::ZERO; scenario.request_count()];
        for e in &self.events {
            if let EventKind::Release(r) = e.kind {
                releases[r.index()] = e.at;
            }
        }
        releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_workload::small::two_hop_chain;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn log_sorts_and_reports_boundaries() {
        let s = two_hop_chain();
        let log = EventLog::new(
            &s,
            vec![
                Event::new(t(50), EventKind::LinkOutage(VirtualLinkId::new(0))),
                Event::new(t(10), EventKind::Release(RequestId::new(1))),
                Event::new(t(50), EventKind::Release(RequestId::new(2))),
            ],
        )
        .unwrap();
        assert_eq!(log.events()[0].at, t(10));
        assert_eq!(log.boundaries(), vec![t(10), t(50)]);
        assert!(!log.is_empty());
    }

    #[test]
    fn release_times_default_to_zero() {
        let s = two_hop_chain();
        let log = EventLog::new(&s, vec![Event::new(t(30), EventKind::Release(RequestId::new(1)))])
            .unwrap();
        let releases = log.release_times(&s);
        assert_eq!(releases[0], SimTime::ZERO);
        assert_eq!(releases[1], t(30));
        assert_eq!(releases[2], SimTime::ZERO);
    }

    #[test]
    fn unknown_ids_rejected() {
        let s = two_hop_chain();
        assert!(matches!(
            EventLog::new(&s, vec![Event::new(t(1), EventKind::Release(RequestId::new(99)))]),
            Err(EventError::UnknownRequest(_))
        ));
        assert!(matches!(
            EventLog::new(
                &s,
                vec![Event::new(t(1), EventKind::LinkOutage(VirtualLinkId::new(99)))]
            ),
            Err(EventError::UnknownLink(_))
        ));
        assert!(matches!(
            EventLog::new(
                &s,
                vec![Event::new(
                    t(1),
                    EventKind::CopyLoss { item: DataItemId::new(9), machine: MachineId::new(0) }
                )]
            ),
            Err(EventError::UnknownItem(_))
        ));
        assert!(matches!(
            EventLog::new(
                &s,
                vec![Event::new(
                    t(1),
                    EventKind::CopyLoss { item: DataItemId::new(0), machine: MachineId::new(42) }
                )]
            ),
            Err(EventError::UnknownMachine(_))
        ));
    }

    #[test]
    fn duplicate_release_rejected() {
        let s = two_hop_chain();
        let err = EventLog::new(
            &s,
            vec![
                Event::new(t(1), EventKind::Release(RequestId::new(0))),
                Event::new(t(2), EventKind::Release(RequestId::new(0))),
            ],
        )
        .unwrap_err();
        assert_eq!(err, EventError::DuplicateRelease(RequestId::new(0)));
    }

    #[test]
    fn empty_log_is_empty() {
        let s = two_hop_chain();
        let log = EventLog::new(&s, vec![]).unwrap();
        assert!(log.is_empty());
        assert!(log.boundaries().is_empty());
    }
}
