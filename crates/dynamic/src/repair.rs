//! Schedule-repair primitives shared by the offline re-planning loop and
//! the live admission daemon.
//!
//! [`crate::simulate()`] composes these pieces at every event boundary;
//! `dstage-service` reuses them to invalidate and re-admit committed
//! promises when a disturbance is *injected* into the running daemon.
//! Keeping both callers on one implementation is what makes the service's
//! chaos invariant checkable: the daemon's post-injection state is, by
//! construction, the state an offline replay of the same disturbances
//! produces.
//!
//! The three primitives:
//!
//! * [`filter_consistent`] — split an executed/committed transfer set
//!   into the transfers still consistent with the disturbances so far and
//!   the ones they invalidate (cascading through staged copies);
//! * [`final_deliveries`] — the deliveries that survive to each request's
//!   deadline under the copy-survival semantics of §4.4;
//! * [`replay_state`] — rebuild a [`SchedulerState`] from a surviving
//!   transfer set plus the disturbances, ready for an incremental
//!   re-plan.

use std::collections::HashMap;

use dstage_core::schedule::{Delivery, Transfer};
use dstage_core::state::SchedulerState;
use dstage_model::ids::{DataItemId, MachineId, VirtualLinkId};
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;
use dstage_path::Hop;

/// A link-outage instant: the link and when it went down.
pub type Outage = (VirtualLinkId, SimTime);

/// A copy-loss instant: the item, the machine, and when the copy vanished.
pub type Loss = (DataItemId, MachineId, SimTime);

/// Per-(item, machine) copy availability bookkeeping with loss events.
pub(crate) struct CopyTracker<'a> {
    avails: HashMap<(DataItemId, MachineId), Vec<SimTime>>,
    losses: &'a [Loss],
}

impl<'a> CopyTracker<'a> {
    pub(crate) fn new(scenario: &Scenario, losses: &'a [Loss]) -> Self {
        let mut avails: HashMap<(DataItemId, MachineId), Vec<SimTime>> = HashMap::new();
        for (item_id, item) in scenario.items() {
            for src in item.sources() {
                avails.entry((item_id, src.machine)).or_default().push(src.available_at);
            }
        }
        CopyTracker { avails, losses }
    }

    pub(crate) fn add(&mut self, item: DataItemId, machine: MachineId, at: SimTime) {
        self.avails.entry((item, machine)).or_default().push(at);
    }

    /// Whether a copy of `item` is present at `machine` at instant `at`:
    /// some copy arrived no later than `at` and no loss hit the machine
    /// between that arrival and `at` (inclusive).
    pub(crate) fn present(&self, item: DataItemId, machine: MachineId, at: SimTime) -> bool {
        let Some(avails) = self.avails.get(&(item, machine)) else { return false };
        avails.iter().any(|&avail| {
            avail <= at
                && !self
                    .losses
                    .iter()
                    .any(|&(i, m, tl)| i == item && m == machine && avail <= tl && tl <= at)
        })
    }

    /// The earliest arrival that is still present at `until` (survival to
    /// the deadline), if any.
    pub(crate) fn earliest_surviving(
        &self,
        item: DataItemId,
        machine: MachineId,
        until: SimTime,
    ) -> Option<SimTime> {
        let avails = self.avails.get(&(item, machine))?;
        avails
            .iter()
            .copied()
            .filter(|&avail| {
                avail <= until
                    && !self
                        .losses
                        .iter()
                        .any(|&(i, m, tl)| i == item && m == machine && avail <= tl && tl <= until)
            })
            .min()
    }
}

/// Splits `kept` into transfers consistent with the disturbances so far
/// and the ones invalidated by them (cascading: a transfer whose source
/// copy came from an invalidated transfer is itself invalid).
///
/// The consistent set is returned in `(start, arrival, link)` order,
/// which is also a causally valid replay order for [`replay_state`].
#[must_use]
pub fn filter_consistent(
    scenario: &Scenario,
    mut kept: Vec<Transfer>,
    outages: &[Outage],
    losses: &[Loss],
) -> (Vec<Transfer>, Vec<Transfer>) {
    kept.sort_by_key(|t| (t.start, t.arrival, t.link));
    let mut tracker = CopyTracker::new(scenario, losses);
    let mut valid = Vec::with_capacity(kept.len());
    let mut cancelled = Vec::new();
    for t in kept {
        let link_down = outages.iter().any(|&(l, tl)| l == t.link && t.arrival > tl);
        let source_ok = tracker.present(t.item, t.from, t.start);
        if link_down || !source_ok {
            cancelled.push(t);
        } else {
            tracker.add(t.item, t.to, t.arrival);
            valid.push(t);
        }
    }
    (valid, cancelled)
}

/// Final deliveries under the survival semantics, with hop depths for the
/// links-traversed statistic: a request is delivered when some copy is at
/// its destination by the deadline *and survives to the deadline* (§4.4).
#[must_use]
pub fn final_deliveries(scenario: &Scenario, kept: &[Transfer], losses: &[Loss]) -> Vec<Delivery> {
    let mut tracker = CopyTracker::new(scenario, losses);
    let mut depth: HashMap<(DataItemId, MachineId, SimTime), u32> = HashMap::new();
    let mut sorted: Vec<&Transfer> = kept.iter().collect();
    sorted.sort_by_key(|t| (t.start, t.arrival, t.link));
    for t in sorted {
        let from_depth = depth.iter().filter_map(|(&(i, m, at), &d)| {
            (i == t.item && m == t.from && at <= t.start).then_some(d)
        });
        let d = from_depth.min().unwrap_or(0) + 1;
        depth.insert((t.item, t.to, t.arrival), d);
        tracker.add(t.item, t.to, t.arrival);
    }
    let mut deliveries = Vec::new();
    for (req_id, req) in scenario.requests() {
        if let Some(at) = tracker.earliest_surviving(req.item(), req.destination(), req.deadline())
        {
            let hops = depth.get(&(req.item(), req.destination(), at)).copied().unwrap_or(0);
            deliveries.push(Delivery { request: req_id, at, hops });
        }
    }
    deliveries
}

pub(crate) fn hop_of(t: &Transfer) -> Hop {
    Hop { from: t.from, to: t.to, link: t.link, start: t.start, arrival: t.arrival }
}

/// Rebuilds `state` as of instant `now`: replays the surviving transfer
/// set `kept` into the ledger, applies copy losses (removing vanished
/// copies and revoking deliveries they carried), takes outaged links out
/// of service, and blocks the past so no new transfer can start before
/// `now`.
///
/// `kept` must already be consistent with the disturbances (the valid
/// half of [`filter_consistent`]) and in a causally valid order — a
/// transfer's source copy must be staged by an earlier entry or an
/// original source.
///
/// Request activity flags are left to the caller: deactivate whatever the
/// re-plan must not route *before or after* calling this.
///
/// # Errors
///
/// Returns the first transfer that fails to replay against the pristine
/// ledger — an internal-invariant violation for a consistent `kept` set,
/// not an input condition.
pub fn replay_state(
    state: &mut SchedulerState<'_>,
    kept: &[Transfer],
    outages: &[Outage],
    losses: &[Loss],
    now: SimTime,
) -> Result<(), Transfer> {
    // Every mutation issued here stays inside the tree cache's
    // consumption-only contract: replayed commits and outage blocks only
    // *consume* ledger capacity (both are journaled by the state), copy
    // losses drop the affected item's own tree, and `block_past` drops
    // every cached tree outright. Nothing releases a reservation, so
    // incremental repair stays exact across replan rounds.
    for t in kept {
        if !state.try_commit_stale_hop(t.item, hop_of(t)) {
            return Err(*t);
        }
    }
    let scenario = state.scenario();
    let tracker = CopyTracker::new(scenario, losses);
    for &(item, machine, tl) in losses {
        state.remove_copies(item, machine, tl);
        // A request delivered by a now-lost copy becomes pending again
        // when its deadline is still ahead (the copy did not survive
        // long enough to be used).
        for &req_id in scenario.requests_for(item) {
            let req = scenario.request(req_id);
            if req.destination() == machine
                && tl <= req.deadline()
                && state.delivery_of(req_id).is_some_and(|d| d.at <= tl)
                && !tracker.present(item, machine, req.deadline())
            {
                state.revoke_delivery(req_id);
            }
        }
    }
    for &(link, tl) in outages {
        state.apply_link_outage(link, tl);
    }
    state.block_past(now);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_core::heuristic::{drive_state, run, HeuristicConfig};
    use dstage_model::ids::RequestId;
    use dstage_workload::small::{fan_out, two_hop_chain};

    #[test]
    fn filter_cascades_through_staged_copies() {
        let scenario = two_hop_chain();
        let policy = crate::OnlinePolicy::paper_best();
        let outcome = run(&scenario, policy.heuristic, &policy.config);
        let transfers = outcome.schedule.transfers().to_vec();
        assert!(transfers.len() >= 2, "chain needs staged hops");
        // Outage on the first-hop link at t=0 invalidates everything: the
        // second hop's source copy was staged by a now-cancelled transfer.
        let outages = vec![(dstage_model::ids::VirtualLinkId::new(0), SimTime::ZERO)];
        let (valid, cancelled) = filter_consistent(&scenario, transfers.clone(), &outages, &[]);
        assert!(valid.is_empty(), "every transfer depends on the dead first hop");
        assert_eq!(cancelled.len(), transfers.len());
        // No disturbances: everything survives, in time order.
        let (valid, cancelled) = filter_consistent(&scenario, transfers, &[], &[]);
        assert!(cancelled.is_empty());
        assert!(valid.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn replayed_state_reproduces_the_plan() {
        let scenario = fan_out();
        let policy = crate::OnlinePolicy::paper_best();
        let outcome = run(&scenario, policy.heuristic, &policy.config);
        let (valid, _) =
            filter_consistent(&scenario, outcome.schedule.transfers().to_vec(), &[], &[]);
        let mut state = SchedulerState::with_caching(&scenario, policy.config.caching);
        replay_state(&mut state, &valid, &[], &[], SimTime::ZERO).expect("consistent set replays");
        // Nothing left to do: a re-plan commits no further transfers.
        drive_state(&mut state, policy.heuristic, &HeuristicConfig::paper_best());
        let (plan, _) = state.into_outcome();
        assert_eq!(plan.transfers().len(), valid.len());
        assert_eq!(plan.deliveries().len(), outcome.schedule.deliveries().len());
    }

    #[test]
    fn final_deliveries_drop_lost_destination_copies() {
        let scenario = fan_out();
        let policy = crate::OnlinePolicy::paper_best();
        let outcome = run(&scenario, policy.heuristic, &policy.config);
        let kept = outcome.schedule.transfers().to_vec();
        let clean = final_deliveries(&scenario, &kept, &[]);
        assert_eq!(clean.len(), outcome.schedule.deliveries().len());
        // Lose request 0's destination copy after its arrival but before
        // the deadline: without a re-delivery it is no longer satisfied.
        let d1 = scenario.request(RequestId::new(0)).destination();
        let item = scenario.request(RequestId::new(0)).item();
        let arrival =
            clean.iter().find(|d| d.request == RequestId::new(0)).expect("request 0 delivered").at;
        let losses = vec![(item, d1, arrival + dstage_model::time::SimDuration::from_secs(1))];
        let lossy = final_deliveries(&scenario, &kept, &losses);
        assert!(lossy.iter().all(|d| d.request != RequestId::new(0)));
    }
}
