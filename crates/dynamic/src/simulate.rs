//! The online re-planning loop.
//!
//! The scheduler plans over the whole remaining horizon at every event
//! boundary, exactly as the static heuristics do, but only the transfers
//! that *start before the next event* are executed; everything later is a
//! tentative plan that gets revised when new information arrives. This is
//! the classic rolling-horizon / re-planning pattern and matches the
//! paper's rationale for leaving stale partial paths in place: "in a
//! dynamic situation, a change in the network could allow the request to
//! be satisfied" (§4.5).
//!
//! Semantics of disturbances:
//!
//! * **Release** — a request is invisible to the scheduler before its
//!   release (it receives no resources), but copies that happen to land
//!   on its destination still satisfy it.
//! * **Link outage** — the link's remaining capacity is gone; transfers
//!   still in flight on it are lost (the receiving copy never appears).
//! * **Copy loss** — copies present at the machine at the loss instant
//!   vanish; transfers sourced from them afterwards fail, and a request
//!   that had been delivered by a lost copy becomes pending again if its
//!   deadline has not passed. A request counts as satisfied only if some
//!   copy is at its destination by the deadline *and survives to the
//!   deadline*.
//!
//! The invalidate/replay/re-plan primitives live in [`crate::repair`] and
//! are shared with the live admission daemon's fault-tolerance layer.

use dstage_core::heuristic::{drive_state, Heuristic, HeuristicConfig};
use dstage_core::schedule::{Schedule, Transfer};
use dstage_core::state::SchedulerState;
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;

use crate::event::{EventKind, EventLog};
use crate::repair::{filter_consistent, final_deliveries, replay_state, Loss, Outage};

/// Which heuristic the online scheduler re-plans with.
#[derive(Debug, Clone)]
pub struct OnlinePolicy {
    /// The heuristic driven at each re-plan.
    pub heuristic: Heuristic,
    /// Its cost-criterion configuration.
    pub config: HeuristicConfig,
    /// Evict-and-rerun trials the repair-time optimizer may spend per
    /// re-plan (`0` disables it). Already-executed transfers are sunk —
    /// the climb only reallocates *tentative* capacity, so it can trade a
    /// lighter request's future hops for a heavier refused one.
    pub optimize_budget: u64,
}

impl OnlinePolicy {
    /// The paper's best pairing (full path/one destination + C4), no
    /// repair-time optimization.
    #[must_use]
    pub fn paper_best() -> Self {
        OnlinePolicy {
            heuristic: Heuristic::FullPathOneDestination,
            config: HeuristicConfig::paper_best(),
            optimize_budget: 0,
        }
    }

    /// The same policy with a repair-time optimizer budget.
    #[must_use]
    pub fn with_optimizer(mut self, budget: u64) -> Self {
        self.optimize_budget = budget;
        self
    }
}

/// The result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The transfers that actually executed (survived all events), plus
    /// the final deliveries under the survival semantics.
    pub executed: Schedule,
    /// Transfers that were committed and later invalidated by an outage
    /// or copy loss (wasted work — a key cost of operating online).
    pub cancelled: Vec<Transfer>,
    /// Number of planning passes (event boundaries, including time 0).
    pub replans: u64,
}

/// Runs the online simulation: re-plans at every event boundary and
/// executes the plan between boundaries.
///
/// With an empty event log this is exactly one static run of the policy's
/// heuristic.
///
/// # Panics
///
/// Panics on the full path/all destinations + `Cost₁` pairing (as for
/// the static scheduler), and if an internal replay of already-executed
/// transfers fails (a bug, not an input condition).
#[must_use]
pub fn simulate(scenario: &Scenario, events: &EventLog, policy: &OnlinePolicy) -> OnlineOutcome {
    let releases = events.release_times(scenario);
    let mut boundaries = vec![SimTime::ZERO];
    boundaries.extend(events.boundaries());
    boundaries.dedup();

    let mut outages: Vec<Outage> = Vec::new();
    let mut losses: Vec<Loss> = Vec::new();
    let mut kept: Vec<Transfer> = Vec::new();
    let mut cancelled_total: Vec<Transfer> = Vec::new();
    let mut replans = 0u64;

    for (i, &now) in boundaries.iter().enumerate() {
        // 1. Absorb this instant's events.
        for e in events.events().iter().filter(|e| e.at == now) {
            match e.kind {
                EventKind::LinkOutage(l) => outages.push((l, now)),
                EventKind::CopyLoss { item, machine } => losses.push((item, machine, now)),
                EventKind::Release(_) => {} // releases handled via `releases`
            }
        }
        // 2. Drop executed transfers the events invalidated (cascading).
        let (valid, newly_cancelled) = filter_consistent(scenario, kept, &outages, &losses);
        kept = valid;
        cancelled_total.extend(newly_cancelled);

        // 3 + 4. Rebuild scheduler state as of `now` and re-plan over the
        // remaining horizon (optionally excluding requests the repair-time
        // optimizer evicts).
        let plan_excluding = |excluded: &[dstage_model::ids::RequestId]| {
            let mut state = SchedulerState::with_caching(scenario, policy.config.caching);
            for (r, &rel) in releases.iter().enumerate() {
                if rel > now {
                    state.set_request_active(dstage_model::ids::RequestId::new(r as u32), false);
                }
            }
            for &r in excluded {
                state.set_request_active(r, false);
            }
            replay_state(&mut state, &kept, &outages, &losses, now)
                .unwrap_or_else(|t| panic!("replay of an executed transfer failed: {t:?}"));
            drive_state(&mut state, policy.heuristic, &policy.config);
            state.into_outcome().0
        };
        let plan = if policy.optimize_budget == 0 {
            plan_excluding(&[])
        } else {
            // The repair-time pass: hill-climb the fresh plan by evicting
            // tentatively satisfied lightweights for refused heavyweights.
            dstage_sched::optimize_with(
                scenario,
                &policy.config.priority_weights,
                policy.optimize_budget,
                plan_excluding,
            )
            .schedule
        };
        replans += 1;

        // 5. Execute the plan up to the next boundary; later transfers
        //    stay tentative and will be re-planned.
        let next = boundaries.get(i + 1).copied();
        for t in plan.transfers() {
            if kept.contains(t) {
                continue; // a replayed, already-executed transfer
            }
            match next {
                Some(boundary) if t.start >= boundary => {} // tentative
                _ => kept.push(*t),
            }
        }
    }

    let deliveries = final_deliveries(scenario, &kept, &losses);
    OnlineOutcome {
        executed: Schedule::from_parts(kept, deliveries),
        cancelled: cancelled_total,
        replans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use dstage_core::heuristic::run;
    use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_event_log_matches_static_run() {
        let scenario = two_hop_chain();
        let policy = OnlinePolicy::paper_best();
        let log = EventLog::new(&scenario, vec![]).unwrap();
        let online = simulate(&scenario, &log, &policy);
        let offline = run(&scenario, policy.heuristic, &policy.config);
        assert_eq!(online.executed.transfers(), offline.schedule.transfers());
        assert_eq!(online.replans, 1);
        assert!(online.cancelled.is_empty());
        assert_eq!(online.executed.deliveries().len(), offline.schedule.deliveries().len());
    }

    #[test]
    fn late_release_still_gets_satisfied() {
        let scenario = two_hop_chain();
        let policy = OnlinePolicy::paper_best();
        // Release the m2 request for item 0 only after 2 minutes; its
        // deadline (45 min) leaves plenty of slack to re-plan.
        let log = EventLog::new(
            &scenario,
            vec![Event::new(t(120), EventKind::Release(RequestId::new(1)))],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy);
        assert!(outcome.executed.delivery_of(RequestId::new(1)).is_some());
        assert_eq!(outcome.replans, 2);
    }

    #[test]
    fn outage_before_start_loses_everything_downstream() {
        let scenario = two_hop_chain();
        let policy = OnlinePolicy::paper_best();
        // Kill the only first-hop link at t=1s — before any useful volume
        // moved; everything becomes unsatisfiable except what got through.
        let log = EventLog::new(
            &scenario,
            vec![Event::new(t(1), EventKind::LinkOutage(VirtualLinkId::new(0)))],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy);
        // First transfer (10 s) was in flight at t=1 and is lost.
        assert!(outcome.executed.deliveries().is_empty());
        assert!(!outcome.cancelled.is_empty(), "in-flight transfer must be cancelled");
    }

    #[test]
    fn outage_after_completion_changes_nothing() {
        let scenario = two_hop_chain();
        let policy = OnlinePolicy::paper_best();
        // The chain finishes well within 5 minutes; an outage at 30 min is
        // irrelevant.
        let log = EventLog::new(
            &scenario,
            vec![Event::new(SimTime::from_mins(30), EventKind::LinkOutage(VirtualLinkId::new(0)))],
        )
        .unwrap();
        let online = simulate(&scenario, &log, &policy);
        let offline = run(&scenario, policy.heuristic, &policy.config);
        assert_eq!(online.executed.deliveries().len(), offline.schedule.deliveries().len());
        assert!(online.cancelled.is_empty());
    }

    #[test]
    fn copy_loss_at_destination_triggers_redelivery() {
        let scenario = fan_out();
        let policy = OnlinePolicy::paper_best();
        // d1 (machine 2) receives item 0 early (~20 s); lose that copy at
        // t=60 s. Deadline is 30 min: the scheduler must redeliver from
        // the hub's retained intermediate copy (γ retention, §4.4).
        let log = EventLog::new(
            &scenario,
            vec![Event::new(
                t(60),
                EventKind::CopyLoss { item: DataItemId::new(0), machine: MachineId::new(2) },
            )],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy);
        let delivery = outcome
            .executed
            .delivery_of(RequestId::new(0))
            .expect("request must be re-satisfied after the loss");
        assert!(delivery.at > t(60), "the surviving delivery must postdate the loss");
        // Both transfers into machine 2 executed: the first moved real
        // bits (the loss hit the copy afterwards, not the transfer), and
        // the re-delivery followed. Nothing was cancelled mid-flight.
        let into_d1 = outcome
            .executed
            .transfers()
            .iter()
            .filter(|tr| tr.item == DataItemId::new(0) && tr.to == MachineId::new(2))
            .count();
        assert_eq!(into_d1, 2, "original delivery + re-delivery both executed");
        assert!(outcome.cancelled.is_empty(), "no transfer was in flight at the loss");
    }

    #[test]
    fn copy_loss_after_deadline_keeps_delivery() {
        let scenario = fan_out();
        let policy = OnlinePolicy::paper_best();
        // Deadline 30 min; lose the copy at 40 min: the data was there
        // when it mattered.
        let log = EventLog::new(
            &scenario,
            vec![Event::new(
                SimTime::from_mins(40),
                EventKind::CopyLoss { item: DataItemId::new(0), machine: MachineId::new(2) },
            )],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy);
        assert!(outcome.executed.delivery_of(RequestId::new(0)).is_some());
    }

    #[test]
    fn repair_time_optimizer_never_hurts() {
        use dstage_model::request::PriorityWeights;
        let w = PriorityWeights::paper_1_10_100();
        for scenario in [two_hop_chain(), fan_out(), contended_link()] {
            let log = EventLog::new(
                &scenario,
                vec![Event::new(t(5), EventKind::LinkOutage(VirtualLinkId::new(0)))],
            )
            .unwrap();
            let base = simulate(&scenario, &log, &OnlinePolicy::paper_best());
            let optimized =
                simulate(&scenario, &log, &OnlinePolicy::paper_best().with_optimizer(8));
            assert!(
                optimized.executed.evaluate(&scenario, &w).weighted_sum
                    >= base.executed.evaluate(&scenario, &w).weighted_sum,
                "the repair-time pass must never lose weight"
            );
            // Determinism: the optimized run reproduces itself.
            let again = simulate(&scenario, &log, &OnlinePolicy::paper_best().with_optimizer(8));
            assert_eq!(optimized.executed, again.executed);
        }
    }

    #[test]
    fn online_never_claims_more_than_offline_bounds() {
        use dstage_core::bounds::upper_bound;
        use dstage_model::request::PriorityWeights;
        let scenario = contended_link();
        let policy = OnlinePolicy::paper_best();
        let log = EventLog::new(
            &scenario,
            vec![Event::new(t(5), EventKind::LinkOutage(VirtualLinkId::new(0)))],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy);
        let w = PriorityWeights::paper_1_10_100();
        let eval = outcome.executed.evaluate(&scenario, &w);
        assert!(eval.weighted_sum <= upper_bound(&scenario, &w));
    }
}
