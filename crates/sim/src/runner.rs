//! The experiment harness: generates the test-case suite once and runs
//! (scheduler × weighting × E-U point) pairings over it, caching results
//! so the figures share work (Figure 2 reuses the C4 series of Figures
//! 3–5, and `Cost₃` runs once per sweep because it is E-U independent).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dstage_core::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
use dstage_core::bounds::{possible_satisfy, upper_bound};
use dstage_core::cost::CostCriterion;
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_core::metrics::RunMetrics;
use dstage_core::schedule::Evaluation;
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_workload::{generate, GeneratorConfig};

use crate::executor::run_indexed;
use crate::sweep::EuRatioPoint;

/// Which priority weighting a run scores (and schedules) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weighting {
    /// Low 1, medium 5, high 10.
    W1_5_10,
    /// Low 1, medium 10, high 100 (the paper's headline weighting).
    W1_10_100,
}

impl Weighting {
    /// Both weightings, in paper order.
    pub const ALL: [Weighting; 2] = [Weighting::W1_5_10, Weighting::W1_10_100];

    /// The weight table.
    #[must_use]
    pub fn weights(self) -> PriorityWeights {
        match self {
            Weighting::W1_5_10 => PriorityWeights::paper_1_5_10(),
            Weighting::W1_10_100 => PriorityWeights::paper_1_10_100(),
        }
    }

    /// Report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Weighting::W1_5_10 => "1,5,10",
            Weighting::W1_10_100 => "1,10,100",
        }
    }
}

/// Identifies any scheduling procedure the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// One of the three heuristics with a cost criterion and E-U point.
    Pairing(Heuristic, CostCriterion, EuRatioPoint),
    /// The looser random lower bound (§5.2).
    SingleDijkstraRandom,
    /// The tighter random lower bound (§5.2).
    RandomDijkstra,
    /// The simplified priority-first comparison scheme (§5.4).
    PriorityFirst,
}

/// The outcome of one scheduler on one test case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Schedule quality under the run's weighting.
    pub evaluation: Evaluation,
    /// Execution counters.
    pub metrics: RunMetrics,
}

/// Upper bounds of one test case.
#[derive(Debug, Clone, Copy)]
pub struct CaseBounds {
    /// Σ weights over all requests (`upper_bound`).
    pub upper_bound: u64,
    /// Σ weights over individually satisfiable requests
    /// (`possible_satisfy`).
    pub possible_satisfy: u64,
}

/// Cache from (scheduler, weighting) to the per-case results.
///
/// `Mutex` + `Arc` (rather than `RefCell` + `Rc`) keep the harness
/// `Send + Sync`, so callers may share one suite across threads.
type ResultCache = Mutex<HashMap<(SchedulerKind, Weighting), Arc<Vec<CaseResult>>>>;

/// The experiment harness over one generated test-case suite.
pub struct Harness {
    cases: Vec<Scenario>,
    cache: ResultCache,
    bounds_cache: Mutex<HashMap<Weighting, Arc<Vec<CaseBounds>>>>,
    verbose: bool,
}

impl Harness {
    /// Generates `n_cases` scenarios (seeds `0..n_cases`) under `config`.
    #[must_use]
    pub fn new(config: &GeneratorConfig, n_cases: usize) -> Self {
        let cases = (0..n_cases as u64).map(|seed| generate(config, seed)).collect();
        Harness {
            cases,
            cache: Mutex::new(HashMap::new()),
            bounds_cache: Mutex::new(HashMap::new()),
            verbose: false,
        }
    }

    /// The paper's harness: 40 cases at §5.3 scale.
    #[must_use]
    pub fn paper() -> Self {
        Harness::new(&GeneratorConfig::paper(), 40)
    }

    /// Enables progress logging to stderr.
    pub fn set_verbose(&mut self, verbose: bool) {
        self.verbose = verbose;
    }

    /// The generated test cases.
    #[must_use]
    pub fn cases(&self) -> &[Scenario] {
        &self.cases
    }

    /// Runs (or recalls) a scheduler over every case under a weighting.
    ///
    /// `Cost₃` pairings are normalized to a single E-U point (the
    /// criterion is ratio-independent), so an entire sweep of C3 costs one
    /// run per case.
    pub fn results(&self, kind: SchedulerKind, weighting: Weighting) -> Arc<Vec<CaseResult>> {
        let key = (Self::normalize(kind), weighting);
        if let Some(hit) = self.cache.lock().get(&key) {
            return Arc::clone(hit);
        }
        if self.verbose {
            eprintln!("[harness] running {:?} under {} ...", key.0, weighting.label());
        }
        let weights = weighting.weights();
        let results: Vec<CaseResult> =
            (0..self.cases.len()).map(|i| self.case_result(key.0, &weights, i)).collect();
        // First insert wins: if another thread raced us to the same key,
        // keep (and return) its series so every caller shares one
        // allocation and cached re-reads stay pointer-stable.
        Arc::clone(self.cache.lock().entry(key).or_insert_with(|| Arc::new(results)))
    }

    /// One scheduler on one case. `kind` must already be normalized; the
    /// PRNG stream of the random baselines is keyed by the case index, so
    /// the outcome is a pure function of `(kind, weights, case)` no
    /// matter which thread computes it.
    fn case_result(&self, kind: SchedulerKind, weights: &PriorityWeights, i: usize) -> CaseResult {
        let scenario = &self.cases[i];
        let outcome = match kind {
            SchedulerKind::Pairing(h, c, point) => {
                let config = HeuristicConfig {
                    criterion: c,
                    eu: point.weights(),
                    priority_weights: weights.clone(),
                    caching: true,
                };
                run(scenario, h, &config)
            }
            SchedulerKind::SingleDijkstraRandom => single_dijkstra_random(scenario, i as u64),
            SchedulerKind::RandomDijkstra => random_dijkstra(scenario, i as u64),
            SchedulerKind::PriorityFirst => priority_first(scenario, weights),
        };
        CaseResult {
            evaluation: outcome.schedule.evaluate(scenario, weights),
            metrics: outcome.metrics,
        }
    }

    /// The bounds of one case under a weighting.
    fn case_bounds(&self, weights: &PriorityWeights, i: usize) -> CaseBounds {
        let scenario = &self.cases[i];
        CaseBounds {
            upper_bound: upper_bound(scenario, weights),
            possible_satisfy: possible_satisfy(scenario, weights).weighted_sum,
        }
    }

    /// Computes a batch of result series (and per-weighting bounds) in
    /// parallel on `threads` workers, populating the same caches that
    /// [`Harness::results`] / [`Harness::bounds`] read.
    ///
    /// Work fans out at (scheduler × weighting × case) granularity and is
    /// merged back in stable (unit, case) order, so a subsequent
    /// sequential report render is **byte-identical** to one computed
    /// without this call: per-case outcomes are pure functions of their
    /// unit, and cache lookups are keyed, never iterated.
    pub fn prefetch(
        &self,
        kinds: &[(SchedulerKind, Weighting)],
        bound_weightings: &[Weighting],
        threads: usize,
    ) {
        // Dedup to normalized, uncached keys, keeping first-seen order.
        let mut pending_keys: Vec<(SchedulerKind, Weighting)> = Vec::new();
        {
            let cache = self.cache.lock();
            for &(kind, weighting) in kinds {
                let key = (Self::normalize(kind), weighting);
                if !cache.contains_key(&key) && !pending_keys.contains(&key) {
                    pending_keys.push(key);
                }
            }
        }
        let mut pending_bounds: Vec<Weighting> = Vec::new();
        {
            let cache = self.bounds_cache.lock();
            for &weighting in bound_weightings {
                if !cache.contains_key(&weighting) && !pending_bounds.contains(&weighting) {
                    pending_bounds.push(weighting);
                }
            }
        }
        let n_cases = self.cases.len();
        if n_cases == 0 || (pending_keys.is_empty() && pending_bounds.is_empty()) {
            return;
        }
        if self.verbose {
            eprintln!(
                "[harness] prefetching {} series + {} bound sets over {} cases on {} threads ...",
                pending_keys.len(),
                pending_bounds.len(),
                n_cases,
                threads
            );
        }

        enum Unit {
            Result(CaseResult),
            Bounds(CaseBounds),
        }
        let n_result_units = pending_keys.len() * n_cases;
        let n_units = n_result_units + pending_bounds.len() * n_cases;
        let outputs = run_indexed(n_units, threads, |u| {
            if u < n_result_units {
                let (kind, weighting) = pending_keys[u / n_cases];
                Unit::Result(self.case_result(kind, &weighting.weights(), u % n_cases))
            } else {
                let b = u - n_result_units;
                let weighting = pending_bounds[b / n_cases];
                Unit::Bounds(self.case_bounds(&weighting.weights(), b % n_cases))
            }
        });

        // Stable merge: outputs arrive in unit order, i.e. grouped by key
        // with cases ascending within each group.
        let mut outputs = outputs.into_iter();
        let mut cache = self.cache.lock();
        for &key in &pending_keys {
            let series: Vec<CaseResult> = outputs
                .by_ref()
                .take(n_cases)
                .map(|u| match u {
                    Unit::Result(r) => r,
                    Unit::Bounds(_) => unreachable!("result units precede bound units"),
                })
                .collect();
            cache.entry(key).or_insert_with(|| Arc::new(series));
        }
        drop(cache);
        let mut bounds_cache = self.bounds_cache.lock();
        for &weighting in &pending_bounds {
            let series: Vec<CaseBounds> = outputs
                .by_ref()
                .take(n_cases)
                .map(|u| match u {
                    Unit::Bounds(b) => b,
                    Unit::Result(_) => unreachable!("bound units follow result units"),
                })
                .collect();
            bounds_cache.entry(weighting).or_insert_with(|| Arc::new(series));
        }
    }

    /// The per-case upper bounds under a weighting.
    pub fn bounds(&self, weighting: Weighting) -> Arc<Vec<CaseBounds>> {
        if let Some(hit) = self.bounds_cache.lock().get(&weighting) {
            return Arc::clone(hit);
        }
        if self.verbose {
            eprintln!("[harness] computing bounds under {} ...", weighting.label());
        }
        let weights = weighting.weights();
        let bounds: Vec<CaseBounds> =
            (0..self.cases.len()).map(|i| self.case_bounds(&weights, i)).collect();
        // First insert wins, as in `results`.
        Arc::clone(self.bounds_cache.lock().entry(weighting).or_insert_with(|| Arc::new(bounds)))
    }

    /// Mean weighted sum of a scheduler across the cases (the y-value of
    /// one figure point).
    pub fn mean_weighted_sum(&self, kind: SchedulerKind, weighting: Weighting) -> f64 {
        let results = self.results(kind, weighting);
        results.iter().map(|r| r.evaluation.weighted_sum as f64).sum::<f64>() / results.len() as f64
    }

    fn normalize(kind: SchedulerKind) -> SchedulerKind {
        match kind {
            SchedulerKind::Pairing(h, c, _) if !c.uses_eu_ratio() => {
                SchedulerKind::Pairing(h, c, EuRatioPoint::Log10(0))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_harness() -> Harness {
        Harness::new(&GeneratorConfig::small(), 3)
    }

    #[test]
    fn results_are_cached() {
        let h = small_harness();
        let kind = SchedulerKind::Pairing(
            Heuristic::FullPathOneDestination,
            CostCriterion::C4,
            EuRatioPoint::Log10(0),
        );
        let a = h.results(kind, Weighting::W1_10_100);
        let b = h.results(kind, Weighting::W1_10_100);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn c3_sweep_points_share_one_run() {
        let h = small_harness();
        let a = h.results(
            SchedulerKind::Pairing(Heuristic::PartialPath, CostCriterion::C3, EuRatioPoint::NegInf),
            Weighting::W1_10_100,
        );
        let b = h.results(
            SchedulerKind::Pairing(Heuristic::PartialPath, CostCriterion::C3, EuRatioPoint::PosInf),
            Weighting::W1_10_100,
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn weightings_are_cached_separately() {
        let h = small_harness();
        let kind = SchedulerKind::PriorityFirst;
        let a = h.results(kind, Weighting::W1_10_100);
        let b = h.results(kind, Weighting::W1_5_10);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn harness_is_shareable_across_threads() {
        let h = std::sync::Arc::new(small_harness());
        let kind = SchedulerKind::PriorityFirst;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || h.results(kind, Weighting::W1_10_100))
            })
            .collect();
        let first = h.results(kind, Weighting::W1_10_100);
        for handle in handles {
            let other = handle.join().expect("worker panicked");
            assert_eq!(other.len(), first.len());
        }
    }

    #[test]
    fn bounds_dominate_every_scheduler() {
        let h = small_harness();
        let bounds = h.bounds(Weighting::W1_10_100);
        for kind in [
            SchedulerKind::Pairing(
                Heuristic::FullPathOneDestination,
                CostCriterion::C4,
                EuRatioPoint::Log10(1),
            ),
            SchedulerKind::SingleDijkstraRandom,
            SchedulerKind::RandomDijkstra,
            SchedulerKind::PriorityFirst,
        ] {
            let results = h.results(kind, Weighting::W1_10_100);
            for (r, b) in results.iter().zip(bounds.iter()) {
                assert!(r.evaluation.weighted_sum <= b.possible_satisfy);
                assert!(b.possible_satisfy <= b.upper_bound);
            }
        }
    }

    #[test]
    fn mean_weighted_sum_matches_manual_average() {
        let h = small_harness();
        let kind = SchedulerKind::RandomDijkstra;
        let results = h.results(kind, Weighting::W1_10_100);
        let manual = results.iter().map(|r| r.evaluation.weighted_sum as f64).sum::<f64>()
            / results.len() as f64;
        assert_eq!(h.mean_weighted_sum(kind, Weighting::W1_10_100), manual);
    }
}
