//! The paper's evaluation artifacts, one function per experiment id (see
//! DESIGN.md §4 for the index).
//!
//! Every experiment consumes a shared [`Harness`] (results are cached
//! across experiments — Figure 2 reuses the `Cost₄` series of Figures
//! 3–5) and returns an [`ExperimentReport`] of tables, an optional ASCII
//! plot, and CSV payloads.

use dstage_core::cost::CostCriterion;
use dstage_core::heuristic::Heuristic;

use crate::report::{ascii_plot, Series, Table};
use crate::runner::{Harness, SchedulerKind, Weighting};
use crate::stats::Stats;
use crate::sweep::EuRatioPoint;

/// A rendered experiment: tables plus optional plot plus CSV files.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`fig2` … `exec`), used for file names.
    pub id: &'static str,
    /// Human-readable description.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// ASCII plots (already rendered).
    pub plots: Vec<String>,
}

impl ExperimentReport {
    /// Renders everything as one text block.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for plot in &self.plots {
            out.push_str(plot);
            out.push('\n');
        }
        for table in &self.tables {
            out.push_str(&table.to_ascii());
            out.push('\n');
        }
        out
    }

    /// The CSV payloads `(file_name, contents)` of all tables.
    #[must_use]
    pub fn csv_files(&self) -> Vec<(String, String)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let name = if self.tables.len() == 1 {
                    format!("{}.csv", self.id)
                } else {
                    format!("{}_{}.csv", self.id, i)
                };
                (name, t.to_csv())
            })
            .collect()
    }
}

/// The mean-weighted-sum series of one heuristic/criterion pairing over
/// the full E-U sweep.
fn sweep_series(
    harness: &Harness,
    heuristic: Heuristic,
    criterion: CostCriterion,
    weighting: Weighting,
) -> Vec<f64> {
    EuRatioPoint::PAPER_SWEEP
        .iter()
        .map(|&p| {
            harness.mean_weighted_sum(SchedulerKind::Pairing(heuristic, criterion, p), weighting)
        })
        .collect()
}

/// The sweep point where a pairing peaks (used by the text experiments).
fn best_point(
    harness: &Harness,
    heuristic: Heuristic,
    criterion: CostCriterion,
    weighting: Weighting,
) -> EuRatioPoint {
    let series = sweep_series(harness, heuristic, criterion, weighting);
    let (idx, _) = series
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("means are finite"))
        .expect("sweep is non-empty");
    EuRatioPoint::PAPER_SWEEP[idx]
}

fn x_labels() -> Vec<String> {
    EuRatioPoint::PAPER_SWEEP.iter().map(|p| p.label()).collect()
}

fn sweep_table(title: &str, series: &[Series]) -> Table {
    let mut columns = vec!["series".to_string()];
    columns.extend(x_labels());
    let mut table = Table::new(title, columns);
    for s in series {
        let mut row = vec![s.label.clone()];
        row.extend(s.values.iter().map(|v| format!("{v:.1}")));
        table.push_row(row);
    }
    table
}

/// **Figure 2**: bounds, both random lower bounds, and the best criterion
/// (`Cost₄`) of each heuristic, versus the E-U ratio (1,10,100 weighting).
pub fn fig2(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let n = EuRatioPoint::PAPER_SWEEP.len();
    let bounds = harness.bounds(weighting);
    let ub_mean = bounds.iter().map(|b| b.upper_bound as f64).sum::<f64>() / bounds.len() as f64;
    let ps_mean =
        bounds.iter().map(|b| b.possible_satisfy as f64).sum::<f64>() / bounds.len() as f64;
    let flat = |label: &str, v: f64| Series { label: label.into(), values: vec![v; n] };

    let single = harness.mean_weighted_sum(SchedulerKind::SingleDijkstraRandom, weighting);
    let random = harness.mean_weighted_sum(SchedulerKind::RandomDijkstra, weighting);

    let mut series = vec![flat("upper_bound", ub_mean), flat("possible_satisfy", ps_mean)];
    for h in Heuristic::ALL {
        series.push(Series {
            label: format!("{h}/C4"),
            values: sweep_series(harness, h, CostCriterion::C4, weighting),
        });
    }
    series.push(flat("random_Dijkstra", random));
    series.push(flat("single_Dij_random", single));

    ExperimentReport {
        id: "fig2",
        title: "Heuristics' best cost criterion (C4) vs bounds, 1,10,100 weighting".into(),
        plots: vec![ascii_plot(
            "Figure 2: mean weighted sum of satisfied priorities vs log10(E-U ratio)",
            &x_labels(),
            &series,
            16,
        )],
        tables: vec![sweep_table(
            "Figure 2 series (mean weighted sum over the test cases)",
            &series,
        )],
    }
}

fn criterion_figure(id: &'static str, heuristic: Heuristic, harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let series: Vec<Series> = heuristic
        .criteria()
        .iter()
        .map(|&c| Series {
            label: c.label().to_string(),
            values: sweep_series(harness, heuristic, c, weighting),
        })
        .collect();
    let title = format!(
        "{} heuristic, cost criteria {} vs E-U ratio, 1,10,100 weighting",
        heuristic,
        heuristic.criteria().iter().map(|c| c.label()).collect::<Vec<_>>().join("/"),
    );
    ExperimentReport {
        id,
        title: title.clone(),
        plots: vec![ascii_plot(
            &format!("{id}: mean weighted sum vs log10(E-U ratio) [{heuristic}]"),
            &x_labels(),
            &series,
            16,
        )],
        tables: vec![sweep_table(&title, &series)],
    }
}

/// **Figure 3**: the partial path heuristic under all four criteria.
pub fn fig3(harness: &Harness) -> ExperimentReport {
    criterion_figure("fig3", Heuristic::PartialPath, harness)
}

/// **Figure 4**: the full path/one destination heuristic under all four
/// criteria.
pub fn fig4(harness: &Harness) -> ExperimentReport {
    criterion_figure("fig4", Heuristic::FullPathOneDestination, harness)
}

/// **Figure 5**: the full path/all destinations heuristic under C2–C4.
pub fn fig5(harness: &Harness) -> ExperimentReport {
    criterion_figure("fig5", Heuristic::FullPathAllDestinations, harness)
}

/// **weights** (§5.4 text): per-priority-class satisfied counts under the
/// 1,5,10 and 1,10,100 weightings — the heavier weighting must satisfy
/// more high-priority and fewer medium/low requests.
pub fn weights(harness: &Harness) -> ExperimentReport {
    let mut table = Table::new(
        "Mean satisfied requests per priority class (heuristics with C4 at their best E-U point)",
        vec![
            "heuristic".into(),
            "weighting".into(),
            "best x".into(),
            "low".into(),
            "medium".into(),
            "high".into(),
            "weighted sum".into(),
        ],
    );
    for h in Heuristic::ALL {
        for weighting in Weighting::ALL {
            let point = best_point(harness, h, CostCriterion::C4, weighting);
            let results =
                harness.results(SchedulerKind::Pairing(h, CostCriterion::C4, point), weighting);
            let n = results.len() as f64;
            let mean_class = |lvl: usize| {
                results.iter().map(|r| r.evaluation.satisfied_by_priority[lvl] as f64).sum::<f64>()
                    / n
            };
            let mean_w = results.iter().map(|r| r.evaluation.weighted_sum as f64).sum::<f64>() / n;
            table.push_row(vec![
                h.to_string(),
                weighting.label().to_string(),
                point.label(),
                format!("{:.1}", mean_class(0)),
                format!("{:.1}", mean_class(1)),
                format!("{:.1}", mean_class(2)),
                format!("{mean_w:.1}"),
            ]);
        }
    }
    ExperimentReport {
        id: "weights",
        title: "1,5,10 vs 1,10,100 priority weighting (§5.4)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **prio_first** (§5.4 text / §6): every heuristic/criterion pair at its
/// best E-U point versus the simplified priority-first scheme, on weighted
/// sum and highest-priority deliveries.
pub fn prio_first(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let pf = harness.results(SchedulerKind::PriorityFirst, weighting);
    let n = pf.len() as f64;
    let pf_mean = pf.iter().map(|r| r.evaluation.weighted_sum as f64).sum::<f64>() / n;
    let pf_high = pf.iter().map(|r| r.evaluation.satisfied_by_priority[2] as f64).sum::<f64>() / n;

    let mut table = Table::new(
        format!(
            "Heuristic/criterion pairs (best E-U point) vs priority-first \
             (pf mean weighted sum {pf_mean:.1}, mean high satisfied {pf_high:.1})"
        ),
        vec![
            "pair".into(),
            "best x".into(),
            "mean weighted".into(),
            "vs pf".into(),
            "cases >= pf".into(),
            "mean high satisfied".into(),
            "high vs pf".into(),
        ],
    );
    for h in Heuristic::ALL {
        for &c in h.criteria() {
            let point = best_point(harness, h, c, weighting);
            let results = harness.results(SchedulerKind::Pairing(h, c, point), weighting);
            let mean = results.iter().map(|r| r.evaluation.weighted_sum as f64).sum::<f64>() / n;
            let high =
                results.iter().map(|r| r.evaluation.satisfied_by_priority[2] as f64).sum::<f64>()
                    / n;
            let better = results
                .iter()
                .zip(pf.iter())
                .filter(|(r, p)| r.evaluation.weighted_sum >= p.evaluation.weighted_sum)
                .count();
            table.push_row(vec![
                format!("{h}/{c}"),
                point.label(),
                format!("{mean:.1}"),
                format!("{:+.1}", mean - pf_mean),
                format!("{better}/{}", results.len()),
                format!("{high:.1}"),
                format!("{:+.1}", high - pf_high),
            ]);
        }
    }
    ExperimentReport {
        id: "prio_first",
        title: "Heuristics vs the simplified priority-first scheme (§5.4)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **minmax** (§5.4 text, companion report \[17\]): spread over the individual test
/// cases for each heuristic with `Cost₄` at its best E-U point.
pub fn minmax(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let mut table = Table::new(
        "Weighted-sum spread over the test cases (C4, best E-U point)",
        vec![
            "heuristic".into(),
            "best x".into(),
            "mean".into(),
            "min".into(),
            "max".into(),
            "std dev".into(),
        ],
    );
    for h in Heuristic::ALL {
        let point = best_point(harness, h, CostCriterion::C4, weighting);
        let results =
            harness.results(SchedulerKind::Pairing(h, CostCriterion::C4, point), weighting);
        let samples: Vec<u64> = results.iter().map(|r| r.evaluation.weighted_sum).collect();
        let stats = Stats::from_u64(&samples);
        table.push_row(vec![
            h.to_string(),
            point.label(),
            format!("{:.1}", stats.mean),
            format!("{:.0}", stats.min),
            format!("{:.0}", stats.max),
            format!("{:.1}", stats.std_dev),
        ]);
    }
    ExperimentReport {
        id: "minmax",
        title: "Min/max over individual test cases (companion report)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **exec** (§5.4 text, companion report \[17\]): execution time, Dijkstra-run counts,
/// and mean links traversed per satisfied request, per heuristic/criterion
/// at E-U ratio 1. Full path/all destinations must need the fewest
/// Dijkstra runs (§4.7).
pub fn exec(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let point = EuRatioPoint::Log10(0);
    let mut table = Table::new(
        "Execution metrics per heuristic/criterion (E-U ratio 1)",
        vec![
            "pair".into(),
            "mean time [ms]".into(),
            "mean Dijkstra runs".into(),
            "mean cache hits".into(),
            "mean transfers".into(),
            "mean links/delivery".into(),
        ],
    );
    for h in Heuristic::ALL {
        for &c in h.criteria() {
            let results = harness.results(SchedulerKind::Pairing(h, c, point), weighting);
            let n = results.len() as f64;
            let mean = |f: &dyn Fn(&crate::runner::CaseResult) -> f64| -> f64 {
                results.iter().map(f).sum::<f64>() / n
            };
            table.push_row(vec![
                format!("{h}/{c}"),
                format!("{:.1}", mean(&|r| r.metrics.elapsed.as_secs_f64() * 1_000.0)),
                format!("{:.0}", mean(&|r| r.metrics.dijkstra_runs as f64)),
                format!("{:.0}", mean(&|r| r.metrics.cache_hits as f64)),
                format!("{:.0}", mean(&|r| r.metrics.transfers_committed as f64)),
                format!("{:.2}", mean(&|r| r.evaluation.mean_hops_per_delivery)),
            ]);
        }
    }
    ExperimentReport {
        id: "exec",
        title: "Execution time, Dijkstra runs, links traversed (companion report)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **congestion** (the paper's §6 future-work knob, plus a reproduction
/// diagnostic): how the C1/C3/C4 criteria compare as the request load is
/// scaled. `Cost₄`'s multi-destination awareness is exactly what pays off
/// as the network gets more oversubscribed, so its margin over `Cost₁`
/// must grow with congestion.
///
/// Runs its own scaled generator configs, so it does not share the main
/// harness; `cases` scenarios per congestion level.
pub fn congestion(base: &dstage_workload::GeneratorConfig, cases: usize) -> ExperimentReport {
    use dstage_core::cost::EuWeights;
    use dstage_core::heuristic::{run, HeuristicConfig};

    let weighting = Weighting::W1_10_100;
    let weights = weighting.weights();
    let eu = EuWeights::from_log10_ratio(2.0);
    let mut table = Table::new(
        "Mean weighted sum vs request-load multiplier (full_one, E-U ratio 10^2)",
        vec![
            "congestion".into(),
            "mean requests".into(),
            "C1".into(),
            "C3".into(),
            "C4".into(),
            "C4 - C1".into(),
        ],
    );
    for factor in [0.5, 1.0, 2.0, 4.0] {
        let config = base.clone().with_congestion(factor);
        let scenarios: Vec<_> =
            (0..cases as u64).map(|seed| dstage_workload::generate(&config, seed)).collect();
        let mean_requests = scenarios.iter().map(|s| s.request_count() as f64).sum::<f64>()
            / scenarios.len() as f64;
        let mean_for = |criterion: CostCriterion| -> f64 {
            scenarios
                .iter()
                .map(|s| {
                    let cfg = HeuristicConfig {
                        criterion,
                        eu,
                        priority_weights: weights.clone(),
                        caching: true,
                    };
                    run(s, Heuristic::FullPathOneDestination, &cfg)
                        .schedule
                        .evaluate(s, &weights)
                        .weighted_sum as f64
                })
                .sum::<f64>()
                / scenarios.len() as f64
        };
        let c1 = mean_for(CostCriterion::C1);
        let c3 = mean_for(CostCriterion::C3);
        let c4 = mean_for(CostCriterion::C4);
        table.push_row(vec![
            format!("{factor}x"),
            format!("{mean_requests:.0}"),
            format!("{c1:.1}"),
            format!("{c3:.1}"),
            format!("{c4:.1}"),
            format!("{:+.1}", c4 - c1),
        ]);
    }
    ExperimentReport {
        id: "congestion",
        title: "Criterion comparison under varying network congestion (§6 future work)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **extensions**: the `C3Floor` extension criterion (§5.4's "future cost
/// criteria might be designed to capture the original intent" of the
/// ratio criterion) against the paper's `C3` and the best point of `C4`,
/// for each heuristic.
pub fn extensions(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let point = EuRatioPoint::Log10(0); // C3/C3Floor are ratio-independent
    let mut table = Table::new(
        "Ratio criteria vs the floored extension (mean weighted sum; C4 at its best point)",
        vec!["heuristic".into(), "C3".into(), "C3f (extension)".into(), "C4 @ best x".into()],
    );
    for h in Heuristic::ALL {
        let c3 = harness
            .mean_weighted_sum(SchedulerKind::Pairing(h, CostCriterion::C3, point), weighting);
        let c3f = harness
            .mean_weighted_sum(SchedulerKind::Pairing(h, CostCriterion::C3Floor, point), weighting);
        let best = best_point(harness, h, CostCriterion::C4, weighting);
        let c4 = harness
            .mean_weighted_sum(SchedulerKind::Pairing(h, CostCriterion::C4, best), weighting);
        table.push_row(vec![
            h.to_string(),
            format!("{c3:.1}"),
            format!("{c3f:.1}"),
            format!("{c4:.1} @ {}", best.label()),
        ]);
    }
    ExperimentReport {
        id: "extensions",
        title: "Extension criterion C3Floor vs C3 and C4 (§5.4 future-criteria suggestion)".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **schedulers**: the extended scheduler matrix — the paper's three
/// heuristics plus the deadline-headroom extensions (`alap`, `rcd`)
/// under `Cost₄` across the full E-U sweep, against the upper bound.
/// The headroom schedulers trade peak E-U tuning for robustness to
/// arrival order, so their curves sit near (not above) the paper trio on
/// the static batch workload; their payoff is measured by the admission
/// tests and the chaos harness.
pub fn schedulers(harness: &Harness) -> ExperimentReport {
    let weighting = Weighting::W1_10_100;
    let n = EuRatioPoint::PAPER_SWEEP.len();
    let bounds = harness.bounds(weighting);
    let ub_mean = bounds.iter().map(|b| b.upper_bound as f64).sum::<f64>() / bounds.len() as f64;
    let mut series = vec![Series { label: "upper_bound".into(), values: vec![ub_mean; n] }];
    for h in Heuristic::EXTENDED {
        series.push(Series {
            label: format!("{h}/C4"),
            values: sweep_series(harness, h, CostCriterion::C4, weighting),
        });
    }
    ExperimentReport {
        id: "schedulers",
        title: "All five schedulers (C4) vs the upper bound, 1,10,100 weighting".into(),
        plots: vec![ascii_plot(
            "schedulers: mean weighted sum vs log10(E-U ratio), extended matrix",
            &x_labels(),
            &series,
            16,
        )],
        tables: vec![sweep_table(
            "Extended scheduler matrix (mean weighted sum over the test cases)",
            &series,
        )],
    }
}

/// **optimizer**: the anytime evict-and-rerun post-pass on versus off,
/// per scheduler, with the residual gap to `upper_bound` before and
/// after. The climb only adopts strict `E[S]` improvements, so the
/// "optimized" column is ≥ "base" case by case (asserted in tests), and
/// the gap delta is what the swap budget bought.
///
/// Runs its own generator like `congestion` (the trials re-run the full
/// heuristic, so the case count is deliberately small).
pub fn optimizer(
    base: &dstage_workload::GeneratorConfig,
    cases: usize,
    budget: u64,
) -> ExperimentReport {
    use dstage_core::bounds::upper_bound;
    use dstage_core::heuristic::{run, HeuristicConfig};

    let config = HeuristicConfig::paper_best();
    let weights = &config.priority_weights;
    let scenarios: Vec<_> =
        (0..cases as u64).map(|seed| dstage_workload::generate(base, seed)).collect();
    let n = scenarios.len() as f64;
    let ub_mean = scenarios.iter().map(|s| upper_bound(s, weights) as f64).sum::<f64>() / n;
    let mut table = Table::new(
        format!(
            "Evict-and-rerun post-pass, swap budget {budget} \
             (mean upper bound {ub_mean:.1}, E-U ratio 1, 1,10,100 weighting)"
        ),
        vec![
            "scheduler".into(),
            "base E[S]".into(),
            "optimized E[S]".into(),
            "gap before".into(),
            "gap after".into(),
            "gap closed".into(),
            "mean swaps".into(),
        ],
    );
    for h in Heuristic::EXTENDED {
        let mut base_acc = 0.0f64;
        let mut opt_acc = 0.0f64;
        let mut swaps_acc = 0.0f64;
        for scenario in &scenarios {
            let base_sum =
                run(scenario, h, &config).schedule.evaluate(scenario, weights).weighted_sum;
            let outcome = dstage_sched::optimize_schedule(scenario, h, &config, budget);
            base_acc += base_sum as f64;
            opt_acc += outcome.evaluation.weighted_sum as f64;
            swaps_acc += outcome.accepted as f64;
        }
        let (base_mean, opt_mean) = (base_acc / n, opt_acc / n);
        table.push_row(vec![
            h.to_string(),
            format!("{base_mean:.1}"),
            format!("{opt_mean:.1}"),
            format!("{:.1}", ub_mean - base_mean),
            format!("{:.1}", ub_mean - opt_mean),
            format!("{:+.1}", opt_mean - base_mean),
            format!("{:.1}", swaps_acc / n),
        ]);
    }
    ExperimentReport {
        id: "optimizer",
        title: "Anytime optimizer post-pass: E[S]-vs-upper_bound gap deltas".into(),
        tables: vec![table],
        plots: vec![],
    }
}

/// **fault_tolerance**: quantifies §4.4's redundancy rationale — copies
/// are retained on intermediate machines for γ after the latest deadline
/// precisely so that "a link, an intermediate node, or a destination"
/// losing its copy can be healed. We schedule each scenario statically,
/// destroy the earliest deliveries' destination copies shortly after they
/// arrive, re-plan online, and measure how many of the lost requests are
/// re-satisfied, as a function of γ.
pub fn fault_tolerance(base: &dstage_workload::GeneratorConfig, cases: usize) -> ExperimentReport {
    use dstage_core::heuristic::{run, HeuristicConfig};
    use dstage_dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
    use dstage_model::time::SimDuration;

    const LOSSES_PER_CASE: usize = 5;
    let policy = OnlinePolicy::paper_best();
    let weights = Weighting::W1_10_100.weights();
    let mut tables = Vec::new();
    // Two severities: losing only the destination copy (the original
    // sources can always re-send), and losing the destination copy *and*
    // every initial source of the item (a storage location going
    // off-line, §1) — then only staged intermediate copies can heal.
    for (kill_sources, caption) in [
        (false, "destination copy lost (sources intact)"),
        (true, "destination copy and all initial sources lost (intermediate copies only)"),
    ] {
        let mut table = Table::new(
            format!(
                "Re-delivery after destroying the {LOSSES_PER_CASE} earliest deliveries \
                 per case — {caption}"
            ),
            vec![
                "gamma [min]".into(),
                "losses".into(),
                "re-satisfied".into(),
                "recovery rate".into(),
                "weighted sum kept [%]".into(),
            ],
        );
        for gamma_mins in [0u64, 6, 12] {
            let config = dstage_workload::GeneratorConfig {
                gc_delay: SimDuration::from_mins(gamma_mins),
                ..base.clone()
            };
            let mut losses_total = 0usize;
            let mut recovered_total = 0usize;
            let mut kept_pct_acc = 0.0f64;
            for seed in 0..cases as u64 {
                let scenario = dstage_workload::generate(&config, seed);
                let offline = run(&scenario, policy.heuristic, &HeuristicConfig::paper_best());
                let offline_sum =
                    offline.schedule.evaluate(&scenario, &weights).weighted_sum.max(1);
                // Destroy the earliest deliveries (one minute after
                // arrival, while their deadlines are still ahead).
                let mut deliveries: Vec<_> = offline.schedule.deliveries().to_vec();
                deliveries.sort_by_key(|d| d.at);
                let mut events = Vec::new();
                let mut victims = Vec::new();
                for d in deliveries.iter().take(LOSSES_PER_CASE) {
                    let req = scenario.request(d.request);
                    let loss_at = d.at + SimDuration::from_mins(1);
                    if loss_at > req.deadline() {
                        continue; // already safe: data survived to its deadline
                    }
                    victims.push(d.request);
                    events.push(Event::new(
                        loss_at,
                        EventKind::CopyLoss { item: req.item(), machine: req.destination() },
                    ));
                    if kill_sources {
                        for src in scenario.item(req.item()).sources() {
                            events.push(Event::new(
                                loss_at,
                                EventKind::CopyLoss { item: req.item(), machine: src.machine },
                            ));
                        }
                    }
                }
                let log = EventLog::new(&scenario, events).expect("ids from the scenario");
                let outcome = simulate(&scenario, &log, &policy);
                losses_total += victims.len();
                recovered_total +=
                    victims.iter().filter(|&&r| outcome.executed.delivery_of(r).is_some()).count();
                let online_sum = outcome.executed.evaluate(&scenario, &weights).weighted_sum;
                kept_pct_acc += 100.0 * online_sum as f64 / offline_sum as f64;
            }
            let rate =
                if losses_total == 0 { 1.0 } else { recovered_total as f64 / losses_total as f64 };
            table.push_row(vec![
                gamma_mins.to_string(),
                losses_total.to_string(),
                recovered_total.to_string(),
                format!("{:.0}%", rate * 100.0),
                format!("{:.1}", kept_pct_acc / cases as f64),
            ]);
        }
        tables.push(table);
    }
    ExperimentReport {
        id: "fault_tolerance",
        title: "Copy-loss recovery vs garbage-collection delay γ (§4.4 rationale)".into(),
        tables,
        plots: vec![],
    }
}

/// **families**: every scheduler × every scenario family × fault mix in
/// one sweep. The paper's study stays inside the uniform random §5.3
/// generator; this experiment ranges the extended scheduler matrix over
/// the structured families too — satcom (trunk bottleneck), the
/// inter-datacenter WAN (fat diurnal links, DDCCast-style P2MP groups
/// whose destinations share staged upstream copies), the grid mesh, and
/// the Even/Medina/Rosén adversarial line — first fault-free, then under
/// a fixed copy-loss mix (the earliest deliveries destroyed shortly
/// after arrival, re-planned online with each scheduler).
///
/// Runs its own generators, so it does not share the main harness;
/// `cases` seeds per family.
pub fn families(cases: usize, small: bool) -> ExperimentReport {
    use dstage_core::heuristic::{run, HeuristicConfig};
    use dstage_dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
    use dstage_model::time::SimDuration;
    use dstage_workload::Family;

    const LOSSES_PER_CASE: usize = 3;
    let weights = Weighting::W1_10_100.weights();
    let config = HeuristicConfig::paper_best();
    let generate = |family: Family, seed: u64| {
        if small {
            family.generate_small(seed)
        } else {
            family.generate(seed)
        }
    };

    let mut header = vec!["family".into(), "mean requests".into(), "mean p2mp groups".into()];
    header.extend(Heuristic::EXTENDED.iter().map(ToString::to_string));
    let mut clean = Table::new("Mean weighted sum by scheduler and family (fault-free)", header);

    let mut header = vec!["family".into()];
    header.extend(Heuristic::EXTENDED.iter().map(ToString::to_string));
    let mut faulted = Table::new(
        format!(
            "Weighted sum kept [%] after destroying the {LOSSES_PER_CASE} earliest \
             deliveries per case (online re-plan per scheduler)"
        ),
        header,
    );

    for family in Family::ALL {
        let scenarios: Vec<_> = (0..cases as u64).map(|seed| generate(family, seed)).collect();
        let mean_requests = scenarios.iter().map(|s| s.request_count() as f64).sum::<f64>()
            / scenarios.len().max(1) as f64;
        let mean_groups = scenarios.iter().map(|s| s.p2mp_groups().len() as f64).sum::<f64>()
            / scenarios.len().max(1) as f64;

        let mut clean_row =
            vec![family.to_string(), format!("{mean_requests:.0}"), format!("{mean_groups:.0}")];
        let mut faulted_row = vec![family.to_string()];
        for h in Heuristic::EXTENDED {
            let mean = scenarios
                .iter()
                .map(|s| run(s, h, &config).schedule.evaluate(s, &weights).weighted_sum as f64)
                .sum::<f64>()
                / scenarios.len().max(1) as f64;
            clean_row.push(format!("{mean:.1}"));

            let policy = OnlinePolicy { heuristic: h, config: config.clone(), optimize_budget: 0 };
            let mut kept_pct_acc = 0.0f64;
            for scenario in &scenarios {
                let offline = run(scenario, h, &config);
                let offline_sum = offline.schedule.evaluate(scenario, &weights).weighted_sum.max(1);
                let mut deliveries: Vec<_> = offline.schedule.deliveries().to_vec();
                deliveries.sort_by_key(|d| d.at);
                let mut events = Vec::new();
                for d in deliveries.iter().take(LOSSES_PER_CASE) {
                    let req = scenario.request(d.request);
                    let loss_at = d.at + SimDuration::from_mins(1);
                    if loss_at > req.deadline() {
                        continue; // already safe: data survived to its deadline
                    }
                    events.push(Event::new(
                        loss_at,
                        EventKind::CopyLoss { item: req.item(), machine: req.destination() },
                    ));
                }
                let log = EventLog::new(scenario, events).expect("ids from the scenario");
                let outcome = simulate(scenario, &log, &policy);
                let online_sum = outcome.executed.evaluate(scenario, &weights).weighted_sum;
                kept_pct_acc += 100.0 * online_sum as f64 / offline_sum as f64;
            }
            faulted_row.push(format!("{:.1}", kept_pct_acc / scenarios.len().max(1) as f64));
        }
        clean.push_row(clean_row);
        faulted.push_row(faulted_row);
    }

    ExperimentReport {
        id: "families",
        title: "Scheduler matrix across scenario families, fault-free and under copy loss".into(),
        tables: vec![clean, faulted],
        plots: vec![],
    }
}

/// Runs every experiment in paper order.
pub fn all(harness: &Harness) -> Vec<ExperimentReport> {
    vec![
        fig2(harness),
        fig3(harness),
        fig4(harness),
        fig5(harness),
        weights(harness),
        prio_first(harness),
        minmax(harness),
        exec(harness),
    ]
}

/// An experiment's prefetch set: the (scheduler, weighting) result
/// series it will request from the harness, plus the weightings whose
/// bounds it reads — the input for [`Harness::prefetch`].
pub type PrefetchSet = (Vec<(SchedulerKind, Weighting)>, Vec<Weighting>);

/// The prefetch set of one experiment.
///
/// Returns `None` for unknown ids and for the experiments that run their
/// own scaled generators instead of the shared harness
/// (`fault_tolerance`, `congestion`, `families`).
#[must_use]
pub fn work_units(id: &str) -> Option<PrefetchSet> {
    let w = Weighting::W1_10_100;
    let sweep = |h: Heuristic, c: CostCriterion, weighting: Weighting| {
        EuRatioPoint::PAPER_SWEEP
            .iter()
            .map(move |&p| (SchedulerKind::Pairing(h, c, p), weighting))
            .collect::<Vec<_>>()
    };
    let all_criteria_sweeps =
        |h: Heuristic| h.criteria().iter().flat_map(|&c| sweep(h, c, w)).collect::<Vec<_>>();
    match id {
        "fig2" => {
            let mut units =
                vec![(SchedulerKind::SingleDijkstraRandom, w), (SchedulerKind::RandomDijkstra, w)];
            for h in Heuristic::ALL {
                units.extend(sweep(h, CostCriterion::C4, w));
            }
            Some((units, vec![w]))
        }
        "fig3" => Some((all_criteria_sweeps(Heuristic::PartialPath), vec![])),
        "fig4" => Some((all_criteria_sweeps(Heuristic::FullPathOneDestination), vec![])),
        "fig5" => Some((all_criteria_sweeps(Heuristic::FullPathAllDestinations), vec![])),
        "weights" => {
            // `best_point` scans the C4 sweep under both weightings.
            let mut units = Vec::new();
            for h in Heuristic::ALL {
                for weighting in Weighting::ALL {
                    units.extend(sweep(h, CostCriterion::C4, weighting));
                }
            }
            Some((units, vec![]))
        }
        "prio_first" | "prio-first" => {
            let mut units = vec![(SchedulerKind::PriorityFirst, w)];
            for h in Heuristic::ALL {
                units.extend(all_criteria_sweeps(h));
            }
            Some((units, vec![]))
        }
        "minmax" => {
            let mut units = Vec::new();
            for h in Heuristic::ALL {
                units.extend(sweep(h, CostCriterion::C4, w));
            }
            Some((units, vec![]))
        }
        "exec" => {
            let point = EuRatioPoint::Log10(0);
            let units = Heuristic::ALL
                .iter()
                .flat_map(|&h| {
                    h.criteria()
                        .iter()
                        .map(move |&c| (SchedulerKind::Pairing(h, c, point), w))
                        .collect::<Vec<_>>()
                })
                .collect();
            Some((units, vec![]))
        }
        "schedulers" => {
            let mut units = Vec::new();
            for h in Heuristic::EXTENDED {
                units.extend(sweep(h, CostCriterion::C4, w));
            }
            Some((units, vec![w]))
        }
        "extensions" => {
            let point = EuRatioPoint::Log10(0);
            let mut units = Vec::new();
            for h in Heuristic::ALL {
                units.push((SchedulerKind::Pairing(h, CostCriterion::C3, point), w));
                units.push((SchedulerKind::Pairing(h, CostCriterion::C3Floor, point), w));
                units.extend(sweep(h, CostCriterion::C4, w));
            }
            Some((units, vec![]))
        }
        _ => None,
    }
}

/// The prefetch set of the full [`all`] suite.
#[must_use]
pub fn all_work_units() -> PrefetchSet {
    let mut units = Vec::new();
    let mut bounds = Vec::new();
    for id in ["fig2", "fig3", "fig4", "fig5", "weights", "prio_first", "minmax", "exec"] {
        let (u, b) = work_units(id).expect("known experiment id");
        units.extend(u);
        bounds.extend(b);
    }
    (units, bounds)
}

/// Runs every experiment in paper order, computing the underlying sweep
/// on `threads` worker threads first. The rendered reports are
/// byte-identical to [`all`]'s: the parallel phase only populates the
/// harness caches (in stable work-unit order), and rendering then reads
/// them sequentially.
pub fn all_parallel(harness: &Harness, threads: usize) -> Vec<ExperimentReport> {
    let (units, bounds) = all_work_units();
    harness.prefetch(&units, &bounds, threads);
    all(harness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_workload::GeneratorConfig;

    fn tiny_harness() -> Harness {
        Harness::new(&GeneratorConfig::small(), 2)
    }

    #[test]
    fn fig2_has_seven_series_and_eleven_points() {
        let h = tiny_harness();
        let r = fig2(&h);
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].rows.len(), 7);
        assert_eq!(r.tables[0].columns.len(), 12); // label + 11 points
        assert_eq!(r.plots.len(), 1);
    }

    #[test]
    fn criterion_figures_have_expected_rows() {
        let h = tiny_harness();
        assert_eq!(fig3(&h).tables[0].rows.len(), 4);
        assert_eq!(fig4(&h).tables[0].rows.len(), 4);
        assert_eq!(fig5(&h).tables[0].rows.len(), 3);
    }

    #[test]
    fn weights_table_covers_heuristics_and_weightings() {
        let h = tiny_harness();
        let r = weights(&h);
        assert_eq!(r.tables[0].rows.len(), 6); // 3 heuristics x 2 weightings
    }

    #[test]
    fn prio_first_covers_all_eleven_pairs() {
        let h = tiny_harness();
        let r = prio_first(&h);
        assert_eq!(r.tables[0].rows.len(), 11); // 4 + 4 + 3
    }

    #[test]
    fn exec_and_minmax_render() {
        let h = tiny_harness();
        assert_eq!(minmax(&h).tables[0].rows.len(), 3);
        assert_eq!(exec(&h).tables[0].rows.len(), 11);
    }

    #[test]
    fn schedulers_reports_all_five() {
        let h = tiny_harness();
        let r = schedulers(&h);
        assert_eq!(r.tables[0].rows.len(), 6); // upper bound + 5 schedulers
        assert_eq!(r.tables[0].columns.len(), 12);
        for heuristic in Heuristic::EXTENDED {
            assert!(
                r.tables[0].rows.iter().any(|row| row[0] == format!("{heuristic}/C4")),
                "{heuristic} missing from the extended matrix"
            );
        }
    }

    #[test]
    fn optimizer_reports_every_scheduler_and_never_regresses() {
        use dstage_core::heuristic::{run, HeuristicConfig};

        let base = GeneratorConfig::small();
        let r = optimizer(&base, 2, 4);
        assert_eq!(r.tables[0].rows.len(), 5);
        // The acceptance guarantee, case by case: the post-pass never
        // decreases E[S] on any sweep case.
        let config = HeuristicConfig::paper_best();
        for seed in 0..2u64 {
            let scenario = dstage_workload::generate(&base, seed);
            for h in Heuristic::EXTENDED {
                let plain = run(&scenario, h, &config)
                    .schedule
                    .evaluate(&scenario, &config.priority_weights)
                    .weighted_sum;
                let best = dstage_sched::optimize_schedule(&scenario, h, &config, 4);
                assert!(
                    best.evaluation.weighted_sum >= plain,
                    "{h} regressed on seed {seed}: {} < {plain}",
                    best.evaluation.weighted_sum
                );
            }
        }
    }

    #[test]
    fn report_text_and_csv_render() {
        let h = tiny_harness();
        let r = fig5(&h);
        let text = r.to_text();
        assert!(text.contains("fig5"));
        let csvs = r.csv_files();
        assert_eq!(csvs.len(), 1);
        assert!(csvs[0].0.ends_with(".csv"));
        assert!(csvs[0].1.lines().count() >= 4);
    }
}
