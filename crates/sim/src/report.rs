//! Plain-text rendering of experiment results: aligned ASCII tables, CSV
//! series, and a small ASCII line plot for figure-shaped data.

use std::fmt::Write as _;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data (each row has `columns.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table { title: title.into(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let render = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:>w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", render(&self.columns, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// One line of a figure: a label plus y-values (one per x position).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// y-values, one per x tick (NaN for missing points).
    pub values: Vec<f64>,
}

/// Renders figure-shaped data (several series over shared x ticks) as an
/// ASCII plot, mirroring the paper's figures closely enough to eyeball
/// crossovers. Each series is drawn with its own glyph.
///
/// # Panics
///
/// Panics if a series length does not match `x_labels`, or no finite
/// value exists.
#[must_use]
pub fn ascii_plot(title: &str, x_labels: &[String], series: &[Series], height: usize) -> String {
    assert!(!series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), x_labels.len(), "series {} has wrong length", s.label);
    }
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let finite: Vec<f64> =
        series.iter().flat_map(|s| s.values.iter().copied()).filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(lo.is_finite() && hi.is_finite(), "no finite values to plot");
    let span = if (hi - lo).abs() < f64::EPSILON { 1.0 } else { hi - lo };
    let height = height.max(4);
    let col_width = 6usize;
    let width = x_labels.len() * col_width;

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let y = ((v - lo) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            let col = xi * col_width + col_width / 2;
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(
        out,
        "   legend: {}",
        series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", GLYPHS[i % GLYPHS.len()], s.label))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for (ri, row) in grid.iter().enumerate() {
        let y_val = hi - (hi - lo) * ri as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>9.0} |{line}");
    }
    let mut axis = String::new();
    for label in x_labels {
        let _ = write!(axis, "{label:^col_width$}", col_width = col_width);
    }
    let _ = writeln!(out, "{:>9}  {}", "", "-".repeat(width));
    let _ = writeln!(out, "{:>9}  {axis}", "");
    out
}

/// Renders a schedule as a per-link timeline (a text Gantt chart): one
/// row per virtual link that carried at least one transfer, with each
/// transfer drawn as a bar over a common time axis.
///
/// Handy for eyeballing contention: serialized transfers on one link show
/// up as adjacent bars.
#[must_use]
pub fn render_schedule_timeline(
    scenario: &dstage_model::scenario::Scenario,
    schedule: &dstage_core::schedule::Schedule,
    width: usize,
) -> String {
    use std::fmt::Write as _;
    let width = width.max(20);
    let transfers = schedule.transfers();
    let mut out = String::new();
    if transfers.is_empty() {
        let _ = writeln!(out, "(empty schedule)");
        return out;
    }
    let t0 = transfers.iter().map(|t| t.start).min().expect("non-empty");
    let t1 = transfers.iter().map(|t| t.arrival).max().expect("non-empty");
    let span = (t1.as_millis() - t0.as_millis()).max(1);
    let col = |at: dstage_model::time::SimTime| -> usize {
        ((at.as_millis() - t0.as_millis()) as u128 * (width as u128 - 1) / span as u128) as usize
    };
    let mut links: Vec<_> = transfers.iter().map(|t| t.link).collect();
    links.sort();
    links.dedup();
    let _ = writeln!(out, "schedule timeline [{t0} .. {t1}], one row per used link:");
    for link in links {
        let mut row = vec![' '; width];
        for t in transfers.iter().filter(|t| t.link == link) {
            let (a, b) = (col(t.start), col(t.arrival).max(col(t.start)));
            let glyph = char::from_digit((t.item.index() % 36) as u32, 36).unwrap_or('#');
            for cell in row.iter_mut().take(b + 1).skip(a) {
                *cell = glyph;
            }
        }
        let vl = scenario.network().link(link);
        let label = format!(
            "{link} {}->{}",
            scenario.network().machine(vl.source()).name(),
            scenario.network().machine(vl.destination()).name()
        );
        let _ = writeln!(out, "{label:>24} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>24}  (bars are item ids, base-36)", "");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", vec!["x".into(), "y".into()]);
        t.push_row(vec!["1".into(), "long-value".into()]);
        t.push_row(vec!["22".into(), "b".into()]);
        t
    }

    #[test]
    fn ascii_table_aligns_columns() {
        let text = sample_table().to_ascii();
        assert!(text.contains("## demo"));
        let lines: Vec<&str> = text.lines().collect();
        // Title + header + separator + two rows.
        assert_eq!(lines.len(), 5);
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{text}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn plot_renders_all_series() {
        let x: Vec<String> = ["-1", "0", "1"].iter().map(|s| s.to_string()).collect();
        let plot = ascii_plot(
            "fig",
            &x,
            &[
                Series { label: "up".into(), values: vec![1.0, 2.0, 3.0] },
                Series { label: "down".into(), values: vec![3.0, 2.0, 1.0] },
            ],
            8,
        );
        assert!(plot.contains("*=up"));
        assert!(plot.contains("o=down"));
        assert!(plot.matches('*').count() >= 3);
    }

    #[test]
    fn plot_tolerates_nan_points() {
        let x: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let plot =
            ascii_plot("fig", &x, &[Series { label: "s".into(), values: vec![f64::NAN, 1.0] }], 5);
        assert!(plot.contains("s"));
    }

    #[test]
    fn timeline_renders_used_links() {
        use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
        let scenario = dstage_workload::small::two_hop_chain();
        let out = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
        let text = render_schedule_timeline(&scenario, &out.schedule, 60);
        assert!(text.contains("schedule timeline"));
        assert!(text.contains("m0->m1"));
        assert!(text.contains("m1->m2"));
        // Two items scheduled: glyphs 0 and 1 both appear.
        assert!(text.contains('0'));
        assert!(text.contains('1'));
    }

    #[test]
    fn timeline_of_empty_schedule() {
        let scenario = dstage_workload::small::no_requests();
        let text =
            render_schedule_timeline(&scenario, &dstage_core::schedule::Schedule::default(), 40);
        assert!(text.contains("empty schedule"));
    }

    #[test]
    fn plot_handles_constant_series() {
        let x: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let plot =
            ascii_plot("flat", &x, &[Series { label: "s".into(), values: vec![2.0, 2.0] }], 5);
        assert!(plot.contains("## flat"));
    }
}
