//! Experiment harness reproducing the simulation study of the ICDCS 2000
//! data staging paper (Figures 2–5 plus the §5.4 text results).
//!
//! The paper evaluates eleven heuristic/cost-criterion pairs on 40
//! randomly generated test cases, sweeping the E-U ratio over
//! `log10 ∈ {−3 … 5}` plus both extremes, under two priority weightings.
//! [`runner::Harness`] owns the generated cases and caches every
//! (scheduler × weighting × E-U point) result; the [`experiments`] module
//! renders each paper artifact from those cached series. The
//! [`executor`] module fans the sweep's work units out over a
//! deterministic worker pool (`--threads` / `DSTAGE_THREADS`); a
//! parallel sweep renders reports byte-identical to a sequential one.
//!
//! # Examples
//!
//! Regenerate a small-scale Figure 5:
//!
//! ```
//! use dstage_sim::experiments::fig5;
//! use dstage_sim::runner::Harness;
//! use dstage_workload::GeneratorConfig;
//!
//! let harness = Harness::new(&GeneratorConfig::small(), 2);
//! let report = fig5(&harness);
//! println!("{}", report.to_text());
//! ```
//!
//! The `figures` binary drives the full 40-case paper configuration:
//! `cargo run --release -p dstage-sim --bin figures -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;
pub mod sweep;

pub use executor::{available_threads, resolve_threads, THREADS_ENV_VAR};
pub use experiments::ExperimentReport;
pub use runner::{Harness, SchedulerKind, Weighting};
pub use stats::Stats;
pub use sweep::EuRatioPoint;
