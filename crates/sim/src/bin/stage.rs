//! Schedules a scenario from a JSON file (as produced by the `scenarios`
//! exporter or hand-written) and prints the outcome: deliveries,
//! per-class statistics, and a per-link timeline.
//!
//! ```text
//! stage <scenario.json> [OPTIONS]
//!
//! OPTIONS:
//!   --heuristic H   partial | full-one (default) | full-all
//!   --criterion C   C1 | C2 | C3 | C4 (default) | C3f
//!   --ratio X       log10 of the E-U ratio (default 2)
//!   --weights W     1,5,10 | 1,10,100 (default)
//!   --timeline      print the per-link schedule timeline
//!   --json          print the schedule as JSON instead of text
//! ```

use std::process::ExitCode;

use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_sim::report::render_schedule_timeline;

struct Options {
    path: String,
    heuristic: Heuristic,
    criterion: CostCriterion,
    ratio: f64,
    weights: PriorityWeights,
    timeline: bool,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        path: String::new(),
        heuristic: Heuristic::FullPathOneDestination,
        criterion: CostCriterion::C4,
        ratio: 2.0,
        weights: PriorityWeights::paper_1_10_100(),
        timeline: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--heuristic" => {
                options.heuristic = match args.next().as_deref() {
                    Some("partial") => Heuristic::PartialPath,
                    Some("full-one") | Some("full_one") => Heuristic::FullPathOneDestination,
                    Some("full-all") | Some("full_all") => Heuristic::FullPathAllDestinations,
                    other => return Err(format!("unknown heuristic {other:?}")),
                };
            }
            "--criterion" => {
                options.criterion = match args.next().as_deref() {
                    Some("C1") | Some("c1") => CostCriterion::C1,
                    Some("C2") | Some("c2") => CostCriterion::C2,
                    Some("C3") | Some("c3") => CostCriterion::C3,
                    Some("C4") | Some("c4") => CostCriterion::C4,
                    Some("C3f") | Some("c3f") => CostCriterion::C3Floor,
                    other => return Err(format!("unknown criterion {other:?}")),
                };
            }
            "--ratio" => {
                options.ratio = args
                    .next()
                    .ok_or("--ratio needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid ratio: {e}"))?;
            }
            "--weights" => {
                options.weights = match args.next().as_deref() {
                    Some("1,5,10") => PriorityWeights::paper_1_5_10(),
                    Some("1,10,100") => PriorityWeights::paper_1_10_100(),
                    other => return Err(format!("unknown weighting {other:?}")),
                };
            }
            "--timeline" => options.timeline = true,
            "--json" => options.json = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => {
                if !options.path.is_empty() {
                    return Err("exactly one scenario file expected".into());
                }
                options.path = other.to_string();
            }
        }
    }
    if options.path.is_empty() {
        return Err("a scenario file is required".into());
    }
    Ok(options)
}

/// Accepts either a bare `Scenario` JSON or the `scenarios` exporter's
/// wrapper object with a `scenario` field.
fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(s) = serde_json::from_str::<Scenario>(&text) {
        return Ok(s);
    }
    #[derive(serde::Deserialize)]
    struct Wrapper {
        scenario: Scenario,
    }
    serde_json::from_str::<Wrapper>(&text)
        .map(|w| w.scenario)
        .map_err(|e| format!("{path} is not a scenario JSON: {e}"))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: stage <scenario.json> [--heuristic partial|full-one|full-all] \
                 [--criterion C1|C2|C3|C4|C3f] [--ratio X] [--weights 1,5,10|1,10,100] \
                 [--timeline] [--json]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let scenario = match load_scenario(&options.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = HeuristicConfig {
        criterion: options.criterion,
        eu: EuWeights::from_log10_ratio(options.ratio),
        priority_weights: options.weights.clone(),
        caching: true,
    };
    let outcome = run(&scenario, options.heuristic, &config);
    if let Err(e) = outcome.schedule.validate(&scenario) {
        eprintln!("internal error: produced schedule failed validation: {e}");
        return ExitCode::FAILURE;
    }

    if options.json {
        match serde_json::to_string_pretty(&outcome.schedule) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let eval = outcome.schedule.evaluate(&scenario, &options.weights);
    println!(
        "{} + {} @ ratio 10^{}: weighted sum {} ({} of {} requests satisfied)",
        options.heuristic,
        options.criterion,
        options.ratio,
        eval.weighted_sum,
        eval.satisfied_count,
        eval.request_count
    );
    for (level, (sat, total)) in
        eval.satisfied_by_priority.iter().zip(eval.total_by_priority.iter()).enumerate()
    {
        println!("  priority {level}: {sat}/{total}");
    }
    println!(
        "  {} transfers, {} Dijkstra runs, {:.1} ms",
        outcome.metrics.transfers_committed,
        outcome.metrics.dijkstra_runs,
        outcome.metrics.elapsed.as_secs_f64() * 1_000.0
    );
    if options.timeline {
        println!();
        println!("{}", render_schedule_timeline(&scenario, &outcome.schedule, 100));
    }
    ExitCode::SUCCESS
}
