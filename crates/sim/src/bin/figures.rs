//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [OPTIONS] [EXPERIMENT...]
//!
//! EXPERIMENT: fig2 fig3 fig4 fig5 weights prio-first minmax exec extensions
//!             schedulers optimizer fault-tolerance congestion families | all
//!             (default: all)
//!
//! OPTIONS:
//!   --cases N     number of random test cases (default 40, the paper's)
//!   --budget N    swap budget of the optimizer post-pass (default 8)
//!   --small       use the scaled-down generator config (fast smoke run)
//!   --out DIR     write <experiment>.txt and CSV series to DIR
//!                 (default: results/)
//!   --threads N   worker threads for the sweep (default: DSTAGE_THREADS,
//!                 then the machine's available parallelism); results are
//!                 byte-identical for every thread count
//!   --quiet       suppress progress logging
//!   --profile     write per-stage wall times and the observability-tap
//!                 counters to <out>/PROFILE_sweep.json after the run
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use dstage_sim::experiments::{self, ExperimentReport};
use dstage_sim::runner::Harness;
use dstage_workload::GeneratorConfig;

/// Canonical experiment names, in default run order. Aliases with
/// underscores (`prio_first`, `fault_tolerance`) normalize to these.
const EXPERIMENT_NAMES: [&str; 14] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "weights",
    "prio-first",
    "minmax",
    "exec",
    "extensions",
    "schedulers",
    "optimizer",
    "fault-tolerance",
    "congestion",
    "families",
];

struct Options {
    cases: usize,
    budget: u64,
    small: bool,
    out: PathBuf,
    threads: Option<usize>,
    quiet: bool,
    profile: bool,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        cases: 40,
        budget: 8,
        small: false,
        out: PathBuf::from("results"),
        threads: None,
        quiet: false,
        profile: false,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                let value = args.next().ok_or("--cases needs a number")?;
                options.cases =
                    value.parse().map_err(|_| format!("invalid case count {value:?}"))?;
            }
            "--small" => options.small = true,
            "--budget" => {
                let value = args.next().ok_or("--budget needs a number")?;
                options.budget =
                    value.parse().map_err(|_| format!("invalid swap budget {value:?}"))?;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a number")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("invalid thread count {value:?}"))?);
            }
            "--out" => {
                options.out = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            "--quiet" => options.quiet = true,
            "--profile" => options.profile = true,
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => options.experiments.push(other.to_string()),
        }
    }
    if options.experiments.is_empty() || options.experiments.iter().any(|e| e == "all") {
        options.experiments = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    }
    Ok(options)
}

/// One named stage of the run with its measured wall time.
struct StageTiming {
    name: String,
    wall_ms: u64,
}

fn elapsed_ms(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Renders the profile JSON: run parameters, per-stage wall times, and
/// the observability-tap registry (every counter, plus summary stats of
/// every histogram). Wall times are diagnostic — the profile file is the
/// one output that is *expected* to differ run to run.
fn profile_json(options: &Options, threads: usize, stages: &[StageTiming]) -> String {
    use dstage_obs::metrics::{registry, MetricKind};
    use serde::Value;

    let stage_values = stages
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_string(), Value::String(s.name.clone())),
                ("wall_ms".to_string(), Value::UInt(s.wall_ms)),
            ])
        })
        .collect();

    let mut layers: Vec<(String, Value)> = Vec::new();
    for def in registry() {
        let series_name = match def.label {
            Some((key, value)) => format!("{}{{{key}=\"{value}\"}}", def.name),
            None => def.name.to_string(),
        };
        let value = match def.kind {
            MetricKind::Counter(c) => Value::UInt(c.get()),
            MetricKind::Gauge(g) => Value::Int(g.get()),
            MetricKind::Histogram(h) => {
                let snap = h.snapshot();
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(snap.count)),
                    ("sum".to_string(), Value::UInt(snap.sum)),
                    ("mean".to_string(), Value::UInt(snap.mean())),
                    ("max".to_string(), Value::UInt(snap.max)),
                ])
            }
        };
        match layers.iter_mut().find(|(layer, _)| layer == def.layer) {
            Some((_, Value::Object(entries))) => entries.push((series_name, value)),
            _ => layers.push((def.layer.to_string(), Value::Object(vec![(series_name, value)]))),
        }
    }

    let root = Value::Object(vec![
        ("scale".to_string(), {
            Value::String(if options.small { "small" } else { "paper" }.to_string())
        }),
        ("cases".to_string(), Value::UInt(options.cases as u64)),
        ("threads".to_string(), Value::UInt(threads as u64)),
        ("obs_enabled".to_string(), Value::Bool(dstage_obs::enabled())),
        ("stages".to_string(), Value::Array(stage_values)),
        ("metrics".to_string(), Value::Object(layers)),
    ]);
    serde_json::to_string_pretty(&root).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

fn run_experiment(name: &str, harness: &Harness, options: &Options) -> Option<ExperimentReport> {
    match name {
        "fig2" => Some(experiments::fig2(harness)),
        "fig3" => Some(experiments::fig3(harness)),
        "fig4" => Some(experiments::fig4(harness)),
        "fig5" => Some(experiments::fig5(harness)),
        "weights" => Some(experiments::weights(harness)),
        "prio-first" | "prio_first" => Some(experiments::prio_first(harness)),
        "minmax" => Some(experiments::minmax(harness)),
        "exec" => Some(experiments::exec(harness)),
        "extensions" => Some(experiments::extensions(harness)),
        "schedulers" => Some(experiments::schedulers(harness)),
        "optimizer" => {
            let base =
                if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
            // Each climb trial re-runs the full heuristic; a reduced case
            // count keeps the pass tractable at paper scale.
            Some(experiments::optimizer(&base, options.cases.min(10), options.budget))
        }
        "fault-tolerance" | "fault_tolerance" => {
            let base =
                if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
            Some(experiments::fault_tolerance(&base, options.cases.min(10)))
        }
        "congestion" => {
            let base =
                if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
            // Congestion sweeps 4x the load; a reduced case count keeps it
            // tractable while staying statistically meaningful.
            Some(experiments::congestion(&base, options.cases.min(10)))
        }
        "families" => {
            // Five schedulers x five families, fault-free and re-planned
            // under copy loss; a reduced case count keeps the online
            // simulations tractable at paper scale.
            Some(experiments::families(options.cases.min(10), options.small))
        }
        _ => None,
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: figures [--cases N] [--budget N] [--small] [--out DIR] [--threads N] \
                 [--quiet] [--profile] \
                 [fig2 fig3 fig4 fig5 weights prio-first minmax exec extensions schedulers \
                 optimizer fault-tolerance congestion families | all]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    // Reject unknown experiment names before any sweep work starts, with
    // the same friendly exit-2 contract the daemon's --scheduler flag has.
    for name in &options.experiments {
        let canonical = name.replace('_', "-");
        if !EXPERIMENT_NAMES.contains(&canonical.as_str()) {
            eprintln!(
                "error: unknown experiment {name:?} (valid: {}, all)",
                EXPERIMENT_NAMES.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let config = if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
    let mut harness = Harness::new(&config, options.cases);
    harness.set_verbose(!options.quiet);
    let threads = dstage_sim::executor::resolve_threads(options.threads);
    if !options.quiet {
        eprintln!(
            "[figures] {} cases at {} scale on {} threads -> {}",
            options.cases,
            if options.small { "small" } else { "paper" },
            threads,
            options.out.display()
        );
    }

    // Fan the harness-backed sweep work out before rendering; reports are
    // byte-identical to a sequential run (see dstage_sim::executor).
    let mut units = Vec::new();
    let mut bound_weightings = Vec::new();
    for name in &options.experiments {
        if let Some((u, b)) = experiments::work_units(name) {
            units.extend(u);
            bound_weightings.extend(b);
        }
    }
    let mut stages: Vec<StageTiming> = Vec::new();
    let prefetch_started = std::time::Instant::now();
    harness.prefetch(&units, &bound_weightings, threads);
    stages
        .push(StageTiming { name: "prefetch".to_string(), wall_ms: elapsed_ms(prefetch_started) });

    if let Err(e) = std::fs::create_dir_all(&options.out) {
        eprintln!("error: cannot create {}: {e}", options.out.display());
        return ExitCode::FAILURE;
    }

    for name in &options.experiments {
        let started = std::time::Instant::now();
        let Some(report) = run_experiment(name, &harness, &options) else {
            eprintln!("error: unknown experiment {name:?}");
            return ExitCode::FAILURE;
        };
        let text = report.to_text();
        println!("{text}");
        let txt_path = options.out.join(format!("{}.txt", report.id));
        if let Err(e) =
            std::fs::File::create(&txt_path).and_then(|mut f| f.write_all(text.as_bytes()))
        {
            eprintln!("error: cannot write {}: {e}", txt_path.display());
            return ExitCode::FAILURE;
        }
        for (file, csv) in report.csv_files() {
            let path = options.out.join(file);
            if let Err(e) =
                std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))
            {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        stages.push(StageTiming { name: name.clone(), wall_ms: elapsed_ms(started) });
        if !options.quiet {
            eprintln!("[figures] {name} done in {:.1?}", started.elapsed());
        }
    }

    if options.profile {
        let path = options.out.join("PROFILE_sweep.json");
        let json = profile_json(&options, threads, &stages);
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| {
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")
        }) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            eprintln!("[figures] profile -> {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
