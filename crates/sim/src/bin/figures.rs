//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [OPTIONS] [EXPERIMENT...]
//!
//! EXPERIMENT: fig2 fig3 fig4 fig5 weights prio-first minmax exec extensions fault-tolerance congestion | all
//!             (default: all)
//!
//! OPTIONS:
//!   --cases N     number of random test cases (default 40, the paper's)
//!   --small       use the scaled-down generator config (fast smoke run)
//!   --out DIR     write <experiment>.txt and CSV series to DIR
//!                 (default: results/)
//!   --threads N   worker threads for the sweep (default: DSTAGE_THREADS,
//!                 then the machine's available parallelism); results are
//!                 byte-identical for every thread count
//!   --quiet       suppress progress logging
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use dstage_sim::experiments::{self, ExperimentReport};
use dstage_sim::runner::Harness;
use dstage_workload::GeneratorConfig;

struct Options {
    cases: usize,
    small: bool,
    out: PathBuf,
    threads: Option<usize>,
    quiet: bool,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        cases: 40,
        small: false,
        out: PathBuf::from("results"),
        threads: None,
        quiet: false,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                let value = args.next().ok_or("--cases needs a number")?;
                options.cases =
                    value.parse().map_err(|_| format!("invalid case count {value:?}"))?;
            }
            "--small" => options.small = true,
            "--threads" => {
                let value = args.next().ok_or("--threads needs a number")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("invalid thread count {value:?}"))?);
            }
            "--out" => {
                options.out = PathBuf::from(args.next().ok_or("--out needs a directory")?);
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => {
                return Err(String::new()); // triggers usage
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            other => options.experiments.push(other.to_string()),
        }
    }
    if options.experiments.is_empty() || options.experiments.iter().any(|e| e == "all") {
        options.experiments = [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "weights",
            "prio-first",
            "minmax",
            "exec",
            "extensions",
            "fault-tolerance",
            "congestion",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Ok(options)
}

fn run_experiment(name: &str, harness: &Harness, options: &Options) -> Option<ExperimentReport> {
    match name {
        "fig2" => Some(experiments::fig2(harness)),
        "fig3" => Some(experiments::fig3(harness)),
        "fig4" => Some(experiments::fig4(harness)),
        "fig5" => Some(experiments::fig5(harness)),
        "weights" => Some(experiments::weights(harness)),
        "prio-first" | "prio_first" => Some(experiments::prio_first(harness)),
        "minmax" => Some(experiments::minmax(harness)),
        "exec" => Some(experiments::exec(harness)),
        "extensions" => Some(experiments::extensions(harness)),
        "fault-tolerance" | "fault_tolerance" => {
            let base =
                if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
            Some(experiments::fault_tolerance(&base, options.cases.min(10)))
        }
        "congestion" => {
            let base =
                if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
            // Congestion sweeps 4x the load; a reduced case count keeps it
            // tractable while staying statistically meaningful.
            Some(experiments::congestion(&base, options.cases.min(10)))
        }
        _ => None,
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: figures [--cases N] [--small] [--out DIR] [--threads N] [--quiet] \
                 [fig2 fig3 fig4 fig5 weights prio-first minmax exec extensions fault-tolerance congestion | all]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    let config = if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
    let mut harness = Harness::new(&config, options.cases);
    harness.set_verbose(!options.quiet);
    let threads = dstage_sim::executor::resolve_threads(options.threads);
    if !options.quiet {
        eprintln!(
            "[figures] {} cases at {} scale on {} threads -> {}",
            options.cases,
            if options.small { "small" } else { "paper" },
            threads,
            options.out.display()
        );
    }

    // Fan the harness-backed sweep work out before rendering; reports are
    // byte-identical to a sequential run (see dstage_sim::executor).
    let mut units = Vec::new();
    let mut bound_weightings = Vec::new();
    for name in &options.experiments {
        if let Some((u, b)) = experiments::work_units(name) {
            units.extend(u);
            bound_weightings.extend(b);
        }
    }
    harness.prefetch(&units, &bound_weightings, threads);

    if let Err(e) = std::fs::create_dir_all(&options.out) {
        eprintln!("error: cannot create {}: {e}", options.out.display());
        return ExitCode::FAILURE;
    }

    for name in &options.experiments {
        let started = std::time::Instant::now();
        let Some(report) = run_experiment(name, &harness, &options) else {
            eprintln!("error: unknown experiment {name:?}");
            return ExitCode::FAILURE;
        };
        let text = report.to_text();
        println!("{text}");
        let txt_path = options.out.join(format!("{}.txt", report.id));
        if let Err(e) =
            std::fs::File::create(&txt_path).and_then(|mut f| f.write_all(text.as_bytes()))
        {
            eprintln!("error: cannot write {}: {e}", txt_path.display());
            return ExitCode::FAILURE;
        }
        for (file, csv) in report.csv_files() {
            let path = options.out.join(file);
            if let Err(e) =
                std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))
            {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if !options.quiet {
            eprintln!("[figures] {name} done in {:.1?}", started.elapsed());
        }
    }
    ExitCode::SUCCESS
}
