//! Exports generated test cases (and optionally a schedule for each) as
//! JSON, so the workload can be consumed by external tools or inspected
//! by hand.
//!
//! ```text
//! scenarios [OPTIONS]
//!
//! OPTIONS:
//!   --seed N      export the single scenario with this seed (default 0)
//!   --suite N     export seeds 0..N instead (one file per seed)
//!   --small       use the scaled-down generator config
//!   --schedule    also schedule each scenario (full_one + C4) and embed
//!                 the resulting transfers/deliveries
//!   --out DIR     output directory (default: scenarios/)
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::scenario::Scenario;
use dstage_workload::{generate, GeneratorConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Export<'a> {
    seed: u64,
    scenario: &'a Scenario,
    #[serde(skip_serializing_if = "Option::is_none")]
    schedule: Option<dstage_core::schedule::Schedule>,
}

struct Options {
    seeds: Vec<u64>,
    small: bool,
    schedule: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut seed = 0u64;
    let mut suite: Option<u64> = None;
    let mut options =
        Options { seeds: vec![], small: false, schedule: false, out: PathBuf::from("scenarios") };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("invalid seed: {e}"))?;
            }
            "--suite" => {
                suite = Some(
                    args.next()
                        .ok_or("--suite needs a count")?
                        .parse()
                        .map_err(|e| format!("invalid count: {e}"))?,
                );
            }
            "--small" => options.small = true,
            "--schedule" => options.schedule = true,
            "--out" => options.out = PathBuf::from(args.next().ok_or("--out needs a directory")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    options.seeds = match suite {
        Some(n) => (0..n).collect(),
        None => vec![seed],
    };
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: scenarios [--seed N | --suite N] [--small] [--schedule] [--out DIR]");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    let config = if options.small { GeneratorConfig::small() } else { GeneratorConfig::paper() };
    if let Err(e) = std::fs::create_dir_all(&options.out) {
        eprintln!("error: cannot create {}: {e}", options.out.display());
        return ExitCode::FAILURE;
    }
    for &seed in &options.seeds {
        let scenario = generate(&config, seed);
        let schedule = options.schedule.then(|| {
            run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best())
                .schedule
        });
        let export = Export { seed, scenario: &scenario, schedule };
        let json = match serde_json::to_string_pretty(&export) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: serialization failed for seed {seed}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = options.out.join(format!("scenario-{seed:03}.json"));
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes()))
        {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
