//! Deterministic parallel execution of sweep work units.
//!
//! The paper's evaluation is embarrassingly parallel: every
//! (scheduler × weighting × case) unit is a pure function of the scenario
//! and its configuration (baseline PRNG streams are keyed per *case*, not
//! per thread), so fanning units out over a worker pool and merging the
//! results in stable unit order reproduces the sequential output byte for
//! byte. This module provides the worker pool ([`run_indexed`]) and the
//! thread-count policy ([`resolve_threads`]): an explicit flag beats the
//! `DSTAGE_THREADS` environment variable, which beats the machine's
//! available parallelism.

use std::time::Instant;

use crossbeam::{channel, thread};
use parking_lot::Mutex;

/// Runs one work unit under the observability tap: wall time goes to the
/// per-unit histogram and the flight recorder, the queue-wait histogram
/// gets the time between pool start and pickup. Pure overhead-free
/// pass-through when the tap is disabled.
fn observed<T>(unit: usize, queued_since: Instant, work: impl FnOnce(usize) -> T) -> T {
    if !dstage_obs::enabled() {
        return work(unit);
    }
    let wait_us = u64::try_from(queued_since.elapsed().as_micros()).unwrap_or(u64::MAX);
    let started = Instant::now();
    let result = work(unit);
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    dstage_obs::metrics::SIM_WORK_UNITS.inc();
    dstage_obs::metrics::SIM_WORK_UNIT_WALL_US.record(wall_us);
    dstage_obs::metrics::SIM_QUEUE_WAIT_US.record(wait_us);
    dstage_obs::recorder::record("sim", "work_unit", unit as u64, wall_us);
    result
}

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV_VAR: &str = "DSTAGE_THREADS";

/// The machine's available parallelism (1 when it cannot be queried).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves the worker-thread count for a sweep.
///
/// Precedence: an explicit `flag` (e.g. `--threads` on a binary), then
/// the `DSTAGE_THREADS` environment variable, then
/// [`available_threads`]. Zero or unparsable values fall through to the
/// next source.
#[must_use]
pub fn resolve_threads(flag: Option<usize>) -> usize {
    if let Some(n) = flag.filter(|&n| n > 0) {
        return n;
    }
    if let Some(n) = std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    available_threads()
}

/// Applies `work` to every index in `0..n_units` across `threads` workers
/// and returns the results **in index order**, regardless of which worker
/// computed which unit or in what order they finished.
///
/// `work` must be a pure function of the index for the output to be
/// deterministic; the pool only guarantees a stable merge.
///
/// # Panics
///
/// Propagates a panic from any worker (the remaining workers are joined
/// first).
#[must_use]
pub fn run_indexed<T, F>(n_units: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_units == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n_units);
    let pool_started = Instant::now();
    if workers == 1 {
        return (0..n_units).map(|i| observed(i, pool_started, &work)).collect();
    }

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_units);
    slots.resize_with(n_units, || None);
    let slots = Mutex::new(slots);
    let (sender, receiver) = channel::unbounded::<usize>();
    for i in 0..n_units {
        sender.send(i).expect("receiver alive until scope end");
    }
    drop(sender);

    let outcome = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let receiver = receiver.clone();
                let slots = &slots;
                let work = &work;
                scope.spawn(move || {
                    while let Ok(i) = receiver.recv() {
                        let result = observed(i, pool_started, work);
                        slots.lock()[i] = Some(result);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }

    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every unit was drained from the queue"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let squares = run_indexed(100, 8, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let work = |i: usize| format!("unit-{i}:{}", (i as u64).wrapping_mul(0x9E37_79B9));
        let sequential = run_indexed(37, 1, work);
        for threads in [2, 4, 8] {
            assert_eq!(run_indexed(37, threads, work), sequential, "{threads} threads");
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_indexed(50, 4, |i| {
            counter.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(results, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zero_units_is_fine() {
        let none: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(none.is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        assert_eq!(run_indexed(2, 64, |i| i + 1), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "unit 3 exploded")]
    fn worker_panics_propagate() {
        let _ = run_indexed(8, 4, |i| {
            assert!(i != 3, "unit 3 exploded");
            i
        });
    }

    #[test]
    fn explicit_flag_wins_thread_resolution() {
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero falls through to the environment / machine default.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }
}
