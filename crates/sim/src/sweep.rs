//! The E-U ratio sweep of the simulation study (§5.3–5.4).

use dstage_core::cost::EuWeights;
use serde::{Deserialize, Serialize};

/// One x-axis point of Figures 2–5: `log10(W_E/W_U)`, or one of the two
/// extremes (`+inf` = effective priority only, `−inf` = urgency only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EuRatioPoint {
    /// Urgency-only extreme (`W_E = 0`).
    NegInf,
    /// Finite point: `W_E/W_U = 10^x`.
    Log10(i32),
    /// Priority-only extreme (`W_U = 0`).
    PosInf,
}

impl EuRatioPoint {
    /// The paper's eleven sweep points: `−inf, −3 … 5, +inf`.
    pub const PAPER_SWEEP: [EuRatioPoint; 11] = [
        EuRatioPoint::NegInf,
        EuRatioPoint::Log10(-3),
        EuRatioPoint::Log10(-2),
        EuRatioPoint::Log10(-1),
        EuRatioPoint::Log10(0),
        EuRatioPoint::Log10(1),
        EuRatioPoint::Log10(2),
        EuRatioPoint::Log10(3),
        EuRatioPoint::Log10(4),
        EuRatioPoint::Log10(5),
        EuRatioPoint::PosInf,
    ];

    /// The `W_E`/`W_U` weights this point stands for.
    #[must_use]
    pub fn weights(self) -> EuWeights {
        match self {
            EuRatioPoint::NegInf => EuWeights::urgency_only(),
            EuRatioPoint::Log10(x) => EuWeights::from_log10_ratio(f64::from(x)),
            EuRatioPoint::PosInf => EuWeights::priority_only(),
        }
    }

    /// Axis label, as in the paper's figures.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            EuRatioPoint::NegInf => "-inf".to_string(),
            EuRatioPoint::Log10(x) => x.to_string(),
            EuRatioPoint::PosInf => "inf".to_string(),
        }
    }
}

impl core::fmt::Display for EuRatioPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_eleven_points_in_axis_order() {
        let pts = EuRatioPoint::PAPER_SWEEP;
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0], EuRatioPoint::NegInf);
        assert_eq!(pts[10], EuRatioPoint::PosInf);
        for (i, p) in pts[1..10].iter().enumerate() {
            assert_eq!(*p, EuRatioPoint::Log10(i as i32 - 3));
        }
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(EuRatioPoint::NegInf.label(), "-inf");
        assert_eq!(EuRatioPoint::Log10(-3).label(), "-3");
        assert_eq!(EuRatioPoint::Log10(0).label(), "0");
        assert_eq!(EuRatioPoint::PosInf.label(), "inf");
    }

    #[test]
    fn weights_resolve_correctly() {
        assert_eq!(EuRatioPoint::NegInf.weights().w_e, 0.0);
        assert_eq!(EuRatioPoint::PosInf.weights().w_u, 0.0);
        let w = EuRatioPoint::Log10(2).weights();
        assert!((w.w_e - 100.0).abs() < 1e-9);
        assert_eq!(w.w_u, 1.0);
    }
}
