//! Summary statistics over the 40 test cases.

use serde::{Deserialize, Serialize};

/// Mean / min / max / sample standard deviation of one measured series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "statistics need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        };
        Stats { mean, min, max, std_dev, n }
    }

    /// Statistics over integer samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_u64(samples: &[u64]) -> Self {
        let as_f64: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        Stats::from_samples(&as_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = Stats::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample std dev of this classic set is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn from_u64_matches() {
        let a = Stats::from_u64(&[1, 2, 3]);
        let b = Stats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Stats::from_samples(&[]);
    }
}
