//! Property-based well-formedness checks for every scenario family.
//!
//! For every family × seed × scale the generated scenario must be
//! structurally sound: no zero-capacity links, deadlines no earlier than
//! the requested item's release (earliest availability), every request
//! destination reachable from some source of its item, and P2MP
//! destination sets non-empty and duplicate-free.

use dstage_model::ids::MachineId;
use dstage_model::scenario::Scenario;
use dstage_workload::Family;
use proptest::prelude::*;

/// Machines reachable from `from` over the directed link graph
/// (windows ignored: reachability is about wiring, not timing).
fn reachable_from(scenario: &Scenario, from: MachineId) -> Vec<bool> {
    let network = scenario.network();
    let mut seen = vec![false; network.machine_count()];
    let mut queue = vec![from];
    seen[from.index()] = true;
    while let Some(m) = queue.pop() {
        for next in network.neighbors(m) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                queue.push(next);
            }
        }
    }
    seen
}

fn assert_well_formed(scenario: &Scenario, label: &str) {
    // No zero-capacity links.
    for (id, link) in scenario.network().links() {
        assert!(link.bandwidth().as_u64() > 0, "{label}: link {id} has zero bandwidth");
        assert!(link.start() < link.end(), "{label}: link {id} has an empty window");
    }
    // Deadlines >= release times, and destinations reachable from a source.
    for (rid, request) in scenario.requests() {
        let item = scenario.item(request.item());
        let release =
            item.earliest_availability().unwrap_or_else(|| panic!("{label}: {rid} sourceless"));
        assert!(
            request.deadline() >= release,
            "{label}: {rid} deadline {:?} precedes release {release:?}",
            request.deadline()
        );
        let reached = item
            .sources()
            .iter()
            .any(|src| reachable_from(scenario, src.machine)[request.destination().index()]);
        assert!(reached, "{label}: {rid} destination unreachable from every source");
    }
    // P2MP groups: non-empty, duplicate-free, one item and deadline each.
    for (gi, group) in scenario.p2mp_groups().iter().enumerate() {
        assert!(!group.is_empty(), "{label}: group {gi} empty");
        let item = scenario.request(group[0]).item();
        let mut dests = Vec::new();
        for &rid in group {
            let r = scenario.request(rid);
            assert_eq!(r.item(), item, "{label}: group {gi} mixes items");
            assert!(
                !dests.contains(&r.destination()),
                "{label}: group {gi} repeats destination {:?}",
                r.destination()
            );
            dests.push(r.destination());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_family_seed_and_size_is_well_formed(seed in 0u64..1_000, small in 0u8..2) {
        let small = small == 1;
        for family in Family::ALL {
            let scenario =
                if small { family.generate_small(seed) } else { family.generate(seed) };
            let label = format!("{family} seed {seed} small {small}");
            assert_well_formed(&scenario, &label);
        }
    }
}

#[test]
fn fixed_seed_sweep_is_well_formed() {
    // A deterministic floor under the property test: the first ten seeds
    // of every family at both scales, always exercised.
    for family in Family::ALL {
        for seed in 0..10 {
            assert_well_formed(&family.generate(seed), &format!("{family} seed {seed}"));
            assert_well_formed(
                &family.generate_small(seed),
                &format!("{family} small seed {seed}"),
            );
        }
    }
}
