//! Small, fully deterministic scenarios used by tests, examples, and
//! documentation.
//!
//! Each constructor documents the intended schedule-ability so tests can
//! assert exact outcomes.

use dstage_model::prelude::*;

fn m(i: u32) -> MachineId {
    MachineId::new(i)
}

fn item(i: u32) -> DataItemId {
    DataItemId::new(i)
}

/// A 3-machine line `m0 → m1 → m2` (1 byte/ms links, 2-hour windows) with
/// two items stored on `m0`:
///
/// * item 0 (10 KB) requested by `m1` (high) and `m2` (low);
/// * item 1 (20 KB) requested by `m2` (medium).
///
/// Deadlines are generous: every request is satisfiable, and satisfying
/// all of them requires multi-hop staging through `m1`.
#[must_use]
pub fn two_hop_chain() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..3 {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
    }
    for i in 0..2u32 {
        b.add_link(VirtualLink::new(
            m(i),
            m(i + 1),
            SimTime::ZERO,
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
    }
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "alpha",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "bravo",
            Bytes::new(20_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_request(Request::new(item(0), m(1), SimTime::from_mins(30), Priority::HIGH))
        .add_request(Request::new(item(0), m(2), SimTime::from_mins(45), Priority::LOW))
        .add_request(Request::new(item(1), m(2), SimTime::from_mins(45), Priority::MEDIUM))
        .build()
        .expect("two_hop_chain is valid by construction")
}

/// Two machines joined by a single 1 byte/ms link, with two 10 KB items on
/// `m0` both requested at `m1` with 15-second deadlines.
///
/// Each transfer takes 10 s, so only the first one scheduled meets its
/// deadline: the link is genuinely contended. Request 0 is high priority,
/// request 1 low — a priority-aware scheduler must deliver request 0.
#[must_use]
pub fn contended_link() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..2 {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
    }
    b.add_link(VirtualLink::new(
        m(0),
        m(1),
        SimTime::ZERO,
        SimTime::from_hours(2),
        BitsPerSec::new(8_000),
    ));
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "urgent-map",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "background-log",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_request(Request::new(item(0), m(1), SimTime::from_secs(15), Priority::HIGH))
        .add_request(Request::new(item(1), m(1), SimTime::from_secs(15), Priority::LOW))
        .build()
        .expect("contended_link is valid by construction")
}

/// A hub-and-spokes network `m0 → hub → {d1, d2, d3}` with one item on
/// `m0` requested by all three leaves (mixed priorities) and a second item
/// requested by one leaf.
///
/// All requests are satisfiable; the shared `m0 → hub` edge rewards
/// multi-destination scheduling (full path/all destinations commits the
/// whole fan-out from one Dijkstra run).
#[must_use]
pub fn fan_out() -> Scenario {
    let mut b = NetworkBuilder::new();
    for name in ["src", "hub", "d1", "d2", "d3"] {
        b.add_machine(Machine::new(name, Bytes::from_mib(4)));
    }
    let two_hours = SimTime::from_hours(2);
    b.add_link(VirtualLink::new(m(0), m(1), SimTime::ZERO, two_hours, BitsPerSec::new(8_000)));
    for leaf in 2..5u32 {
        b.add_link(VirtualLink::new(
            m(1),
            m(leaf),
            SimTime::ZERO,
            two_hours,
            BitsPerSec::new(8_000),
        ));
    }
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "weather",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "orders",
            Bytes::new(5_000),
            vec![DataSource::new(m(0), SimTime::from_secs(30))],
        ))
        .add_request(Request::new(item(0), m(2), SimTime::from_mins(30), Priority::HIGH))
        .add_request(Request::new(item(0), m(3), SimTime::from_mins(30), Priority::MEDIUM))
        .add_request(Request::new(item(0), m(4), SimTime::from_mins(30), Priority::LOW))
        .add_request(Request::new(item(1), m(2), SimTime::from_mins(40), Priority::HIGH))
        .build()
        .expect("fan_out is valid by construction")
}

/// Two machines joined by a single 1 byte/ms link where *arrival order*
/// hurts earliest-gap placement: request 0 (LOW, generous 100 s deadline)
/// arrives before request 1 (HIGH, tight 15 s deadline), and each 10 KB
/// transfer takes 10 s.
///
/// An admitter that reserves the earliest feasible gap gives the early
/// low-priority arrival the `[0 s, 10 s)` slot, leaving the late
/// high-priority request only `[10 s, 20 s)` — past its deadline. A
/// latest-gap (`alap`) admitter parks the low request at `[90 s, 100 s)`
/// instead, so both requests are satisfiable in arrival order.
#[must_use]
pub fn staggered_arrivals() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..2 {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
    }
    b.add_link(VirtualLink::new(
        m(0),
        m(1),
        SimTime::ZERO,
        SimTime::from_hours(2),
        BitsPerSec::new(8_000),
    ));
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "background-archive",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "urgent-update",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_request(Request::new(item(0), m(1), SimTime::from_secs(100), Priority::LOW))
        .add_request(Request::new(item(1), m(1), SimTime::from_secs(15), Priority::HIGH))
        .build()
        .expect("staggered_arrivals is valid by construction")
}

/// Two machines with a slow (100 byte/s) link: item 0's request has a
/// 5-second deadline that no schedule can meet (the 10 KB transfer takes
/// 100 s even alone), while item 1's request (deadline 30 min) is easy.
#[must_use]
pub fn impossible_request() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..2 {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
    }
    b.add_link(VirtualLink::new(
        m(0),
        m(1),
        SimTime::ZERO,
        SimTime::from_hours(2),
        BitsPerSec::new(800),
    ));
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "too-late",
            Bytes::new(10_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "easy",
            Bytes::new(1_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_request(Request::new(item(0), m(1), SimTime::from_secs(5), Priority::HIGH))
        .add_request(Request::new(item(1), m(1), SimTime::from_mins(30), Priority::LOW))
        .build()
        .expect("impossible_request is valid by construction")
}

/// A two-machine network holding one item that nobody requests.
#[must_use]
pub fn no_requests() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..2 {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(4)));
    }
    b.add_link(VirtualLink::new(
        m(0),
        m(1),
        SimTime::ZERO,
        SimTime::from_hours(2),
        BitsPerSec::new(8_000),
    ));
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "dormant",
            Bytes::new(1_000),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .build()
        .expect("no_requests is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_scenarios_build() {
        assert_eq!(two_hop_chain().request_count(), 3);
        assert_eq!(contended_link().request_count(), 2);
        assert_eq!(staggered_arrivals().request_count(), 2);
        assert_eq!(fan_out().request_count(), 4);
        assert_eq!(impossible_request().request_count(), 2);
        assert_eq!(no_requests().request_count(), 0);
    }

    #[test]
    fn contended_link_is_genuinely_contended() {
        let s = contended_link();
        // Two 10 s transfers, 15 s deadlines, one serial link: both cannot
        // make it.
        let link = s.network().link(VirtualLinkId::new(0));
        let t0 = link.transfer_time(s.item(item(0)).size());
        let t1 = link.transfer_time(s.item(item(1)).size());
        assert!(t0.as_millis() + t1.as_millis() > 15_000);
        assert!(t0.as_millis() <= 15_000);
        assert!(t1.as_millis() <= 15_000);
    }

    #[test]
    fn fan_out_requires_staging_through_hub() {
        let s = fan_out();
        // No direct links from src to leaves.
        assert!(s.network().outgoing(m(0)).len() == 1);
    }
}
