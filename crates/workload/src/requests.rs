//! Data item and request generation (§5.3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::request::{Priority, Request};
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::Bytes;

use crate::config::GeneratorConfig;

/// One generated item together with its requests (request item ids are
/// filled in by the caller once the item is added to the scenario).
#[derive(Debug, Clone)]
pub struct GeneratedItem {
    /// The item (name, size, sources).
    pub item: DataItem,
    /// Requests to register for the item.
    pub requests: Vec<Request>,
}

/// Generates items until the total number of requests reaches
/// `total_requests` (the paper's 20–40 requests per machine).
///
/// Per item: 1–5 sources, 1–5 destinations (sources and destinations are
/// disjoint machine sets), size uniform in the configured range,
/// availability within the first hour, per-request deadline 15–60 minutes
/// after availability, per-request uniform priority.
pub fn generate_items(
    config: &GeneratorConfig,
    machines: usize,
    total_requests: usize,
    rng: &mut StdRng,
) -> Vec<GeneratedItem> {
    let mut out = Vec::new();
    let mut produced = 0usize;
    let mut item_index = 0usize;
    while produced < total_requests {
        let remaining = total_requests - produced;
        let max_src = config.max_sources.min(machines - 1).max(1);
        let n_sources = rng.gen_range(1..=max_src);
        let max_dst = config.max_destinations.min(machines - n_sources).min(remaining).max(1);
        let n_dests = rng.gen_range(1..=max_dst);

        let mut ids: Vec<usize> = (0..machines).collect();
        ids.shuffle(rng);
        let sources: Vec<usize> = ids[..n_sources].to_vec();
        let dests: Vec<usize> = ids[n_sources..n_sources + n_dests].to_vec();

        let size = Bytes::new(rng.gen_range(config.item_size.clone()));
        let available_at =
            SimTime::from_millis(rng.gen_range(0..=config.item_start_max.as_millis()));

        let item = DataItem::new(
            format!("item-{item_index:04}"),
            size,
            sources
                .iter()
                .map(|&s| DataSource::new(MachineId::new(s as u32), available_at))
                .collect(),
        );
        let item_id = DataItemId::new(item_index as u32);
        let requests = dests
            .iter()
            .map(|&d| {
                let offset_min = rng.gen_range(config.deadline_offset.clone());
                let deadline = available_at + SimDuration::from_mins(offset_min);
                let priority = Priority::new(rng.gen_range(0..config.priority_levels));
                Request::new(item_id, MachineId::new(d as u32), deadline, priority)
            })
            .collect::<Vec<_>>();
        produced += requests.len();
        out.push(GeneratedItem { item, requests });
        item_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn request_budget_is_met_exactly_or_not_exceeded_per_item_cap() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let items = generate_items(&config, 11, 220, &mut rng);
        let total: usize = items.iter().map(|g| g.requests.len()).sum();
        assert_eq!(total, 220, "generation clamps the final item's destinations");
    }

    #[test]
    fn sources_and_destinations_are_disjoint() {
        let config = GeneratorConfig::default();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let items = generate_items(&config, 11, 100, &mut rng);
            for g in &items {
                for r in &g.requests {
                    assert!(
                        !g.item.has_source(r.destination()),
                        "seed {seed}: destination is also a source"
                    );
                }
            }
        }
    }

    #[test]
    fn cardinalities_respect_paper_bounds() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let items = generate_items(&config, 11, 300, &mut rng);
        for g in &items {
            assert!((1..=5).contains(&g.item.sources().len()));
            assert!((1..=5).contains(&g.requests.len()));
            let size = g.item.size().as_u64();
            assert!((10_000..=100_000_000).contains(&size));
        }
    }

    #[test]
    fn deadlines_are_15_to_60_minutes_after_availability() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        let items = generate_items(&config, 11, 200, &mut rng);
        for g in &items {
            let avail = g.item.earliest_availability().unwrap();
            assert!(avail <= SimTime::from_mins(60));
            for r in &g.requests {
                let offset = r.deadline() - avail;
                assert!(offset >= SimDuration::from_mins(15));
                assert!(offset <= SimDuration::from_mins(60));
            }
        }
    }

    #[test]
    fn priorities_cover_all_three_levels() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let items = generate_items(&config, 11, 300, &mut rng);
        let mut seen = [false; 3];
        for g in &items {
            for r in &g.requests {
                seen[r.priority().level() as usize] = true;
            }
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn same_item_requests_can_differ_in_priority_and_deadline() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(10);
        let items = generate_items(&config, 11, 300, &mut rng);
        let multi = items.iter().filter(|g| g.requests.len() >= 2);
        let mut found_differing = false;
        for g in multi {
            let p0 = g.requests[0].priority();
            if g.requests.iter().any(|r| r.priority() != p0) {
                found_differing = true;
            }
        }
        assert!(found_differing, "priorities are per-request, not per-item");
    }
}
