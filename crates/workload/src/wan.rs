//! An inter-datacenter WAN workload family.
//!
//! DDCCast-style bulk replication between a handful of datacenters: few
//! fat links, available bandwidth that swings diurnally between off-peak
//! and peak levels, and a mix of unicast and point-to-multipoint
//! transfers (one source datacenter replicating an item to several
//! destinations that share the staged upstream copies).
//!
//! Useful for stressing the shared-copy accounting: a P2MP group's
//! destinations pull from the same staged copy chain, so the scheduler
//! should pay each upstream hop once while earning one `W[p]` per
//! satisfied destination.

use core::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::NetworkBuilder;
use dstage_model::request::{P2mpRequest, Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::{BitsPerSec, Bytes};

/// Tunables of the inter-datacenter WAN workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WanConfig {
    /// Number of datacenters (default 5).
    pub datacenters: usize,
    /// Extra chord links on top of the bidirectional ring (default 2).
    pub chords: usize,
    /// Off-peak (night) link bandwidth (default 8 Mbit/s).
    pub offpeak: BitsPerSec,
    /// Peak (business-hours) link bandwidth (default 2 Mbit/s).
    pub peak: BitsPerSec,
    /// Length of one off-peak + peak cycle (default 40 minutes, so the
    /// 2-hour horizon sees three full swings).
    pub diurnal_period: SimDuration,
    /// Number of bulk transfers (default 40).
    pub transfers: usize,
    /// Percentage of transfers that are point-to-multipoint (default 60).
    pub p2mp_percent: u32,
    /// Largest P2MP fan-out (default 3 destinations).
    pub max_fanout: usize,
    /// Item sizes (default 1–60 MB).
    pub item_size: RangeInclusive<u64>,
    /// Deadline offset after item availability, minutes (default 25–90).
    pub deadline_offset_mins: RangeInclusive<u64>,
    /// Scheduling horizon (default 2 hours).
    pub horizon: SimTime,
}

impl Default for WanConfig {
    fn default() -> Self {
        WanConfig {
            datacenters: 5,
            chords: 2,
            offpeak: BitsPerSec::from_mbps(8),
            peak: BitsPerSec::from_mbps(2),
            diurnal_period: SimDuration::from_mins(40),
            transfers: 40,
            p2mp_percent: 60,
            max_fanout: 3,
            item_size: 1_000_000..=60_000_000,
            deadline_offset_mins: 25..=90,
            horizon: SimTime::from_hours(2),
        }
    }
}

impl WanConfig {
    /// A scaled-down configuration for fast tests and CI sweeps.
    #[must_use]
    pub fn small() -> Self {
        WanConfig {
            datacenters: 4,
            chords: 1,
            transfers: 14,
            item_size: 500_000..=12_000_000,
            ..WanConfig::default()
        }
    }
}

/// Adds a diurnal fat link: windows alternate between off-peak and peak
/// bandwidth every half period, with a random per-link phase so the
/// swings are not synchronized across the WAN.
fn add_diurnal_link(
    b: &mut NetworkBuilder,
    from: MachineId,
    to: MachineId,
    config: &WanConfig,
    rng: &mut StdRng,
) {
    let half = (config.diurnal_period.as_millis() / 2).max(1) as i64;
    let phase = rng.gen_range(0..config.diurnal_period.as_millis()) as i64;
    let horizon_ms = config.horizon.as_millis() as i64;
    let mut k: i64 = 0;
    loop {
        let start = k * half - phase;
        if start >= horizon_ms {
            break;
        }
        let end = start + half;
        if end > 0 {
            let bandwidth = if k % 2 == 0 { config.offpeak } else { config.peak };
            b.add_link(VirtualLink::new(
                from,
                to,
                SimTime::from_millis(start.max(0) as u64),
                SimTime::from_millis(end.min(horizon_ms) as u64),
                bandwidth,
            ));
        }
        k += 1;
    }
}

/// Generates an inter-datacenter WAN scenario. Deterministic in
/// `(config, seed)`.
///
/// Topology: datacenters `dc-0 .. dc-(N-1)` on a bidirectional ring plus
/// `chords` extra bidirectional chords; every physical direction carries
/// diurnal windows (off-peak/peak bandwidth, random phase). Each bulk
/// transfer is its own item at one source datacenter; `p2mp_percent` of
/// the transfers replicate to 2–`max_fanout` destinations as one P2MP
/// group, the rest are unicast.
///
/// # Panics
///
/// Panics if fewer than three datacenters are configured.
#[must_use]
pub fn generate_wan(config: &WanConfig, seed: u64) -> Scenario {
    let n = config.datacenters;
    assert!(n >= 3, "a WAN needs at least three datacenters");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();

    for i in 0..n {
        b.add_machine(Machine::new(format!("dc-{i}"), Bytes::from_gib(50)));
    }

    // Ring, both directions.
    for i in 0..n {
        let j = (i + 1) % n;
        let (a, z) = (MachineId::new(i as u32), MachineId::new(j as u32));
        add_diurnal_link(&mut b, a, z, config, &mut rng);
        add_diurnal_link(&mut b, z, a, config, &mut rng);
    }
    // A few chords between non-adjacent datacenters.
    let mut placed = 0;
    let mut attempts = 0;
    while placed < config.chords && attempts < config.chords * 20 {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let adjacent = (i + 1) % n == j || (j + 1) % n == i;
        if i == j || adjacent {
            continue;
        }
        let (a, z) = (MachineId::new(i as u32), MachineId::new(j as u32));
        add_diurnal_link(&mut b, a, z, config, &mut rng);
        add_diurnal_link(&mut b, z, a, config, &mut rng);
        placed += 1;
    }

    let mut scenario = Scenario::builder(b.build()).horizon(config.horizon);
    struct Transfer {
        destinations: Vec<MachineId>,
        deadline: SimTime,
        priority: Priority,
    }
    let mut transfers = Vec::with_capacity(config.transfers);
    for i in 0..config.transfers {
        let src = rng.gen_range(0..n);
        let available = SimTime::from_mins(rng.gen_range(0..=30));
        scenario = scenario.add_item(DataItem::new(
            format!("bulk-{i:03}"),
            Bytes::new(rng.gen_range(config.item_size.clone())),
            vec![DataSource::new(MachineId::new(src as u32), available)],
        ));
        let fanout = if rng.gen_range(0..100) < config.p2mp_percent {
            rng.gen_range(2..=config.max_fanout.min(n - 1).max(2))
        } else {
            1
        };
        // Fisher-Yates prefix over the other datacenters.
        let mut others: Vec<usize> = (0..n).filter(|&d| d != src).collect();
        for k in 0..fanout.min(others.len()) {
            let j = rng.gen_range(k..others.len());
            others.swap(k, j);
        }
        let offset = rng.gen_range(config.deadline_offset_mins.clone());
        transfers.push(Transfer {
            destinations: others[..fanout.min(others.len())]
                .iter()
                .map(|&d| MachineId::new(d as u32))
                .collect(),
            deadline: available + SimDuration::from_mins(offset),
            priority: Priority::new(rng.gen_range(0..3)),
        });
    }
    for (i, t) in transfers.into_iter().enumerate() {
        let item = DataItemId::new(i as u32);
        if t.destinations.len() == 1 {
            scenario =
                scenario.add_request(Request::new(item, t.destinations[0], t.deadline, t.priority));
        } else {
            scenario = scenario.add_p2mp_request(&P2mpRequest::new(
                item,
                t.destinations,
                t.deadline,
                t.priority,
            ));
        }
    }
    scenario.build().expect("WAN construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_builds_and_is_strongly_connected() {
        let s = generate_wan(&WanConfig::default(), 0);
        assert!(s.network().is_strongly_connected());
        assert_eq!(s.network().machine_count(), 5);
        assert_eq!(s.item_count(), 40);
        assert!(s.request_count() >= 40, "every transfer expands to >= 1 request");
    }

    #[test]
    fn wan_has_p2mp_groups_with_valid_members() {
        let s = generate_wan(&WanConfig::default(), 1);
        assert!(!s.p2mp_groups().is_empty(), "default mix is 60 % P2MP");
        for group in s.p2mp_groups() {
            assert!(group.len() >= 2, "groups are genuinely multi-destination");
            let item = s.request(group[0]).item();
            let deadline = s.request(group[0]).deadline();
            let mut dests = Vec::new();
            for &rid in group {
                let r = s.request(rid);
                assert_eq!(r.item(), item, "one item per group");
                assert_eq!(r.deadline(), deadline, "one deadline per group");
                assert!(!dests.contains(&r.destination()), "duplicate destination");
                dests.push(r.destination());
            }
        }
    }

    #[test]
    fn wan_links_swing_between_peak_and_offpeak() {
        let config = WanConfig::default();
        let s = generate_wan(&config, 2);
        let mut peak = 0usize;
        let mut offpeak = 0usize;
        for (_, link) in s.network().links() {
            if link.bandwidth() == config.peak {
                peak += 1;
            } else if link.bandwidth() == config.offpeak {
                offpeak += 1;
            } else {
                panic!("unexpected bandwidth {:?}", link.bandwidth());
            }
        }
        assert!(peak > 0 && offpeak > 0, "both regimes present: {peak} peak, {offpeak} offpeak");
    }

    #[test]
    fn wan_generation_is_deterministic() {
        let a = generate_wan(&WanConfig::default(), 9);
        let b = generate_wan(&WanConfig::default(), 9);
        assert_eq!(a.request_count(), b.request_count());
        assert_eq!(a.p2mp_groups(), b.p2mp_groups());
        for (ra, rb) in a.requests().zip(b.requests()) {
            assert_eq!(ra.1, rb.1);
        }
    }
}
