//! A BADD-flavoured structured workload family.
//!
//! The paper's motivating system "combines terrestrial cable and fiber
//! with commercial VSAT internet and commercial broadcast" (§1). The
//! §5.3 generator is topology-agnostic; this module generates the
//! *structured* variant: well-connected rear sites on fat terrestrial
//! links, a theater hub reached over an intermittent satellite trunk, and
//! forward spokes on slow VSAT links. Items originate at rear sites;
//! requests come from the forward spokes.
//!
//! Useful for examples and for stressing staging through a mandatory
//! bottleneck (the trunk) — a regime the uniform random topology rarely
//! produces.

use core::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::NetworkBuilder;
use dstage_model::request::{Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::{BitsPerSec, Bytes};

/// Tunables of the satcom workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SatcomConfig {
    /// Rear (CONUS) sites holding the data (default 3).
    pub rear_sites: usize,
    /// Forward spokes making requests (default 6).
    pub spokes: usize,
    /// Terrestrial link bandwidth between rear sites (default 1.5 Mbit/s).
    pub terrestrial: BitsPerSec,
    /// Satellite trunk bandwidth rear ↔ hub (default 512 Kbit/s).
    pub trunk: BitsPerSec,
    /// VSAT bandwidth hub ↔ spoke (default 64 Kbit/s).
    pub vsat: BitsPerSec,
    /// Satellite trunk pass duration (default 15 minutes).
    pub trunk_window: SimDuration,
    /// Gap between trunk passes (default 15 minutes).
    pub trunk_gap: SimDuration,
    /// Number of data items (default 30).
    pub items: usize,
    /// Requests per spoke (default 8).
    pub requests_per_spoke: usize,
    /// Item sizes (default 100 KB – 12 MB; sized to oversubscribe the VSAT hops).
    pub item_size: RangeInclusive<u64>,
    /// Deadline offset after item availability, minutes (default 20–90).
    pub deadline_offset_mins: RangeInclusive<u64>,
    /// Scheduling horizon (default 2 hours).
    pub horizon: SimTime,
}

impl Default for SatcomConfig {
    fn default() -> Self {
        SatcomConfig {
            rear_sites: 3,
            spokes: 6,
            terrestrial: BitsPerSec::from_mbps(1),
            trunk: BitsPerSec::from_kbps(512),
            vsat: BitsPerSec::from_kbps(64),
            trunk_window: SimDuration::from_mins(15),
            trunk_gap: SimDuration::from_mins(15),
            items: 30,
            requests_per_spoke: 10,
            item_size: 100_000..=12_000_000,
            deadline_offset_mins: 20..=90,
            horizon: SimTime::from_hours(2),
        }
    }
}

/// Generates a satcom scenario. Deterministic in `(config, seed)`.
///
/// Topology (machine ids in order): rear sites `0..R`, the hub `R`, and
/// spokes `R+1 ..= R+S`.
///
/// * rear sites: full bidirectional terrestrial mesh, always up;
/// * rear ↔ hub: a bidirectional satellite trunk, up during periodic
///   passes (`trunk_window` on, `trunk_gap` off) — each pass is one
///   virtual link per direction per rear site;
/// * hub ↔ spokes: always-up but slow VSAT links, both directions.
///
/// # Panics
///
/// Panics if `rear_sites` or `spokes` is zero.
#[must_use]
pub fn generate_satcom(config: &SatcomConfig, seed: u64) -> Scenario {
    assert!(config.rear_sites > 0, "at least one rear site required");
    assert!(config.spokes > 0, "at least one spoke required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();

    for i in 0..config.rear_sites {
        b.add_machine(Machine::new(format!("rear-{i}"), Bytes::from_gib(20)));
    }
    let hub = b.add_machine(Machine::new("hub", Bytes::from_mib(512)));
    let mut spokes = Vec::with_capacity(config.spokes);
    for i in 0..config.spokes {
        spokes.push(b.add_machine(Machine::new(format!("spoke-{i}"), Bytes::from_mib(64))));
    }

    let horizon = config.horizon;
    // Rear mesh.
    for i in 0..config.rear_sites {
        for j in 0..config.rear_sites {
            if i != j {
                b.add_link(VirtualLink::new(
                    MachineId::new(i as u32),
                    MachineId::new(j as u32),
                    SimTime::ZERO,
                    horizon,
                    config.terrestrial,
                ));
            }
        }
    }
    // Satellite trunk passes between every rear site and the hub.
    let period = config.trunk_window.as_millis() + config.trunk_gap.as_millis();
    assert!(period > 0, "trunk window plus gap must be positive");
    let mut pass_start = SimTime::ZERO;
    while pass_start < horizon {
        let pass_end = pass_start.saturating_add(config.trunk_window).min(horizon);
        if pass_end > pass_start {
            for i in 0..config.rear_sites {
                let rear = MachineId::new(i as u32);
                b.add_link(VirtualLink::new(rear, hub, pass_start, pass_end, config.trunk));
                b.add_link(VirtualLink::new(hub, rear, pass_start, pass_end, config.trunk));
            }
        }
        pass_start = pass_start.saturating_add(SimDuration::from_millis(period));
    }
    // VSAT spokes.
    for &spoke in &spokes {
        b.add_link(VirtualLink::new(hub, spoke, SimTime::ZERO, horizon, config.vsat));
        b.add_link(VirtualLink::new(spoke, hub, SimTime::ZERO, horizon, config.vsat));
    }

    // Items at rear sites; requests from spokes.
    let mut scenario = Scenario::builder(b.build()).horizon(horizon);
    for i in 0..config.items {
        let n_sources = rng.gen_range(1..=config.rear_sites.min(3));
        let mut rear_ids: Vec<usize> = (0..config.rear_sites).collect();
        // Fisher-Yates prefix.
        for k in 0..n_sources {
            let j = rng.gen_range(k..rear_ids.len());
            rear_ids.swap(k, j);
        }
        let available = SimTime::from_mins(rng.gen_range(0..=30));
        scenario = scenario.add_item(DataItem::new(
            format!("intel-{i:03}"),
            Bytes::new(rng.gen_range(config.item_size.clone())),
            rear_ids[..n_sources]
                .iter()
                .map(|&r| DataSource::new(MachineId::new(r as u32), available))
                .collect(),
        ));
    }
    let mut requests = Vec::new();
    for &spoke in &spokes {
        let mut wanted: Vec<usize> = Vec::new();
        while wanted.len() < config.requests_per_spoke.min(config.items) {
            let item = rng.gen_range(0..config.items);
            if !wanted.contains(&item) {
                wanted.push(item);
            }
        }
        for item in wanted {
            let item_id = DataItemId::new(item as u32);
            let available = SimTime::from_mins(0); // bound below by item start
            let offset = rng.gen_range(config.deadline_offset_mins.clone());
            let deadline = available + SimDuration::from_mins(offset + 30);
            let priority = Priority::new(rng.gen_range(0..3));
            requests.push(Request::new(item_id, spoke, deadline, priority));
        }
    }
    scenario.add_requests(requests).build().expect("satcom construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satcom_builds_and_is_strongly_connected() {
        let s = generate_satcom(&SatcomConfig::default(), 0);
        assert!(s.network().is_strongly_connected());
        // 3 rear + hub + 6 spokes.
        assert_eq!(s.network().machine_count(), 10);
        assert_eq!(s.request_count(), 60);
        assert_eq!(s.item_count(), 30);
    }

    #[test]
    fn trunk_is_windowed_and_vsat_is_not() {
        let config = SatcomConfig::default();
        let s = generate_satcom(&config, 1);
        let hub = MachineId::new(config.rear_sites as u32);
        let mut trunk_links = 0;
        let mut always_up_from_hub = 0;
        for (_, link) in s.network().links() {
            if link.destination() == hub && link.source().index() < config.rear_sites {
                trunk_links += 1;
                assert_eq!(link.window(), SimDuration::from_mins(15));
            }
            if link.source() == hub && link.window() == SimDuration::from_hours(2) {
                always_up_from_hub += 1;
            }
        }
        // 4 passes in 2 h (15 on / 15 off) x 3 rear sites.
        assert_eq!(trunk_links, 12);
        assert_eq!(always_up_from_hub, config.spokes);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_satcom(&SatcomConfig::default(), 9);
        let b = generate_satcom(&SatcomConfig::default(), 9);
        assert_eq!(a.request_count(), b.request_count());
        for (ra, rb) in a.requests().zip(b.requests()) {
            assert_eq!(ra.1, rb.1);
        }
    }

    #[test]
    fn requests_come_only_from_spokes() {
        let config = SatcomConfig::default();
        let s = generate_satcom(&config, 3);
        for (_, r) in s.requests() {
            assert!(r.destination().index() > config.rear_sites, "destination must be a spoke");
        }
    }

    #[test]
    fn items_live_only_on_rear_sites() {
        let config = SatcomConfig::default();
        let s = generate_satcom(&config, 4);
        for (_, item) in s.items() {
            assert!(!item.sources().is_empty());
            for src in item.sources() {
                assert!(src.machine.index() < config.rear_sites);
            }
        }
    }
}
