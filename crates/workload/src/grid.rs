//! A grid file-transfer workload family.
//!
//! Machines on a rows × cols mesh with always-up moderate links to their
//! four neighbours; files live at random cells and are requested by
//! random other cells. Multi-hop paths are the norm (the diameter is
//! `rows + cols - 2`), so staging decisions compound along the way —
//! a regime the uniform random topology, with its dense degree-4-to-7
//! wiring, rarely produces.

use core::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::NetworkBuilder;
use dstage_model::request::{Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::{BitsPerSec, Bytes};

/// Tunables of the grid workload.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Grid rows (default 3).
    pub rows: usize,
    /// Grid columns (default 4).
    pub cols: usize,
    /// Per-physical-link bandwidth range in bit/s (default 200–800 Kbit/s).
    pub bandwidth: RangeInclusive<u64>,
    /// Number of files (default 15).
    pub items: usize,
    /// Number of requests (default 45).
    pub requests: usize,
    /// File sizes (default 50 KB – 8 MB).
    pub item_size: RangeInclusive<u64>,
    /// Deadline offset after file availability, minutes (default 20–80).
    pub deadline_offset_mins: RangeInclusive<u64>,
    /// Scheduling horizon (default 2 hours).
    pub horizon: SimTime,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            rows: 3,
            cols: 4,
            bandwidth: 200_000..=800_000,
            items: 15,
            requests: 45,
            item_size: 50_000..=8_000_000,
            deadline_offset_mins: 20..=80,
            horizon: SimTime::from_hours(2),
        }
    }
}

impl GridConfig {
    /// A scaled-down configuration for fast tests and CI sweeps.
    #[must_use]
    pub fn small() -> Self {
        GridConfig { rows: 2, cols: 3, items: 8, requests: 16, ..GridConfig::default() }
    }
}

/// Generates a grid file-transfer scenario. Deterministic in
/// `(config, seed)`.
///
/// Machines are `grid-r{row}c{col}` in row-major order; every cell has
/// always-up bidirectional links to its right and down neighbours, each
/// physical direction with its own uniformly drawn bandwidth. Files are
/// placed at random cells and requested by distinct random other cells.
///
/// # Panics
///
/// Panics if the grid has fewer than two cells or no items are
/// configured.
#[must_use]
pub fn generate_grid(config: &GridConfig, seed: u64) -> Scenario {
    let cells = config.rows * config.cols;
    assert!(cells >= 2, "a grid needs at least two cells");
    assert!(config.items > 0, "at least one file required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();

    let id = |r: usize, c: usize| MachineId::new((r * config.cols + c) as u32);
    for r in 0..config.rows {
        for c in 0..config.cols {
            b.add_machine(Machine::new(format!("grid-r{r}c{c}"), Bytes::from_gib(4)));
        }
    }
    let link = |b: &mut NetworkBuilder, from: MachineId, to: MachineId, rng: &mut StdRng| {
        let bandwidth = BitsPerSec::new(rng.gen_range(config.bandwidth.clone()));
        b.add_link(VirtualLink::new(from, to, SimTime::ZERO, config.horizon, bandwidth));
    };
    for r in 0..config.rows {
        for c in 0..config.cols {
            if c + 1 < config.cols {
                link(&mut b, id(r, c), id(r, c + 1), &mut rng);
                link(&mut b, id(r, c + 1), id(r, c), &mut rng);
            }
            if r + 1 < config.rows {
                link(&mut b, id(r, c), id(r + 1, c), &mut rng);
                link(&mut b, id(r + 1, c), id(r, c), &mut rng);
            }
        }
    }

    let mut scenario = Scenario::builder(b.build()).horizon(config.horizon);
    let mut sources = Vec::with_capacity(config.items);
    for i in 0..config.items {
        let src = rng.gen_range(0..cells);
        let available = SimTime::from_mins(rng.gen_range(0..=30));
        sources.push((src, available));
        scenario = scenario.add_item(DataItem::new(
            format!("file-{i:03}"),
            Bytes::new(rng.gen_range(config.item_size.clone())),
            vec![DataSource::new(MachineId::new(src as u32), available)],
        ));
    }
    let mut requests = Vec::new();
    let mut seen: Vec<(usize, usize)> = Vec::new();
    let mut attempts = 0;
    while requests.len() < config.requests && attempts < config.requests * 30 {
        attempts += 1;
        let item = rng.gen_range(0..config.items);
        let dest = rng.gen_range(0..cells);
        let (src, available) = sources[item];
        if dest == src || seen.contains(&(item, dest)) {
            continue;
        }
        seen.push((item, dest));
        let offset = rng.gen_range(config.deadline_offset_mins.clone());
        requests.push(Request::new(
            DataItemId::new(item as u32),
            MachineId::new(dest as u32),
            available + SimDuration::from_mins(offset),
            Priority::new(rng.gen_range(0..3)),
        ));
    }
    scenario.add_requests(requests).build().expect("grid construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builds_and_is_strongly_connected() {
        let s = generate_grid(&GridConfig::default(), 0);
        assert!(s.network().is_strongly_connected());
        assert_eq!(s.network().machine_count(), 12);
        assert_eq!(s.item_count(), 15);
        assert_eq!(s.request_count(), 45);
        // 2 * (rows * (cols-1) + (rows-1) * cols) directed mesh links.
        assert_eq!(s.network().link_count(), 2 * (3 * 3 + 2 * 4));
    }

    #[test]
    fn grid_requests_never_target_their_source() {
        let s = generate_grid(&GridConfig::default(), 3);
        for (_, r) in s.requests() {
            assert!(!s.item(r.item()).has_source(r.destination()));
        }
    }

    #[test]
    fn grid_generation_is_deterministic() {
        let a = generate_grid(&GridConfig::default(), 7);
        let b = generate_grid(&GridConfig::default(), 7);
        assert_eq!(a.request_count(), b.request_count());
        for (ra, rb) in a.requests().zip(b.requests()) {
            assert_eq!(ra.1, rb.1);
        }
    }
}
