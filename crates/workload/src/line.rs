//! The adversarial line-network workload family.
//!
//! Even, Medina, and Rosén study online admission on a line of `n`
//! nodes where every job asks for an interval of consecutive links;
//! overlapping intervals compete for the shared middle, and greedy
//! single-path admission is provably far from the offline optimum. This
//! family reproduces that shape for the staging problem: items live at
//! the left endpoint of a random interval and are requested at the right
//! endpoint, so every transfer occupies each link of its span and the
//! heavily nested middle links become the contended resource.

use core::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::NetworkBuilder;
use dstage_model::request::{Priority, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::{BitsPerSec, Bytes};

/// Tunables of the line-network workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LineConfig {
    /// Number of nodes on the line (default 8).
    pub nodes: usize,
    /// Per-physical-link bandwidth range in bit/s (default 64–256 Kbit/s).
    pub bandwidth: RangeInclusive<u64>,
    /// Number of transfers, each its own item (default 24).
    pub transfers: usize,
    /// Item sizes (default 50 KB – 4 MB).
    pub item_size: RangeInclusive<u64>,
    /// Deadline offset after item availability, minutes (default 15–60).
    pub deadline_offset_mins: RangeInclusive<u64>,
    /// Scheduling horizon (default 2 hours).
    pub horizon: SimTime,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            nodes: 8,
            bandwidth: 64_000..=256_000,
            transfers: 24,
            item_size: 50_000..=4_000_000,
            deadline_offset_mins: 15..=60,
            horizon: SimTime::from_hours(2),
        }
    }
}

impl LineConfig {
    /// A scaled-down configuration for fast tests and CI sweeps.
    #[must_use]
    pub fn small() -> Self {
        LineConfig { nodes: 5, transfers: 10, ..LineConfig::default() }
    }
}

/// Generates a line-network scenario. Deterministic in `(config, seed)`.
///
/// Nodes `node-0 .. node-(N-1)` are wired in a path with always-up
/// bidirectional links (one uniformly drawn bandwidth per physical
/// direction). Each transfer draws an interval `a < b` on the line —
/// spans biased long so the middle links are shared by many nested
/// intervals — places its item `seg-{i}` at `node-a`, and requests it
/// from `node-b`.
///
/// # Panics
///
/// Panics if fewer than three nodes are configured.
#[must_use]
pub fn generate_line(config: &LineConfig, seed: u64) -> Scenario {
    let n = config.nodes;
    assert!(n >= 3, "a line needs at least three nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();

    for i in 0..n {
        b.add_machine(Machine::new(format!("node-{i}"), Bytes::from_gib(4)));
    }
    for i in 0..n - 1 {
        let (a, z) = (MachineId::new(i as u32), MachineId::new(i as u32 + 1));
        let forward = BitsPerSec::new(rng.gen_range(config.bandwidth.clone()));
        let backward = BitsPerSec::new(rng.gen_range(config.bandwidth.clone()));
        b.add_link(VirtualLink::new(a, z, SimTime::ZERO, config.horizon, forward));
        b.add_link(VirtualLink::new(z, a, SimTime::ZERO, config.horizon, backward));
    }

    let mut scenario = Scenario::builder(b.build()).horizon(config.horizon);
    let mut spans = Vec::with_capacity(config.transfers);
    for i in 0..config.transfers {
        let a = rng.gen_range(0..n - 1);
        // Bias spans long: draw two lengths and keep the larger, so
        // nested intervals pile up on the middle links.
        let max_len = n - 1 - a;
        let len = rng.gen_range(1..=max_len).max(rng.gen_range(1..=max_len));
        let available = SimTime::from_mins(rng.gen_range(0..=30));
        spans.push((a, a + len, available));
        scenario = scenario.add_item(DataItem::new(
            format!("seg-{i:03}"),
            Bytes::new(rng.gen_range(config.item_size.clone())),
            vec![DataSource::new(MachineId::new(a as u32), available)],
        ));
    }
    let mut requests = Vec::with_capacity(config.transfers);
    for (i, &(_, b_node, available)) in spans.iter().enumerate() {
        let offset = rng.gen_range(config.deadline_offset_mins.clone());
        requests.push(Request::new(
            DataItemId::new(i as u32),
            MachineId::new(b_node as u32),
            available + SimDuration::from_mins(offset),
            Priority::new(rng.gen_range(0..3)),
        ));
    }
    scenario.add_requests(requests).build().expect("line construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_builds_and_is_strongly_connected() {
        let s = generate_line(&LineConfig::default(), 0);
        assert!(s.network().is_strongly_connected());
        assert_eq!(s.network().machine_count(), 8);
        assert_eq!(s.network().link_count(), 2 * 7);
        assert_eq!(s.item_count(), 24);
        assert_eq!(s.request_count(), 24);
    }

    #[test]
    fn line_requests_point_rightward() {
        let s = generate_line(&LineConfig::default(), 1);
        for (_, r) in s.requests() {
            let src = s.item(r.item()).sources()[0].machine;
            assert!(r.destination().index() > src.index(), "transfers run left to right");
        }
    }

    #[test]
    fn line_generation_is_deterministic() {
        let a = generate_line(&LineConfig::default(), 5);
        let b = generate_line(&LineConfig::default(), 5);
        assert_eq!(a.request_count(), b.request_count());
        for (ra, rb) in a.requests().zip(b.requests()) {
            assert_eq!(ra.1, rb.1);
        }
    }
}
