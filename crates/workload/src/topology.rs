//! Random network topology generation (§5.3).
//!
//! For each machine an outbound degree is drawn, then that many distinct
//! target machines; each ordered pair gets one or two physical
//! unidirectional links. The generator guarantees the result is strongly
//! connected, as the paper's test generation program does, by resampling
//! (strong connectivity is overwhelmingly likely at the paper's degrees)
//! and, as a last resort, by adding a Hamiltonian repair cycle.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::GeneratorConfig;

/// A physical unidirectional link between two machines (indices), later
/// expanded into virtual links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalLink {
    /// Sending machine index.
    pub from: usize,
    /// Receiving machine index.
    pub to: usize,
}

/// Draws a strongly connected physical topology on `machines` nodes.
///
/// Returns the physical links (with multiplicity ≤
/// `config.max_links_per_pair` per ordered pair).
pub fn generate_topology(
    config: &GeneratorConfig,
    machines: usize,
    rng: &mut StdRng,
) -> Vec<PhysicalLink> {
    debug_assert!(machines >= 2);
    for _ in 0..100 {
        let links = draw_topology(config, machines, rng);
        if is_strongly_connected(machines, &links) {
            return links;
        }
    }
    // Resampling failed (only possible with extreme configs, e.g.
    // out-degree 1): repair with a random cycle through all machines.
    let mut links = draw_topology(config, machines, rng);
    let mut order: Vec<usize> = (0..machines).collect();
    order.shuffle(rng);
    for w in 0..machines {
        let from = order[w];
        let to = order[(w + 1) % machines];
        links.push(PhysicalLink { from, to });
    }
    debug_assert!(is_strongly_connected(machines, &links));
    links
}

fn draw_topology(config: &GeneratorConfig, machines: usize, rng: &mut StdRng) -> Vec<PhysicalLink> {
    // §5.3: each machine's outbound degree is drawn, then "the end
    // machines for the links are randomly generated", with at most
    // `max_links_per_pair` physical links between any ordered pair and no
    // self-links. Drawing end machines per *link* (rather than per
    // neighbour) is what makes the at-most-two constraint bite.
    let mut links = Vec::new();
    let max_per_pair = config.max_links_per_pair.max(1);
    let lo = *config.out_degree.start();
    let hi = (*config.out_degree.end()).min((machines - 1) * max_per_pair);
    let lo = lo.min(hi);
    for from in 0..machines {
        let degree = rng.gen_range(lo..=hi);
        let mut per_target = vec![0usize; machines];
        let mut placed = 0;
        while placed < degree {
            let to = rng.gen_range(0..machines);
            if to == from || per_target[to] >= max_per_pair {
                continue;
            }
            per_target[to] += 1;
            links.push(PhysicalLink { from, to });
            placed += 1;
        }
    }
    links
}

/// Kosaraju-style strong connectivity check on the physical adjacency.
pub fn is_strongly_connected(machines: usize, links: &[PhysicalLink]) -> bool {
    if machines <= 1 {
        return true;
    }
    let mut fwd = vec![Vec::new(); machines];
    let mut bwd = vec![Vec::new(); machines];
    for l in links {
        fwd[l.from].push(l.to);
        bwd[l.to].push(l.from);
    }
    let reaches_all = |adj: &[Vec<usize>]| {
        let mut seen = vec![false; machines];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == machines
    };
    reaches_all(&fwd) && reaches_all(&bwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_topology_is_strongly_connected() {
        let config = GeneratorConfig::default();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let links = generate_topology(&config, 11, &mut rng);
            assert!(is_strongly_connected(11, &links), "seed {seed}");
        }
    }

    #[test]
    fn degrees_and_multiplicity_respect_bounds() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let links = draw_topology(&config, 11, &mut rng);
        for from in 0..11 {
            let outgoing: Vec<usize> =
                links.iter().filter(|l| l.from == from).map(|l| l.to).collect();
            // Outbound degree (number of physical links) in 4..=7.
            assert!(
                (4..=7).contains(&outgoing.len()),
                "machine {from} has {} links",
                outgoing.len()
            );
            for &to in &outgoing {
                let multiplicity = outgoing.iter().filter(|&&t| t == to).count();
                assert!(multiplicity <= 2, "more than two links {from}->{to}");
                assert!(to != from, "self-link generated");
            }
        }
    }

    #[test]
    fn repair_cycle_kicks_in_for_degenerate_configs() {
        // Out-degree 1 on 10 machines rarely yields strong connectivity;
        // the helper must still terminate with a connected graph.
        let config = GeneratorConfig { out_degree: 1..=1, ..GeneratorConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let links = generate_topology(&config, 10, &mut rng);
        assert!(is_strongly_connected(10, &links));
    }

    #[test]
    fn connectivity_check_detects_disconnection() {
        let links = vec![PhysicalLink { from: 0, to: 1 }, PhysicalLink { from: 1, to: 0 }];
        assert!(is_strongly_connected(2, &links));
        assert!(!is_strongly_connected(3, &links));
        assert!(!is_strongly_connected(2, &[PhysicalLink { from: 0, to: 1 }]));
    }

    #[test]
    fn out_degree_capped_by_machine_count() {
        // 3 machines support at most (3-1)*2 = 4 outgoing links; degrees
        // of 4..=7 must be capped there.
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let links = draw_topology(&config, 3, &mut rng);
        for from in 0..3 {
            let count = links.iter().filter(|l| l.from == from).count();
            assert!(count <= 4, "machine {from} has {count} links");
            for to in 0..3 {
                let multiplicity = links.iter().filter(|l| l.from == from && l.to == to).count();
                assert!(multiplicity <= 2);
            }
        }
    }
}
