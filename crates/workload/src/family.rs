//! Named scenario families.
//!
//! A [`Family`] names one workload generator so sweeps, the admission
//! daemon, and the load generator can all select catalogs by the same
//! strings: the paper's §5.3 uniform random generator plus the four
//! structured families (satcom, WAN, grid, line). Every family is
//! deterministic in `(family, seed, scale)`.

use dstage_model::scenario::Scenario;

use crate::config::GeneratorConfig;
use crate::grid::{generate_grid, GridConfig};
use crate::line::{generate_line, LineConfig};
use crate::satcom::{generate_satcom, SatcomConfig};
use crate::wan::{generate_wan, WanConfig};

/// One named scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// The paper's §5.3 uniform random generator.
    Paper,
    /// The BADD-flavoured satcom topology (rear sites, trunk, spokes).
    Satcom,
    /// Inter-datacenter WAN: few fat links, diurnal bandwidth, P2MP mixes.
    Wan,
    /// Grid file transfers: rows × cols mesh, multi-hop paths.
    Grid,
    /// The Even/Medina/Rosén adversarial line network.
    Line,
}

impl Family {
    /// All families, in presentation order.
    pub const ALL: [Family; 5] =
        [Family::Paper, Family::Satcom, Family::Wan, Family::Grid, Family::Line];

    /// The structured (non-random) families added on top of the paper's
    /// generator.
    pub const STRUCTURED: [Family; 4] = [Family::Satcom, Family::Wan, Family::Grid, Family::Line];

    /// The family's canonical name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Paper => "paper",
            Family::Satcom => "satcom",
            Family::Wan => "wan",
            Family::Grid => "grid",
            Family::Line => "line",
        }
    }

    /// Parses a family name (the inverse of [`Family::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The comma-separated list of valid names, for error messages.
    #[must_use]
    pub fn names() -> String {
        Family::ALL.map(Family::name).join(", ")
    }

    /// Generates one scenario of this family at full (paper) scale.
    /// Deterministic in `(self, seed)`.
    #[must_use]
    pub fn generate(self, seed: u64) -> Scenario {
        match self {
            Family::Paper => crate::generate(&GeneratorConfig::paper(), seed),
            Family::Satcom => generate_satcom(&SatcomConfig::default(), seed),
            Family::Wan => generate_wan(&WanConfig::default(), seed),
            Family::Grid => generate_grid(&GridConfig::default(), seed),
            Family::Line => generate_line(&LineConfig::default(), seed),
        }
    }

    /// Generates one scaled-down scenario of this family, for fast tests
    /// and CI sweeps. Deterministic in `(self, seed)`.
    #[must_use]
    pub fn generate_small(self, seed: u64) -> Scenario {
        match self {
            Family::Paper => crate::generate(&GeneratorConfig::small(), seed),
            Family::Satcom => generate_satcom(
                &SatcomConfig {
                    spokes: 4,
                    items: 12,
                    requests_per_spoke: 4,
                    ..SatcomConfig::default()
                },
                seed,
            ),
            Family::Wan => generate_wan(&WanConfig::small(), seed),
            Family::Grid => generate_grid(&GridConfig::small(), seed),
            Family::Line => generate_line(&LineConfig::small(), seed),
        }
    }
}

impl core::fmt::Display for Family {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::from_name(family.name()), Some(family));
        }
        assert_eq!(Family::from_name("nope"), None);
        assert_eq!(Family::names(), "paper, satcom, wan, grid, line");
    }

    #[test]
    fn every_family_generates_at_both_scales() {
        for family in Family::ALL {
            let full = family.generate(0);
            let small = family.generate_small(0);
            assert!(full.request_count() > 0, "{family}");
            assert!(small.request_count() > 0, "{family}");
            assert!(
                small.request_count() <= full.request_count(),
                "{family}: small scale must not exceed full scale"
            );
        }
    }
}
