//! Random scenario generation for the data staging simulation study.
//!
//! [`generate`] reproduces the test-case generator of §5.3: 10–12
//! machines with 10 MB–20 GB storage, outbound degrees 4–7 with at most
//! two physical links per ordered pair (strong connectivity guaranteed),
//! virtual-link windows drawn from {30 m, 1 h, 2 h, 4 h} covering 50–100 %
//! of a day, 10 Kbit/s–1.5 Mbit/s bandwidths, 20–40 requests per machine
//! over items of 10 KB–100 MB with ≤5 sources/≤5 destinations, deadlines
//! 15–60 minutes after availability, γ = 6 minutes, 2-hour horizon.
//!
//! Everything is driven by an explicit seed: the paper's "40 randomly
//! generated test cases" are exactly `(0..40).map(|s| generate(&config, s))`.
//!
//! # Examples
//!
//! ```
//! use dstage_workload::{generate, GeneratorConfig};
//!
//! let scenario = generate(&GeneratorConfig::small(), 0);
//! assert!(scenario.network().is_strongly_connected());
//! assert!(scenario.request_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod family;
pub mod grid;
pub mod line;
pub mod links;
pub mod requests;
pub mod satcom;
pub mod small;
pub mod topology;
pub mod wan;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::NetworkBuilder;
use dstage_model::scenario::Scenario;
use dstage_model::units::{BitsPerSec, Bytes};

pub use config::GeneratorConfig;
pub use family::Family;

/// Generates one random scenario.
///
/// Deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (fewer than 2 machines, an
/// empty window-duration list, or more sources than machines).
#[must_use]
pub fn generate(config: &GeneratorConfig, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let machines = rng.gen_range(config.machines.clone());
    assert!(machines >= 2, "a staging network needs at least two machines");
    assert!(!config.window_durations.is_empty(), "no window durations configured");

    // Machines with uniform storage capacities.
    let mut builder = NetworkBuilder::new();
    let (cap_lo, cap_hi) = config.storage_range();
    for i in 0..machines {
        let capacity = Bytes::new(rng.gen_range(cap_lo.as_u64()..=cap_hi.as_u64()));
        builder.add_machine(Machine::new(format!("machine-{i:02}"), capacity));
    }

    // Physical topology (strongly connected), then virtual links.
    let physical = topology::generate_topology(config, machines, &mut rng);
    for link in &physical {
        let bandwidth = BitsPerSec::new(links::draw_bandwidth(config, &mut rng));
        for window in links::generate_windows(config, &mut rng) {
            builder.add_link(VirtualLink::new(
                dstage_model::ids::MachineId::new(link.from as u32),
                dstage_model::ids::MachineId::new(link.to as u32),
                window.start,
                window.end,
                bandwidth,
            ));
        }
    }

    // Items and requests.
    let factor = rng.gen_range(config.request_factor.clone());
    let total_requests = machines * factor as usize;
    let generated = requests::generate_items(config, machines, total_requests, &mut rng);

    let mut scenario =
        Scenario::builder(builder.build()).gc_delay(config.gc_delay).horizon(config.horizon);
    for g in &generated {
        scenario = scenario.add_item(g.item.clone());
    }
    for g in &generated {
        scenario = scenario.add_requests(g.requests.iter().copied());
    }
    scenario.build().expect("generator invariants guarantee a valid scenario")
}

/// Generates the paper's 40-test-case suite (seeds `0..40`) under the
/// given configuration.
#[must_use]
pub fn paper_test_cases(config: &GeneratorConfig) -> Vec<Scenario> {
    (0..40).map(|seed| generate(config, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::small();
        let a = generate(&config, 17);
        let b = generate(&config, 17);
        assert_eq!(a.request_count(), b.request_count());
        assert_eq!(a.item_count(), b.item_count());
        assert_eq!(a.network().machine_count(), b.network().machine_count());
        assert_eq!(a.network().link_count(), b.network().link_count());
        // Spot-check one deep value.
        if a.request_count() > 0 {
            let ra = a.request(dstage_model::ids::RequestId::new(0));
            let rb = b.request(dstage_model::ids::RequestId::new(0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let config = GeneratorConfig::paper();
        let a = generate(&config, 0);
        let b = generate(&config, 1);
        // Extremely unlikely to coincide in request count AND link count.
        assert!(
            a.request_count() != b.request_count()
                || a.network().link_count() != b.network().link_count()
        );
    }

    #[test]
    fn paper_scale_invariants() {
        let config = GeneratorConfig::paper();
        for seed in 0..5 {
            let s = generate(&config, seed);
            let m = s.network().machine_count();
            assert!((10..=12).contains(&m), "seed {seed}");
            assert!(s.network().is_strongly_connected(), "seed {seed}");
            let requests = s.request_count();
            assert!(
                (20 * m..=40 * m).contains(&requests),
                "seed {seed}: {requests} requests on {m} machines"
            );
            for (_, item) in s.items() {
                assert!(!item.sources().is_empty());
            }
            // Every request's destination is not a source of its item.
            for (_, r) in s.requests() {
                assert!(!s.item(r.item()).has_source(r.destination()));
            }
        }
    }

    #[test]
    fn paper_test_cases_returns_forty() {
        // Use the small config to keep the test fast.
        let cases = paper_test_cases(&GeneratorConfig::small());
        assert_eq!(cases.len(), 40);
    }

    #[test]
    fn congestion_knob_changes_load() {
        let light = generate(&GeneratorConfig::small().with_congestion(0.5), 3);
        let heavy = generate(&GeneratorConfig::small().with_congestion(3.0), 3);
        assert!(heavy.request_count() > light.request_count());
    }
}
