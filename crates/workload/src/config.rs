//! Generator configuration (the parameters of §5.3).

use core::ops::RangeInclusive;

use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::Bytes;

/// All tunables of the random scenario generator, defaulting to the
/// paper's §5.3 values. Every distribution is uniform over its range, as
/// in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of machines (paper: 10–12).
    pub machines: RangeInclusive<usize>,
    /// Per-machine storage capacity (paper: 10 MB – 20 GB).
    pub storage: RangeInclusive<u64>,
    /// Outbound degree of each machine: number of *machines* it can send
    /// to directly (paper: 4–7).
    pub out_degree: RangeInclusive<usize>,
    /// Maximum physical unidirectional links between an ordered machine
    /// pair (paper: 2). The generator picks uniformly in `1..=max`.
    pub max_links_per_pair: usize,
    /// Requests as a multiple of the machine count (paper: 20–40×).
    pub request_factor: RangeInclusive<u32>,
    /// Maximum initial sources per item (paper: 5).
    pub max_sources: usize,
    /// Maximum destinations per item (paper: 5).
    pub max_destinations: usize,
    /// Data item size in bytes (paper: 10 KB – 100 MB).
    pub item_size: RangeInclusive<u64>,
    /// Physical link bandwidth in bit/s (paper: 10 Kbit/s – 1.5 Mbit/s).
    pub bandwidth: RangeInclusive<u64>,
    /// Virtual-link window durations to draw from (paper: 30 m, 1 h, 2 h,
    /// 4 h).
    pub window_durations: Vec<SimDuration>,
    /// Percent of the day a physical link is available, in steps of 10
    /// (paper: 50–100 %).
    pub availability_percent: RangeInclusive<u32>,
    /// Latest item availability time (paper: within the first 60 minutes).
    pub item_start_max: SimTime,
    /// Deadline offset after the item's availability (paper: 15–60 min).
    pub deadline_offset: RangeInclusive<u64>,
    /// Number of priority levels (paper: 3 — low/medium/high).
    pub priority_levels: u8,
    /// Garbage-collection delay γ (paper: 6 minutes).
    pub gc_delay: SimDuration,
    /// Scheduling horizon (paper: effectively 2 hours).
    pub horizon: SimTime,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            machines: 10..=12,
            storage: 10_000_000..=20_000_000_000,
            out_degree: 4..=7,
            max_links_per_pair: 2,
            request_factor: 20..=40,
            max_sources: 5,
            max_destinations: 5,
            item_size: 10_000..=100_000_000,
            bandwidth: 10_000..=1_500_000,
            window_durations: vec![
                SimDuration::from_mins(30),
                SimDuration::from_hours(1),
                SimDuration::from_hours(2),
                SimDuration::from_hours(4),
            ],
            availability_percent: 50..=100,
            item_start_max: SimTime::from_mins(60),
            deadline_offset: 15..=60, // minutes
            priority_levels: 3,
            gc_delay: SimDuration::from_mins(6),
            horizon: SimTime::from_hours(2),
        }
    }
}

impl GeneratorConfig {
    /// The paper's configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> Self {
        GeneratorConfig::default()
    }

    /// A scaled-down configuration for fast unit tests and benches:
    /// 5–6 machines, ~8 requests per machine, smaller items.
    #[must_use]
    pub fn small() -> Self {
        GeneratorConfig {
            machines: 5..=6,
            out_degree: 2..=4,
            request_factor: 6..=10,
            item_size: 10_000..=5_000_000,
            ..GeneratorConfig::default()
        }
    }

    /// The largest request-per-machine factor [`Self::with_congestion`]
    /// will produce. Beyond this the generator would allocate hundreds of
    /// millions of requests per scenario, which no sweep can use; a
    /// congestion factor that lands past the ceiling clamps here with a
    /// logged warning instead of silently saturating the integer range.
    pub const MAX_REQUEST_FACTOR: u32 = 100_000;

    /// Scales the request load, the paper's "congestion of the network"
    /// future-work knob: `factor` multiplies the request-per-machine
    /// range.
    ///
    /// Out-of-range factors are clamped, not wrapped: a non-finite or
    /// non-positive factor falls back to `1.0`, and a product past
    /// [`Self::MAX_REQUEST_FACTOR`] clamps to it — both with a warning on
    /// stderr.
    #[must_use]
    pub fn with_congestion(mut self, factor: f64) -> Self {
        let factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            eprintln!(
                "warning: congestion factor {factor} is not a positive finite number; using 1.0"
            );
            1.0
        };
        let scale = |bound: u32| {
            let scaled = (f64::from(bound) * factor).round();
            if scaled >= f64::from(Self::MAX_REQUEST_FACTOR) {
                eprintln!(
                    "warning: congestion factor {factor} pushes the request factor past {}; clamping",
                    Self::MAX_REQUEST_FACTOR
                );
                Self::MAX_REQUEST_FACTOR
            } else {
                // In-range and rounded: the cast is exact.
                scaled.max(1.0) as u32
            }
        };
        let lo = scale(*self.request_factor.start());
        let hi = scale(*self.request_factor.end());
        self.request_factor = lo..=hi.max(lo);
        self
    }

    /// Storage in [`Bytes`] form.
    #[must_use]
    pub(crate) fn storage_range(&self) -> (Bytes, Bytes) {
        (Bytes::new(*self.storage.start()), Bytes::new(*self.storage.end()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = GeneratorConfig::default();
        assert_eq!(c.machines, 10..=12);
        assert_eq!(c.out_degree, 4..=7);
        assert_eq!(c.max_links_per_pair, 2);
        assert_eq!(c.request_factor, 20..=40);
        assert_eq!(c.max_sources, 5);
        assert_eq!(c.max_destinations, 5);
        assert_eq!(c.item_size, 10_000..=100_000_000);
        assert_eq!(c.bandwidth, 10_000..=1_500_000);
        assert_eq!(c.window_durations.len(), 4);
        assert_eq!(c.availability_percent, 50..=100);
        assert_eq!(c.gc_delay, SimDuration::from_mins(6));
        assert_eq!(c.horizon, SimTime::from_hours(2));
        assert_eq!(c.priority_levels, 3);
    }

    #[test]
    fn congestion_scales_request_factor() {
        let c = GeneratorConfig::default().with_congestion(0.5);
        assert_eq!(c.request_factor, 10..=20);
        let c = GeneratorConfig::default().with_congestion(2.0);
        assert_eq!(c.request_factor, 40..=80);
    }

    #[test]
    fn congestion_clamps_out_of_range_factors() {
        // A huge factor clamps to the ceiling instead of saturating the
        // integer range (which used to explode the request count).
        let c = GeneratorConfig::default().with_congestion(1e18);
        assert_eq!(
            c.request_factor,
            GeneratorConfig::MAX_REQUEST_FACTOR..=GeneratorConfig::MAX_REQUEST_FACTOR
        );
        // Non-finite and non-positive factors fall back to the identity.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -3.0] {
            let c = GeneratorConfig::default().with_congestion(bad);
            assert_eq!(c.request_factor, 20..=40, "factor {bad}");
        }
        // A tiny factor bottoms out at one request per machine.
        let c = GeneratorConfig::default().with_congestion(1e-9);
        assert_eq!(c.request_factor, 1..=1);
    }
}
