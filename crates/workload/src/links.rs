//! Virtual-link window generation (§5.3).
//!
//! For each physical link: draw a window duration from {30 m, 1 h, 2 h,
//! 4 h} and an availability percentage (50–100 % of a 24-hour day in steps
//! of 10). The number of virtual links is `floor(available_time /
//! duration)`. The first window starts within the first third of the total
//! unavailable time; the gaps between windows are positive and sum (with
//! the lead-in and tail) to the unavailable time.

use rand::rngs::StdRng;
use rand::Rng;

use dstage_model::time::SimTime;

use crate::config::GeneratorConfig;

/// One generated availability window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

/// Generates the virtual-link windows of one physical link.
///
/// Guarantees: windows are disjoint, ordered, all of the drawn duration,
/// and all inside the 24-hour day. When the drawn duration exceeds the
/// drawn available time the link gets no windows at all — the allocation
/// is empty rather than rounded up to a window the availability budget
/// cannot pay for. With the paper's parameters (availability ≥ 50 %,
/// durations ≤ 4 h) at least three windows always fit, so existing
/// configurations never hit the empty case.
pub fn generate_windows(config: &GeneratorConfig, rng: &mut StdRng) -> Vec<Window> {
    const DAY_MS: u64 = 24 * 3_600_000;
    let duration = config.window_durations[rng.gen_range(0..config.window_durations.len())];
    let lo = *config.availability_percent.start();
    let hi = *config.availability_percent.end();
    debug_assert!(lo >= 1 && hi <= 100 && lo <= hi);
    // Steps of ten percent, per the paper.
    let steps = (hi - lo) / 10;
    let percent = lo + 10 * rng.gen_range(0..=steps);
    let available_ms = DAY_MS * u64::from(percent) / 100;
    let count = available_ms / duration.as_millis();
    if count == 0 {
        // Not even one window fits in the available time.
        return Vec::new();
    }
    let busy_ms = count * duration.as_millis();
    let unavailable_ms = DAY_MS.saturating_sub(busy_ms);

    // Lead-in: uniform in [0, unavailable/3].
    let lead_in = if unavailable_ms == 0 { 0 } else { rng.gen_range(0..=unavailable_ms / 3) };
    // Distribute the remaining unavailable time over `count - 1` positive
    // gaps plus a tail: draw random weights, scale to a random fraction of
    // the remaining budget so the tail stays positive too.
    let mut gaps = vec![0u64; (count as usize).saturating_sub(1)];
    let budget = unavailable_ms - lead_in;
    if !gaps.is_empty() && budget > gaps.len() as u64 {
        let weights: Vec<u64> = (0..gaps.len()).map(|_| rng.gen_range(1..=1_000u64)).collect();
        let total: u64 = weights.iter().sum();
        // Spend between half and all of the budget on inter-window gaps,
        // reserving one millisecond per gap so every gap is positive.
        let spend_frac = rng.gen_range(500..=1_000u64);
        let spend = budget * spend_frac / 1_000;
        let reserve = gaps.len() as u64;
        let distributable = spend.saturating_sub(reserve);
        for (gap, w) in gaps.iter_mut().zip(&weights) {
            *gap = 1 + distributable * w / total.max(1);
        }
        // Guard against rounding pushing us past the budget.
        let mut overshoot = gaps.iter().sum::<u64>().saturating_sub(budget);
        for gap in gaps.iter_mut().rev() {
            if overshoot == 0 {
                break;
            }
            let cut = overshoot.min(gap.saturating_sub(1));
            *gap -= cut;
            overshoot -= cut;
        }
    } else if !gaps.is_empty() {
        // Tiny budget: give every gap its minimum if possible.
        let per = (budget / gaps.len() as u64).max(if budget > 0 { 1 } else { 0 });
        for gap in &mut gaps {
            *gap = per.min(1.max(per));
        }
        // Clamp to the budget.
        let mut acc = 0u64;
        for gap in &mut gaps {
            if acc + *gap > budget {
                *gap = budget.saturating_sub(acc);
            }
            acc += *gap;
        }
    }

    let mut windows = Vec::with_capacity(count as usize);
    let mut cursor = lead_in;
    for i in 0..count as usize {
        let start = cursor;
        let end = start + duration.as_millis();
        windows.push(Window { start: SimTime::from_millis(start), end: SimTime::from_millis(end) });
        cursor = end + gaps.get(i).copied().unwrap_or(0);
    }
    debug_assert!(windows.last().is_none_or(|w| w.end.as_millis() <= DAY_MS));
    windows
}

/// The drawn per-physical-link bandwidth (uniform over the configured
/// range); all virtual links of a physical link share it.
pub fn draw_bandwidth(config: &GeneratorConfig, rng: &mut StdRng) -> u64 {
    rng.gen_range(config.bandwidth.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const DAY_MS: u64 = 24 * 3_600_000;

    #[test]
    fn windows_are_disjoint_ordered_and_inside_the_day() {
        let config = GeneratorConfig::default();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let windows = generate_windows(&config, &mut rng);
            assert!(!windows.is_empty(), "seed {seed}");
            for w in &windows {
                assert!(w.start < w.end, "seed {seed}");
                assert!(w.end.as_millis() <= DAY_MS, "seed {seed}");
            }
            let busy: u64 = windows.iter().map(|w| w.end.as_millis() - w.start.as_millis()).sum();
            for pair in windows.windows(2) {
                if busy < DAY_MS {
                    // Unavailable time exists: gaps must be positive.
                    assert!(pair[0].end < pair[1].start, "seed {seed}: gap must be positive");
                } else {
                    // 100 % availability: windows abut.
                    assert!(pair[0].end <= pair[1].start, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn all_windows_share_one_duration() {
        let config = GeneratorConfig::default();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let windows = generate_windows(&config, &mut rng);
            let d0 = windows[0].end - windows[0].start;
            assert!(config.window_durations.contains(&d0), "seed {seed}");
            for w in &windows {
                assert_eq!(w.end - w.start, d0, "seed {seed}");
            }
        }
    }

    #[test]
    fn busy_time_approximates_chosen_percentage() {
        // Across many seeds the fraction of the day covered by windows
        // must stay within the configured percentage band (50-100 %),
        // up to one window of rounding.
        let config = GeneratorConfig::default();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let windows = generate_windows(&config, &mut rng);
            let busy: u64 = windows.iter().map(|w| w.end.as_millis() - w.start.as_millis()).sum();
            let duration = windows[0].end.as_millis() - windows[0].start.as_millis();
            // floor(available / duration) * duration >= available - duration
            assert!(busy + duration >= DAY_MS / 2, "seed {seed}: busy {busy}");
            assert!(busy <= DAY_MS, "seed {seed}");
        }
    }

    #[test]
    fn lead_in_within_first_third_of_unavailable_time() {
        let config = GeneratorConfig::default();
        for seed in 0..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let windows = generate_windows(&config, &mut rng);
            let busy: u64 = windows.iter().map(|w| w.end.as_millis() - w.start.as_millis()).sum();
            let unavailable = DAY_MS - busy;
            assert!(
                windows[0].start.as_millis() <= unavailable / 3 + 1,
                "seed {seed}: lead-in too large"
            );
        }
    }

    #[test]
    fn duration_longer_than_available_time_yields_no_windows() {
        // Regression: with 10 % availability (2.4 h) and a 4-hour window
        // duration, zero windows fit. This used to round the count up to
        // one (and the count-zero path would underflow the gap vector);
        // the correct allocation is empty.
        let config = GeneratorConfig {
            availability_percent: 10..=10,
            window_durations: vec![dstage_model::time::SimDuration::from_hours(4)],
            ..GeneratorConfig::default()
        };
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let windows = generate_windows(&config, &mut rng);
            assert!(windows.is_empty(), "seed {seed}: expected no windows, got {windows:?}");
        }
    }

    #[test]
    fn bandwidth_in_configured_range() {
        let config = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let bw = draw_bandwidth(&config, &mut rng);
            assert!((10_000..=1_500_000).contains(&bw));
        }
    }
}
