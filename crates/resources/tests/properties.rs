//! Property-based tests for the resource substrate.
//!
//! These check the structural invariants that the scheduler relies on:
//! busy intervals stay disjoint and sorted, gap search returns genuinely
//! free and genuinely earliest slots, and capacity answers agree between
//! the probe (`earliest_hold_start`) and the commit (`reserve`).

use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::Bytes;
use dstage_resources::interval::BusyIntervals;
use dstage_resources::timeline::CapacityTimeline;
use proptest::prelude::*;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

/// Arbitrary disjoint busy sets built by attempting random reservations.
fn busy_set(attempts: Vec<(u64, u64)>) -> BusyIntervals {
    let mut b = BusyIntervals::new();
    for (s, len) in attempts {
        let start = t(s % 10_000);
        let end = t((s % 10_000) + 1 + len % 500);
        let _ = b.reserve(start, end);
    }
    b
}

proptest! {
    #[test]
    fn busy_intervals_stay_sorted_and_disjoint(attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..40)) {
        let b = busy_set(attempts);
        let spans: Vec<_> = b.iter().collect();
        for w in spans.windows(2) {
            // Strictly increasing and non-touching (abutting spans merge).
            prop_assert!(w[0].1 < w[1].0, "spans {:?} not disjoint/merged", spans);
        }
        for (s, e) in spans {
            prop_assert!(s < e);
        }
    }

    #[test]
    fn reserve_reports_overlap_iff_not_free(
        attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..30),
        probe_start in 0u64..11_000,
        probe_len in 1u64..600,
    ) {
        let mut b = busy_set(attempts);
        let start = t(probe_start);
        let end = t(probe_start + probe_len);
        let was_free = b.is_free(start, end);
        let result = b.reserve(start, end);
        prop_assert_eq!(was_free, result.is_ok());
    }

    #[test]
    fn earliest_gap_is_free_and_earliest(
        attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..30),
        ready in 0u64..11_000,
        len in 1u64..600,
        limit in 0u64..20_000,
    ) {
        let b = busy_set(attempts);
        let duration = SimDuration::from_millis(len);
        let limit = t(limit);
        match b.earliest_gap(t(ready), duration, limit) {
            Some(start) => {
                let end = start + duration;
                prop_assert!(start >= t(ready));
                prop_assert!(end <= limit);
                prop_assert!(b.is_free(start, end), "reported gap not free");
                // Earliest: one millisecond earlier must not fit (unless
                // that would violate the ready time).
                if start > t(ready) {
                    let earlier = SimTime::from_millis(start.as_millis() - 1);
                    prop_assert!(
                        !b.is_free(earlier, earlier + duration),
                        "a strictly earlier start also fits"
                    );
                }
            }
            None => {
                // Exhaustive check: no start in [ready, limit-len] fits.
                // (Bounded domain keeps this tractable.)
                let ready_ms = ready;
                let Some(latest) = limit.as_millis().checked_sub(len) else {
                    return Ok(());
                };
                for s in ready_ms..=latest.min(ready_ms + 12_000) {
                    let cs = t(s);
                    prop_assert!(
                        !b.is_free(cs, cs + duration),
                        "earliest_gap returned None but start {} fits", s
                    );
                }
            }
        }
    }

    #[test]
    fn latest_gap_is_free_and_latest(
        attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..30),
        ready in 0u64..11_000,
        len in 1u64..600,
        limit in 0u64..20_000,
    ) {
        let b = busy_set(attempts);
        let duration = SimDuration::from_millis(len);
        let limit = t(limit);
        match b.latest_gap(t(ready), duration, limit) {
            Some(start) => {
                let end = start + duration;
                prop_assert!(start >= t(ready));
                prop_assert!(end <= limit);
                prop_assert!(b.is_free(start, end), "reported gap not free");
                // Latest: one millisecond later must not fit (unless that
                // would overshoot the limit).
                let later = start + SimDuration::from_millis(1);
                if later + duration <= limit {
                    prop_assert!(
                        !b.is_free(later, later + duration),
                        "a strictly later start also fits"
                    );
                }
            }
            None => {
                // Exhaustive check: no start in [ready, limit-len] fits.
                // (Bounded domain keeps this tractable.)
                let Some(latest) = limit.as_millis().checked_sub(len) else {
                    return Ok(());
                };
                for s in ready..=latest.min(ready + 12_000) {
                    let cs = t(s);
                    prop_assert!(
                        !b.is_free(cs, cs + duration),
                        "latest_gap returned None but start {} fits", s
                    );
                }
            }
        }
    }

    #[test]
    fn latest_gap_mirrors_earliest_gap_under_time_reversal(
        attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..30),
        ready in 0u64..11_000,
        len in 1u64..600,
        limit in 0u64..20_000,
    ) {
        // Reflect the busy set around a pivot beyond every span: a span
        // [s, e) maps to [P-e, P-s), ready and limit swap roles, and the
        // latest start in the original set corresponds to the earliest
        // start in the mirror. This is the defining property of `latest_gap`.
        const PIVOT: u64 = 40_000;
        let b = busy_set(attempts);
        let mut mirrored = BusyIntervals::new();
        for (s, e) in b.iter() {
            mirrored
                .reserve(t(PIVOT - e.as_millis()), t(PIVOT - s.as_millis()))
                .expect("mirrored spans of a disjoint set stay disjoint");
        }
        let duration = SimDuration::from_millis(len);
        let forward = b.latest_gap(t(ready), duration, t(limit));
        // In mirror time the limit becomes the ready bound and vice versa:
        // a span [start, start+len) maps to [PIVOT-limit .. PIVOT-ready].
        let mirror = mirrored.earliest_gap(t(PIVOT - limit.min(PIVOT)), duration, t(PIVOT - ready.min(PIVOT)));
        match (forward, mirror) {
            (Some(f), Some(m)) => {
                // start <-> PIVOT - end = PIVOT - start - len.
                prop_assert_eq!(
                    f.as_millis(),
                    PIVOT - m.as_millis() - len,
                    "latest start does not mirror the earliest start"
                );
            }
            (None, None) => {}
            (f, m) => prop_assert!(false, "feasibility disagrees under reversal: {:?} vs {:?}", f, m),
        }
    }

    #[test]
    fn latest_gap_handles_near_max_overflow_edges(
        offset in 0u64..100,
        len in 1u64..200,
    ) {
        // Checked arithmetic at the top of representable time, mirroring
        // the PR-4 `earliest_gap` overflow fix: a candidate end may never
        // silently wrap past `SimTime::MAX`.
        let b = BusyIntervals::new();
        let limit = SimTime::from_millis(u64::MAX - offset);
        match b.latest_gap(SimTime::ZERO, SimDuration::from_millis(len), limit) {
            Some(start) => {
                prop_assert_eq!(start.as_millis(), u64::MAX - offset - len);
            }
            None => prop_assert!(false, "an empty set always fits below MAX"),
        }
        // A duration longer than the whole timeline can never fit.
        prop_assert_eq!(
            b.latest_gap(t(2), SimDuration::MAX, SimTime::MAX),
            None
        );
        // Busy right up to MAX: sliding before the span must use checked
        // subtraction, not wrap.
        let mut busy = BusyIntervals::new();
        busy.reserve(SimTime::from_millis(len / 2), SimTime::MAX).unwrap();
        prop_assert_eq!(
            busy.latest_gap(SimTime::ZERO, SimDuration::from_millis(len), SimTime::MAX),
            None
        );
    }

    #[test]
    fn earliest_gap_monotone_in_ready(
        attempts in prop::collection::vec((0u64..10_000, 0u64..500), 0..30),
        ready in 0u64..10_000,
        advance in 0u64..2_000,
        len in 1u64..600,
    ) {
        // The FIFO property the Dijkstra correctness argument rests on:
        // a later ready time never yields an earlier slot.
        let b = busy_set(attempts);
        let duration = SimDuration::from_millis(len);
        let g1 = b.earliest_gap(t(ready), duration, SimTime::from_millis(50_000));
        let g2 = b.earliest_gap(t(ready + advance), duration, SimTime::from_millis(50_000));
        match (g1, g2) {
            (Some(a), Some(b_)) => prop_assert!(a <= b_),
            (None, Some(_)) => prop_assert!(false, "later ready found a slot an earlier one missed"),
            _ => {}
        }
    }

    #[test]
    fn timeline_usage_never_negative_and_peak_consistent(
        cap in 1_000u64..100_000,
        reservations in prop::collection::vec((0u64..5_000, 1u64..2_000, 1u64..50_000), 0..30),
        probe in 0u64..8_000,
    ) {
        let mut tl = CapacityTimeline::new(Bytes::new(cap));
        for (from, len, size) in reservations {
            let _ = tl.reserve(Bytes::new(size), t(from), t(from + len));
        }
        // Accepted reservations never exceed capacity anywhere.
        let peak = tl.peak_usage(SimTime::ZERO, t(10_000));
        prop_assert!(peak.as_u64() <= cap, "peak {} exceeds cap {}", peak, cap);
        // Point usage is bounded by span peak.
        let at = tl.used_at(t(probe));
        prop_assert!(at <= tl.peak_usage(t(probe), t(probe + 1)).max(at));
        prop_assert!(tl.peak_usage(t(probe), t(probe + 1)) == at);
    }

    #[test]
    fn earliest_hold_start_agrees_with_can_hold(
        cap in 1_000u64..50_000,
        reservations in prop::collection::vec((0u64..5_000, 1u64..2_000, 1u64..20_000), 0..20),
        size in 1u64..30_000,
        from in 0u64..6_000,
        len in 1u64..3_000,
    ) {
        let mut tl = CapacityTimeline::new(Bytes::new(cap));
        for (f, l, s) in reservations {
            let _ = tl.reserve(Bytes::new(s), t(f), t(f + l));
        }
        let until = t(from + len);
        let size = Bytes::new(size);
        match tl.earliest_hold_start(size, t(from), until) {
            Some(start) => {
                prop_assert!(start >= t(from));
                prop_assert!(tl.can_hold(size, start, until), "probe start not actually feasible");
                if start > t(from) {
                    let earlier = SimTime::from_millis(start.as_millis() - 1);
                    prop_assert!(
                        !tl.can_hold(size, earlier, until),
                        "a strictly earlier hold start also fits"
                    );
                }
                // Committing at the probed start must succeed.
                let mut tl2 = tl.clone();
                prop_assert!(tl2.reserve(size, start, until).is_ok());
            }
            None => {
                prop_assert!(!tl.can_hold(size, t(from), until));
            }
        }
    }

    #[test]
    fn reserve_is_all_or_nothing(
        cap in 1_000u64..20_000,
        reservations in prop::collection::vec((0u64..3_000, 1u64..1_000, 1u64..25_000), 1..25),
    ) {
        let mut tl = CapacityTimeline::new(Bytes::new(cap));
        for (f, l, s) in reservations {
            let before = tl.clone();
            if tl.reserve(Bytes::new(s), t(f), t(f + l)).is_err() {
                // Failed reservations leave the timeline untouched.
                prop_assert_eq!(&tl, &before);
            }
        }
    }
}
