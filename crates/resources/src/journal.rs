//! Append-only journal of consumed resources.
//!
//! The scheduler's dirty-item tree cache needs to know *which* links and
//! stores moved since each cached tree was built — both to decide whether
//! a tree is stale at all and to seed the incremental repair in
//! `dstage-path` with exactly the dirtied resources. The ledger's own
//! mutation surface is consumption-only ([`crate::ledger::NetworkLedger`]
//! has no release APIs), so a simple append-only log suffices: every
//! consumer records what it touched, and a reader compares its saved
//! [`JournalMark`] against the current tail.
//!
//! The journal is owned by the caller (the scheduler state), not embedded
//! in the ledger, so serialized ledgers and service snapshots are
//! unchanged byte for byte.

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::time::SimTime;

use crate::shard::{Footprint, ShardMap};

/// A position in a [`ChangeJournal`]; taken when a tree is (re)built and
/// compared against the tail later.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalMark {
    links: usize,
    machines: usize,
}

/// Append-only log of consumed links and stores.
///
/// # Examples
///
/// ```
/// use dstage_model::ids::{MachineId, VirtualLinkId};
/// use dstage_resources::journal::ChangeJournal;
///
/// let mut journal = ChangeJournal::default();
/// let mark = journal.mark();
/// journal.record_link(VirtualLinkId::new(3));
/// journal.record_machine(MachineId::new(1));
/// let (links, machines) = journal.since(mark);
/// assert_eq!(links, &[VirtualLinkId::new(3)]);
/// assert_eq!(machines, &[MachineId::new(1)]);
/// assert!(journal.is_clean(journal.mark()));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ChangeJournal {
    links: Vec<VirtualLinkId>,
    machines: Vec<MachineId>,
}

impl ChangeJournal {
    /// The current tail position.
    #[must_use]
    pub fn mark(&self) -> JournalMark {
        JournalMark { links: self.links.len(), machines: self.machines.len() }
    }

    /// Records capacity consumed on `link`.
    ///
    /// Duplicates are recorded verbatim — never collapsed, even against
    /// the current tail. A reader whose mark already covers the tail must
    /// still see a *new* consumption of the same link, or it would serve a
    /// stale tree as clean.
    pub fn record_link(&mut self, link: VirtualLinkId) {
        self.links.push(link);
    }

    /// Records storage consumed on `machine` (duplicates kept verbatim;
    /// see [`ChangeJournal::record_link`]).
    pub fn record_machine(&mut self, machine: MachineId) {
        self.machines.push(machine);
    }

    /// Everything consumed after `mark` was taken: `(links, machines)`.
    /// Entries may repeat non-consecutively; readers treat them as sets.
    ///
    /// # Panics
    ///
    /// Panics if `mark` was taken from a different (longer) journal.
    #[must_use]
    pub fn since(&self, mark: JournalMark) -> (&[VirtualLinkId], &[MachineId]) {
        (&self.links[mark.links..], &self.machines[mark.machines..])
    }

    /// Whether nothing was consumed after `mark`.
    #[must_use]
    pub fn is_clean(&self, mark: JournalMark) -> bool {
        self.links.len() == mark.links && self.machines.len() == mark.machines
    }

    /// The sharded footprint of everything consumed after `mark`. The
    /// journal does not record busy windows, so links mark the full time
    /// wheel — a conservative superset that only adds false conflicts.
    ///
    /// # Panics
    ///
    /// Panics if `mark` was taken from a different (longer) journal.
    #[must_use]
    pub fn footprint_since(&self, mark: JournalMark, map: &ShardMap) -> Footprint {
        let mut footprint = Footprint::empty(map);
        let (links, machines) = self.since(mark);
        for &link in links {
            footprint.record_link(map, link, SimTime::ZERO, SimTime::MAX);
        }
        for &machine in machines {
            footprint.record_machine(map, machine);
        }
        footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> VirtualLinkId {
        VirtualLinkId::new(i)
    }

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn marks_window_the_tail() {
        let mut j = ChangeJournal::default();
        j.record_link(l(0));
        let early = j.mark();
        j.record_link(l(1));
        j.record_machine(m(2));
        let (links, machines) = j.since(early);
        assert_eq!(links, &[l(1)]);
        assert_eq!(machines, &[m(2)]);
        assert_eq!(j.since(j.mark()), (&[][..], &[][..]));
    }

    #[test]
    fn repeat_consumption_of_the_tail_stays_visible_to_marked_readers() {
        // Regression: collapsing a record equal to the current tail hides
        // post-mark consumption from readers whose mark covers the tail.
        let mut j = ChangeJournal::default();
        j.record_link(l(4));
        j.record_machine(m(1));
        let mark = j.mark();
        j.record_link(l(4));
        j.record_machine(m(1));
        let (links, machines) = j.since(mark);
        assert_eq!(links, &[l(4)]);
        assert_eq!(machines, &[m(1)]);
        assert!(!j.is_clean(mark));
    }

    #[test]
    fn footprints_cover_the_tail_conservatively() {
        use crate::shard::{Footprint, ShardConfig, ShardMap};

        let map = ShardMap::new(8, ShardConfig { shards: 4, bucket_ms: 1_000 });
        let mut j = ChangeJournal::default();
        let mark = j.mark();
        j.record_link(l(1));
        j.record_machine(m(0));
        let tail = j.footprint_since(mark, &map);
        // L1 (shard 1) is marked over the full wheel; M0 (shard (8+0)%4
        // = 0) likewise. Anything touching those shards intersects.
        let mut probe = Footprint::empty(&map);
        probe.record_link(&map, l(5), SimTime::from_secs(9), SimTime::from_secs(9));
        assert!(tail.intersects(&probe));
        // A clean tail has an empty footprint.
        assert!(j.footprint_since(j.mark(), &map).is_empty());
    }

    #[test]
    fn clean_marks_stay_clean_until_a_record() {
        let mut j = ChangeJournal::default();
        let mark = j.mark();
        assert!(j.is_clean(mark));
        j.record_machine(m(0));
        assert!(!j.is_clean(mark));
        assert!(j.is_clean(j.mark()));
    }
}
