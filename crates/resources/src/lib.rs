//! Resource accounting for the data staging scheduler.
//!
//! This crate implements the consumable-resource substrate of the ICDCS
//! 2000 data staging model: serially reusable virtual links
//! ([`interval::BusyIntervals`]), time-varying machine storage
//! ([`timeline::CapacityTimeline`]), and the combined
//! [`ledger::NetworkLedger`] that finds and commits feasible transfer
//! slots.
//!
//! # Examples
//!
//! ```
//! use dstage_model::prelude::*;
//! use dstage_resources::ledger::NetworkLedger;
//!
//! let mut b = NetworkBuilder::new();
//! let a = b.add_machine(Machine::new("a", Bytes::from_mib(8)));
//! let c = b.add_machine(Machine::new("c", Bytes::from_mib(8)));
//! let l = b.add_link(VirtualLink::new(a, c, SimTime::ZERO,
//!     SimTime::from_hours(1), BitsPerSec::from_mbps(1)));
//! let net = b.build();
//! let mut ledger = NetworkLedger::new(&net);
//! let slot = ledger
//!     .earliest_transfer(&net, l, SimTime::ZERO, Bytes::from_mib(1), SimTime::MAX)
//!     .expect("fits");
//! ledger
//!     .commit_transfer(&net, l, slot.start, Bytes::from_mib(1), SimTime::MAX)
//!     .expect("probe said feasible");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interval;
pub mod journal;
pub mod ledger;
pub mod shard;
pub mod timeline;

pub use interval::BusyIntervals;
pub use journal::{ChangeJournal, JournalMark};
pub use ledger::{CommitError, NetworkLedger, TransferSlot};
pub use shard::{Footprint, ShardConfig, ShardMap};
pub use timeline::CapacityTimeline;
