//! The network-wide resource ledger.
//!
//! A [`NetworkLedger`] tracks, for one scheduling run, every commitment the
//! scheduler has made so far: busy intervals on each virtual link and byte
//! reservations on each machine's storage. It answers the composite
//! question at the heart of the paper's Dijkstra adaptation (§4.2): *what
//! is the earliest time a given item can start crossing a given virtual
//! link such that the link is free for the whole transfer and the receiving
//! machine can hold the item until its garbage-collection time?*
//!
//! The ledger is policy-free: hold deadlines (GC time for intermediates,
//! horizon for destinations) are chosen by the caller.

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::link::VirtualLink;
use dstage_model::network::Network;
use dstage_model::time::{SimDuration, SimTime};
use dstage_model::units::Bytes;
use serde::{Deserialize, Serialize};

use crate::interval::BusyIntervals;
use crate::timeline::CapacityTimeline;

/// A feasible placement of one transfer on one virtual link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferSlot {
    /// When the transfer begins occupying the link.
    pub start: SimTime,
    /// When the transfer completes and the item is available at the
    /// receiving machine (`start + D[i,j][k](|d|)`).
    pub arrival: SimTime,
}

/// Error returned by [`NetworkLedger::commit_transfer`] when the requested
/// slot is no longer (or never was) feasible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The transfer does not fit inside the link's availability window.
    OutsideWindow {
        /// The link whose window was violated.
        link: VirtualLinkId,
    },
    /// The link is already busy somewhere in the requested span.
    LinkBusy {
        /// The busy link.
        link: VirtualLinkId,
    },
    /// The receiving machine cannot hold the item through the hold span.
    StorageFull {
        /// The machine lacking storage.
        machine: MachineId,
    },
    /// The transfer would complete after its hold deadline, so the copy
    /// would be garbage-collected on arrival.
    ArrivesAfterHoldDeadline {
        /// When the transfer would arrive.
        arrival: SimTime,
        /// The hold deadline it missed.
        hold_until: SimTime,
    },
}

impl core::fmt::Display for CommitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CommitError::OutsideWindow { link } => {
                write!(f, "transfer falls outside the availability window of {link}")
            }
            CommitError::LinkBusy { link } => write!(f, "link {link} is busy in the span"),
            CommitError::StorageFull { machine } => {
                write!(f, "machine {machine} cannot hold the item through its hold span")
            }
            CommitError::ArrivesAfterHoldDeadline { arrival, hold_until } => {
                write!(f, "transfer arrives at {arrival}, after hold deadline {hold_until}")
            }
        }
    }
}

impl std::error::Error for CommitError {}

/// Mutable resource state for one scheduling run over a fixed network.
///
/// # Examples
///
/// ```
/// use dstage_model::prelude::*;
/// use dstage_resources::ledger::NetworkLedger;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_machine(Machine::new("a", Bytes::from_mib(1)));
/// let c = b.add_machine(Machine::new("c", Bytes::from_mib(1)));
/// let l = b.add_link(VirtualLink::new(a, c, SimTime::ZERO,
///     SimTime::from_mins(10), BitsPerSec::from_kbps(800)));
/// let net = b.build();
///
/// let mut ledger = NetworkLedger::new(&net);
/// let size = Bytes::from_kib(100);
/// let slot = ledger
///     .earliest_transfer(&net, l, SimTime::ZERO, size, SimTime::from_mins(10))
///     .expect("link is idle");
/// assert_eq!(slot.start, SimTime::ZERO);
/// ledger.commit_transfer(&net, l, slot.start, size, SimTime::from_mins(10)).unwrap();
/// // The link is now busy for the duration of that transfer.
/// let next = ledger
///     .earliest_transfer(&net, l, SimTime::ZERO, size, SimTime::from_mins(10))
///     .unwrap();
/// assert_eq!(next.start, slot.arrival);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkLedger {
    links: Vec<BusyIntervals>,
    stores: Vec<CapacityTimeline>,
}

impl NetworkLedger {
    /// Creates a ledger with all links idle and all machines empty.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        NetworkLedger {
            links: vec![BusyIntervals::new(); network.link_count()],
            stores: network
                .machines()
                .map(|m| CapacityTimeline::new(m.machine.capacity()))
                .collect(),
        }
    }

    /// The busy intervals of a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the ledger's network.
    #[must_use]
    pub fn link_busy(&self, id: VirtualLinkId) -> &BusyIntervals {
        &self.links[id.index()]
    }

    /// The storage timeline of a machine.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the ledger's network.
    #[must_use]
    pub fn store(&self, id: MachineId) -> &CapacityTimeline {
        &self.stores[id.index()]
    }

    /// The earliest feasible slot for sending `size` bytes over `link`,
    /// starting no earlier than `ready`, such that:
    ///
    /// 1. the whole transfer fits inside the link's availability window,
    /// 2. the link is idle for the whole transfer,
    /// 3. the receiving machine can hold `size` extra bytes from the
    ///    transfer start until `hold_until`, and
    /// 4. the transfer completes by `hold_until` (otherwise the copy would
    ///    be garbage-collected before it even arrives).
    ///
    /// Returns `None` when no such slot exists.
    #[must_use]
    pub fn earliest_transfer(
        &self,
        network: &Network,
        link: VirtualLinkId,
        ready: SimTime,
        size: Bytes,
        hold_until: SimTime,
    ) -> Option<TransferSlot> {
        dstage_obs::metrics::RESOURCES_PROBES.inc();
        let vl: &VirtualLink = network.link(link);
        let duration = vl.transfer_time(size);
        let busy = &self.links[link.index()];
        let store = &self.stores[vl.destination().index()];
        // Latest permissible completion: window end and hold deadline.
        let limit = vl.end().min(hold_until);
        let mut candidate = ready.max(vl.start());
        loop {
            let start = busy.earliest_gap(candidate, duration, limit)?;
            // Safe unchecked add (audited): `earliest_gap` only returns
            // starts whose checked `start + duration` fits below `limit`.
            let arrival = start + duration;
            // The copy occupies the receiver from transfer start to its
            // hold deadline (at least through arrival).
            let hold_end = hold_until.max(arrival);
            let storage_start = store.earliest_hold_start(size, start, hold_end)?;
            if storage_start == start {
                return Some(TransferSlot { start, arrival });
            }
            debug_assert!(storage_start > start);
            dstage_obs::metrics::RESOURCES_PROBE_RESTARTS.inc();
            candidate = storage_start;
        }
    }

    /// The latest feasible slot for sending `size` bytes over `link` —
    /// the time-reversal mirror of [`NetworkLedger::earliest_transfer`],
    /// under the same four feasibility conditions plus a caller-supplied
    /// completion bound `arrival_by` (a request deadline, or the start of
    /// the next hop in a backward-chained path). As-late-as-possible
    /// placement reserves close to that bound, leaving the link's early
    /// capacity free for later-arriving requests.
    ///
    /// Returns `None` when no feasible slot exists at or after `ready`.
    #[must_use]
    pub fn latest_transfer(
        &self,
        network: &Network,
        link: VirtualLinkId,
        ready: SimTime,
        size: Bytes,
        arrival_by: SimTime,
        hold_until: SimTime,
    ) -> Option<TransferSlot> {
        dstage_obs::metrics::RESOURCES_PROBES.inc();
        let vl: &VirtualLink = network.link(link);
        let duration = vl.transfer_time(size);
        let busy = &self.links[link.index()];
        let store = &self.stores[vl.destination().index()];
        let ready = ready.max(vl.start());
        // Latest permissible completion: window end, the caller's bound,
        // and the hold deadline (arriving later means GC on arrival).
        let limit = vl.end().min(arrival_by).min(hold_until);
        let start = busy.latest_gap(ready, duration, limit)?;
        // Safe unchecked add (audited): `latest_gap` only returns starts
        // whose checked `start + duration` fits below `limit`.
        let arrival = start + duration;
        // `arrival <= limit <= hold_until`, so the hold span always ends
        // at `hold_until` — moving the start earlier only widens it.
        // Storage feasibility is therefore monotone: if the latest link
        // start does not fit, no earlier one can, and there is no restart
        // loop to run (unlike `earliest_transfer`, where later starts
        // shrink the span).
        let hold_end = hold_until.max(arrival);
        store.can_hold(size, start, hold_end).then_some(TransferSlot { start, arrival })
    }

    /// Commits a transfer previously found feasible: marks the link busy
    /// for `[start, arrival)` and reserves storage on the receiving machine
    /// for `[start, max(hold_until, arrival))`.
    ///
    /// Returns the committed slot.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] (leaving the ledger unchanged) when the
    /// slot violates the window, overlaps link reservations, misses the
    /// hold deadline, or does not fit in storage.
    pub fn commit_transfer(
        &mut self,
        network: &Network,
        link: VirtualLinkId,
        start: SimTime,
        size: Bytes,
        hold_until: SimTime,
    ) -> Result<TransferSlot, CommitError> {
        let vl: &VirtualLink = network.link(link);
        let duration = vl.transfer_time(size);
        // Checked, not unchecked (audit fix): commit takes a caller-supplied
        // `start`, so `start + duration` can exceed SimTime::MAX. A wrapped
        // (release) or saturated arrival could falsely pass `arrival <=
        // vl.end()` for an open-ended window and commit a transfer whose
        // true completion lies beyond the representable horizon.
        let Some(arrival) = start.checked_add(duration) else {
            return Err(CommitError::OutsideWindow { link });
        };
        if start < vl.start() || arrival > vl.end() {
            return Err(CommitError::OutsideWindow { link });
        }
        if arrival > hold_until {
            return Err(CommitError::ArrivesAfterHoldDeadline { arrival, hold_until });
        }
        let dest = vl.destination();
        let hold_end = hold_until.max(arrival);
        if !self.stores[dest.index()].can_hold(size, start, hold_end) {
            return Err(CommitError::StorageFull { machine: dest });
        }
        if !duration.is_zero() {
            self.links[link.index()]
                .reserve(start, arrival)
                .map_err(|_| CommitError::LinkBusy { link })?;
        }
        self.stores[dest.index()]
            .reserve(size, start, hold_end)
            .expect("checked with can_hold above");
        dstage_obs::metrics::RESOURCES_COMMITS.inc();
        Ok(TransferSlot { start, arrival })
    }

    /// Reserves storage on a machine without a transfer — used for initial
    /// source copies and for extending a destination's hold.
    ///
    /// Unlike [`CapacityTimeline::reserve`], this *forces* the reservation
    /// even when it exceeds capacity: initial data placement is exogenous
    /// (the scheduler "does not remove a data item from any of its
    /// sources", §3), so an over-full source simply has no spare staging
    /// room rather than being an error.
    pub fn force_storage(
        &mut self,
        machine: MachineId,
        size: Bytes,
        from: SimTime,
        until: SimTime,
    ) {
        let store = &mut self.stores[machine.index()];
        if store.reserve(size, from, until).is_err() {
            store.force_reserve(size, from, until);
        }
    }

    /// Reserves storage on a machine, failing if capacity is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`CommitError::StorageFull`] when the bytes do not fit
    /// throughout the span.
    pub fn reserve_storage(
        &mut self,
        machine: MachineId,
        size: Bytes,
        from: SimTime,
        until: SimTime,
    ) -> Result<(), CommitError> {
        self.stores[machine.index()]
            .reserve(size, from, until)
            .map_err(|_| CommitError::StorageFull { machine })
    }

    /// Makes a link unusable over `[from, to)` regardless of its window —
    /// existing reservations inside the span are left in place and the
    /// remaining free time is blanket-reserved. Used by the dynamic layer
    /// for link outages and for blocking the past when re-planning
    /// mid-horizon.
    pub fn block_link(&mut self, link: VirtualLinkId, from: SimTime, to: SimTime) {
        self.links[link.index()].blanket_reserve(from, to);
    }

    /// Blocks every link's remaining free time before `now` so no new
    /// transfer can start in the past.
    pub fn block_past(&mut self, now: SimTime) {
        for busy in &mut self.links {
            busy.blanket_reserve(SimTime::ZERO, now);
        }
    }

    /// The total busy time across all links, a utilization diagnostic.
    ///
    /// Saturating is sound here (audited): the value is reported, never
    /// compared against a feasibility bound, so saturation cannot admit
    /// anything.
    #[must_use]
    pub fn total_link_busy(&self) -> SimDuration {
        self.links.iter().fold(SimDuration::ZERO, |acc, b| acc.saturating_add(b.total_busy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_model::machine::Machine;
    use dstage_model::network::NetworkBuilder;
    use dstage_model::units::BitsPerSec;

    /// a --L0--> c with 1 byte/ms bandwidth, window [0, 100s), 1 MiB stores.
    fn simple_net() -> (Network, VirtualLinkId) {
        let mut b = NetworkBuilder::new();
        let a = b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        let c = b.add_machine(Machine::new("c", Bytes::from_mib(1)));
        let l = b.add_link(VirtualLink::new(
            a,
            c,
            SimTime::ZERO,
            SimTime::from_secs(100),
            BitsPerSec::new(8_000),
        ));
        (b.build(), l)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn idle_link_gives_immediate_slot() {
        let (net, l) = simple_net();
        let ledger = NetworkLedger::new(&net);
        let slot =
            ledger.earliest_transfer(&net, l, t(0), Bytes::new(5_000), SimTime::MAX).unwrap();
        assert_eq!(slot.start, t(0));
        assert_eq!(slot.arrival, t(5));
    }

    #[test]
    fn ready_time_is_respected() {
        let (net, l) = simple_net();
        let ledger = NetworkLedger::new(&net);
        let slot =
            ledger.earliest_transfer(&net, l, t(30), Bytes::new(1_000), SimTime::MAX).unwrap();
        assert_eq!(slot.start, t(30));
    }

    #[test]
    fn window_start_delays_transfer() {
        let mut b = NetworkBuilder::new();
        let a = b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        let c = b.add_machine(Machine::new("c", Bytes::from_mib(1)));
        let l = b.add_link(VirtualLink::new(a, c, t(50), t(100), BitsPerSec::new(8_000)));
        let net = b.build();
        let ledger = NetworkLedger::new(&net);
        let slot =
            ledger.earliest_transfer(&net, l, t(0), Bytes::new(1_000), SimTime::MAX).unwrap();
        assert_eq!(slot.start, t(50));
        assert_eq!(slot.arrival, t(51));
    }

    #[test]
    fn transfer_must_fit_window() {
        let (net, l) = simple_net();
        let ledger = NetworkLedger::new(&net);
        // 100_001 bytes needs 100.001 s > 100 s window.
        assert!(ledger
            .earliest_transfer(&net, l, t(0), Bytes::new(100_001), SimTime::MAX)
            .is_none());
        // Exactly 100_000 bytes fits.
        let slot =
            ledger.earliest_transfer(&net, l, t(0), Bytes::new(100_000), SimTime::MAX).unwrap();
        assert_eq!(slot.arrival, t(100));
    }

    #[test]
    fn latest_transfer_hugs_the_deadline() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let size = Bytes::new(10_000); // 10 s on the link
        let slot = ledger.latest_transfer(&net, l, t(0), size, t(60), SimTime::MAX).unwrap();
        assert_eq!(slot.start, t(50));
        assert_eq!(slot.arrival, t(60));
        // The window end caps the search when the bounds are open.
        let slot = ledger.latest_transfer(&net, l, t(0), size, SimTime::MAX, SimTime::MAX).unwrap();
        assert_eq!(slot.arrival, t(100));
        // Commit must agree with the probe, and the next latest slot
        // lands right before it.
        ledger.commit_transfer(&net, l, slot.start, size, SimTime::MAX).unwrap();
        let next = ledger.latest_transfer(&net, l, t(0), size, SimTime::MAX, SimTime::MAX).unwrap();
        assert_eq!(next.arrival, t(90));
    }

    #[test]
    fn latest_transfer_respects_ready_and_storage() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let size = Bytes::new(10_000);
        // Ready after the only feasible start.
        assert!(ledger.latest_transfer(&net, l, t(95), size, SimTime::MAX, SimTime::MAX).is_none());
        // Destination store blocked from t=40 on: every candidate's hold
        // span reaches the t=90 hold deadline through the blockage, so no
        // slot exists at all...
        let dest = MachineId::new(1);
        ledger.force_storage(dest, Bytes::from_mib(1), t(40), t(200));
        assert!(ledger.latest_transfer(&net, l, t(0), size, t(90), t(90)).is_none());
        // ... while a hold deadline before the blockage still works.
        let slot = ledger.latest_transfer(&net, l, t(0), size, t(39), t(39)).unwrap();
        assert_eq!(slot.arrival, t(39));
        // An arrival bound tighter than the hold deadline is honoured on
        // its own: the hold span may extend past the bound.
        let slot = ledger.latest_transfer(&net, l, t(0), size, t(30), t(39)).unwrap();
        assert_eq!(slot.arrival, t(30));
    }

    #[test]
    fn commit_near_time_max_rejects_overflowing_arrival() {
        // Regression: with an open-ended window (end = SimTime::MAX) and a
        // caller-supplied start near SimTime::MAX, `start + duration` used
        // to wrap (release) or panic (debug), and a wrapped arrival could
        // falsely pass the `arrival <= vl.end()` window check.
        let mut b = NetworkBuilder::new();
        let a = b.add_machine(Machine::new("a", Bytes::from_mib(1)));
        let c = b.add_machine(Machine::new("c", Bytes::from_mib(1)));
        let l =
            b.add_link(VirtualLink::new(a, c, SimTime::ZERO, SimTime::MAX, BitsPerSec::new(8_000)));
        let net = b.build();
        let mut ledger = NetworkLedger::new(&net);
        // 5_000 bytes takes 5 s on this link; a start 1 ms before MAX
        // cannot complete inside representable time.
        let start = SimTime::from_millis(u64::MAX - 1);
        let err = ledger.commit_transfer(&net, l, start, Bytes::new(5_000), SimTime::MAX);
        assert!(matches!(err, Err(CommitError::OutsideWindow { .. })));
        // A start that exactly reaches MAX still commits.
        let start = SimTime::from_millis(u64::MAX - 5_000);
        let slot = ledger.commit_transfer(&net, l, start, Bytes::new(5_000), SimTime::MAX).unwrap();
        assert_eq!(slot.arrival, SimTime::MAX);
    }

    #[test]
    fn committed_transfers_serialize_on_link() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let size = Bytes::new(10_000); // 10 s
        let s1 = ledger.earliest_transfer(&net, l, t(0), size, SimTime::MAX).unwrap();
        ledger.commit_transfer(&net, l, s1.start, size, SimTime::MAX).unwrap();
        let s2 = ledger.earliest_transfer(&net, l, t(0), size, SimTime::MAX).unwrap();
        assert_eq!(s2.start, t(10));
        ledger.commit_transfer(&net, l, s2.start, size, SimTime::MAX).unwrap();
        // A third one ready at t=5 starts at 20.
        let s3 = ledger.earliest_transfer(&net, l, t(5), size, SimTime::MAX).unwrap();
        assert_eq!(s3.start, t(20));
    }

    #[test]
    fn commit_rejects_overlap() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let size = Bytes::new(10_000);
        ledger.commit_transfer(&net, l, t(0), size, SimTime::MAX).unwrap();
        let err = ledger.commit_transfer(&net, l, t(5), size, SimTime::MAX).unwrap_err();
        assert_eq!(err, CommitError::LinkBusy { link: l });
    }

    #[test]
    fn commit_rejects_window_violation() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let err =
            ledger.commit_transfer(&net, l, t(95), Bytes::new(10_000), SimTime::MAX).unwrap_err();
        assert_eq!(err, CommitError::OutsideWindow { link: l });
    }

    #[test]
    fn commit_rejects_late_arrival_against_hold_deadline() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let err = ledger.commit_transfer(&net, l, t(0), Bytes::new(10_000), t(9)).unwrap_err();
        assert!(matches!(err, CommitError::ArrivesAfterHoldDeadline { .. }));
    }

    #[test]
    fn storage_contention_delays_slot() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let dest = MachineId::new(1);
        // Fill the destination store until t=40.
        ledger.reserve_storage(dest, Bytes::from_mib(1), t(0), t(40)).unwrap();
        let slot = ledger.earliest_transfer(&net, l, t(0), Bytes::new(1_000), t(90)).unwrap();
        assert_eq!(slot.start, t(40));
    }

    #[test]
    fn storage_blocked_past_window_is_none() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let dest = MachineId::new(1);
        // Destination full until after the link window closes.
        ledger.force_storage(dest, Bytes::from_mib(1), t(0), t(200));
        assert!(ledger.earliest_transfer(&net, l, t(0), Bytes::new(1_000), SimTime::MAX).is_none());
    }

    #[test]
    fn hold_deadline_limits_slot_search() {
        let (net, l) = simple_net();
        let ledger = NetworkLedger::new(&net);
        // 10 s transfer must complete by hold_until.
        assert!(ledger.earliest_transfer(&net, l, t(0), Bytes::new(10_000), t(9)).is_none());
        let slot = ledger.earliest_transfer(&net, l, t(0), Bytes::new(10_000), t(10)).unwrap();
        assert_eq!(slot.arrival, t(10));
    }

    #[test]
    fn earliest_transfer_alternates_link_and_storage_constraints() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let dest = MachineId::new(1);
        let size = Bytes::new(10_000); // 10 s on the link
                                       // Link busy [0, 15); storage blocked [15, 30).
        ledger.commit_transfer(&net, l, t(0), Bytes::new(15_000), SimTime::MAX).unwrap();
        ledger
            .reserve_storage(
                dest,
                Bytes::from_mib(1).saturating_sub(Bytes::new(15_000)),
                t(15),
                t(30),
            )
            .unwrap();
        let slot = ledger.earliest_transfer(&net, l, t(0), size, SimTime::MAX).unwrap();
        assert_eq!(slot.start, t(30));
        // Commit must agree with the probe.
        ledger.commit_transfer(&net, l, slot.start, size, SimTime::MAX).unwrap();
    }

    #[test]
    fn force_storage_allows_overcommit() {
        let (net, _) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        let m = MachineId::new(0);
        // Twice the capacity: must not panic, and the machine reads full.
        ledger.force_storage(m, Bytes::from_mib(2), t(0), t(100));
        assert!(!ledger.store(m).can_hold(Bytes::new(1), t(0), t(1)));
    }

    #[test]
    fn total_link_busy_accumulates() {
        let (net, l) = simple_net();
        let mut ledger = NetworkLedger::new(&net);
        assert_eq!(ledger.total_link_busy(), SimDuration::ZERO);
        ledger.commit_transfer(&net, l, t(0), Bytes::new(10_000), SimTime::MAX).unwrap();
        assert_eq!(ledger.total_link_busy(), SimDuration::from_secs(10));
    }
}
