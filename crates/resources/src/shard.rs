//! Sharding of the resource ledger for conflict detection.
//!
//! The batched admission path (dstage-service) speculates a whole epoch
//! of submissions against one read snapshot and must decide, at commit
//! time, whether two decisions could have observed each other's resource
//! consumption. The ledger's mutation surface is consumption-only (see
//! [`crate::journal`]), so the question reduces to *resource-footprint
//! disjointness*: a decision whose route touches no link, no machine, and
//! no coarse time bucket that an earlier commit touched evaluates
//! identically against the snapshot and against the live state.
//!
//! [`ShardMap`] partitions the id spaces — links first, then machines —
//! into a fixed number of shards, and [`Footprint`] is one 64-bit time
//! wheel per shard. Link consumption sets the buckets its busy window
//! overlaps; storage consumption sets the full mask, because a staged
//! copy occupies its machine from arrival to an engine-level hold horizon
//! the footprint cannot see. Bucket indices wrap modulo 64, so two
//! windows a multiple of `64 * bucket_ms` apart alias to the same bits —
//! that direction only produces *false* conflicts, which are safe (the
//! loser is re-decided sequentially), never missed ones.

use dstage_model::ids::{MachineId, VirtualLinkId};
use dstage_model::time::SimTime;

/// Shard-layout parameters. The defaults are sized for the paper-scale
/// catalog (hundreds of links, tens of machines) and hour-scale windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards the link+machine id space is folded into.
    pub shards: usize,
    /// Width of one time-wheel bucket, in milliseconds.
    pub bucket_ms: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 16, bucket_ms: 60_000 }
    }
}

/// Maps links and machines onto shard indices.
///
/// Links occupy residues `link % shards`; machines are offset by the
/// link count so a link and a machine with the same raw id do not
/// spuriously collide on small topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    links: usize,
    bucket_ms: u64,
}

impl ShardMap {
    /// Builds a map for a network with `links` links and any number of
    /// machines.
    #[must_use]
    pub fn new(links: usize, config: ShardConfig) -> Self {
        ShardMap { shards: config.shards.max(1), links, bucket_ms: config.bucket_ms.max(1) }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard holding `link`'s busy intervals.
    #[must_use]
    pub fn shard_of_link(&self, link: VirtualLinkId) -> usize {
        link.index() % self.shards
    }

    /// The shard holding `machine`'s storage timeline.
    #[must_use]
    pub fn shard_of_machine(&self, machine: MachineId) -> usize {
        (self.links + machine.index()) % self.shards
    }

    /// The 64-bit wheel mask covering `[start, end]`, wrapped modulo 64
    /// buckets. Windows spanning 64 or more buckets saturate to the full
    /// mask.
    #[must_use]
    pub fn window_mask(&self, start: SimTime, end: SimTime) -> u64 {
        let lo = start.as_millis() / self.bucket_ms;
        let hi = end.as_millis().max(start.as_millis()) / self.bucket_ms;
        if hi - lo >= 63 {
            return !0;
        }
        let mut mask = 0u64;
        for bucket in lo..=hi {
            mask |= 1u64 << (bucket % 64);
        }
        mask
    }
}

/// The sharded resource footprint of one admission decision (or of a
/// journal tail, or of a cached arrival tree): per shard, the time-wheel
/// buckets the decision consumes.
///
/// Two footprints that do not [`intersect`](Footprint::intersects) touch
/// provably disjoint resources — possibly-shared resources always
/// intersect, by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    words: Vec<u64>,
}

impl Footprint {
    /// An empty footprint laid out for `map`.
    #[must_use]
    pub fn empty(map: &ShardMap) -> Self {
        Footprint { words: vec![0; map.shards()] }
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Records link capacity consumed over the busy window
    /// `[start, end]`.
    pub fn record_link(
        &mut self,
        map: &ShardMap,
        link: VirtualLinkId,
        start: SimTime,
        end: SimTime,
    ) {
        self.words[map.shard_of_link(link)] |= map.window_mask(start, end);
    }

    /// Records storage consumed on `machine`. Storage holds span
    /// engine-defined horizons the footprint cannot see, so the full
    /// wheel is marked.
    pub fn record_machine(&mut self, map: &ShardMap, machine: MachineId) {
        self.words[map.shard_of_machine(machine)] = !0;
    }

    /// Whether the two footprints could share a resource.
    ///
    /// # Panics
    ///
    /// Panics if the footprints were laid out for different shard counts.
    #[must_use]
    pub fn intersects(&self, other: &Footprint) -> bool {
        assert_eq!(self.words.len(), other.words.len(), "footprints from different shard maps");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Folds `other` into `self` (set union).
    ///
    /// # Panics
    ///
    /// Panics if the footprints were laid out for different shard counts.
    pub fn merge(&mut self, other: &Footprint) {
        assert_eq!(self.words.len(), other.words.len(), "footprints from different shard maps");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Shard indices where the two footprints collide — the contention
    /// attribution for the observability stripes.
    pub fn contended_shards<'a>(
        &'a self,
        other: &'a Footprint,
    ) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .filter(|(_, (a, b))| **a & **b != 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ShardMap {
        ShardMap::new(10, ShardConfig { shards: 4, bucket_ms: 1_000 })
    }

    fn l(i: u32) -> VirtualLinkId {
        VirtualLinkId::new(i)
    }

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn links_and_machines_fold_into_disjoint_residues() {
        let map = map();
        assert_eq!(map.shard_of_link(l(0)), 0);
        assert_eq!(map.shard_of_link(l(5)), 1);
        // Machines are offset by the link count (10), so M0 lands on
        // shard 10 % 4 = 2, not on L0's shard.
        assert_eq!(map.shard_of_machine(m(0)), 2);
        assert_eq!(map.shard_of_machine(m(3)), 1);
    }

    #[test]
    fn window_masks_cover_inclusive_bucket_ranges() {
        let map = map();
        assert_eq!(map.window_mask(t(0), t(0)), 0b1);
        assert_eq!(map.window_mask(t(1), t(3)), 0b1110);
        // A backwards window degrades to the start bucket.
        assert_eq!(map.window_mask(t(5), t(2)), 1 << 5);
        // 63+ buckets saturate.
        assert_eq!(map.window_mask(t(0), t(63)), !0);
        assert_eq!(map.window_mask(t(0), SimTime::MAX), !0);
    }

    #[test]
    fn wheel_wrap_aliases_conservatively() {
        let map = map();
        // Buckets 2 and 66 alias to the same bit: a false conflict, never
        // a missed one.
        assert_eq!(map.window_mask(t(2), t(2)), map.window_mask(t(66), t(66)));
    }

    #[test]
    fn disjoint_resources_never_intersect() {
        let map = map();
        let mut a = Footprint::empty(&map);
        a.record_link(&map, l(0), t(0), t(2));
        let mut b = Footprint::empty(&map);
        // Same shard (L4 ≡ L0 mod 4) but disjoint buckets: no conflict.
        b.record_link(&map, l(4), t(10), t(12));
        assert!(!a.intersects(&b));
        // Overlapping window on the same shard: conflict.
        b.record_link(&map, l(4), t(1), t(1));
        assert!(a.intersects(&b));
        assert_eq!(a.contended_shards(&b).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn same_resource_always_intersects() {
        let map = map();
        for (sa, ea, sb, eb) in [(0, 5, 3, 8), (0, 0, 0, 0), (7, 9, 9, 20)] {
            let mut a = Footprint::empty(&map);
            a.record_link(&map, l(3), t(sa), t(ea));
            let mut b = Footprint::empty(&map);
            b.record_link(&map, l(3), t(sb), t(eb));
            assert!(a.intersects(&b), "[{sa},{ea}] vs [{sb},{eb}]");
        }
        let mut a = Footprint::empty(&map);
        a.record_machine(&map, m(1));
        let mut b = Footprint::empty(&map);
        b.record_machine(&map, m(1));
        assert!(a.intersects(&b));
    }

    #[test]
    fn machine_marks_saturate_the_wheel() {
        let map = map();
        let mut a = Footprint::empty(&map);
        a.record_machine(&map, m(0));
        let mut b = Footprint::empty(&map);
        // Any window on a link sharing M0's shard (shard 2: L2, L6, ...)
        // conflicts, whatever the time.
        b.record_link(&map, l(2), t(500), t(501));
        assert!(a.intersects(&b));
    }

    #[test]
    fn merge_is_union() {
        let map = map();
        let mut a = Footprint::empty(&map);
        a.record_link(&map, l(0), t(0), t(1));
        let mut b = Footprint::empty(&map);
        b.record_link(&map, l(1), t(4), t(5));
        let mut u = Footprint::empty(&map);
        u.merge(&a);
        u.merge(&b);
        assert!(u.intersects(&a));
        assert!(u.intersects(&b));
        assert!(!a.intersects(&b));
        assert!(!Footprint::empty(&map).intersects(&u));
        assert!(Footprint::empty(&map).is_empty());
        assert!(!u.is_empty());
    }
}
