//! Time-varying storage accounting for one machine.
//!
//! The paper's `Cap[i](t)` is the *available* capacity of machine `M[i]`
//! over time. [`CapacityTimeline`] tracks the *used* bytes as a piecewise
//! constant function (usage deltas at event times) and answers two
//! questions the scheduler needs: *can this machine hold `size` extra bytes
//! throughout `[from, until)`?* and *what is the earliest start time from
//! which it can?*

use dstage_model::time::SimTime;
use dstage_model::units::Bytes;
use serde::{Deserialize, Serialize};

/// Piecewise-constant storage usage against a fixed total capacity.
///
/// # Examples
///
/// ```
/// use dstage_resources::timeline::CapacityTimeline;
/// use dstage_model::time::SimTime;
/// use dstage_model::units::Bytes;
///
/// let mut tl = CapacityTimeline::new(Bytes::from_mib(10));
/// tl.reserve(Bytes::from_mib(6), SimTime::from_secs(10), SimTime::from_secs(60))
///     .unwrap();
/// // Another 6 MiB cannot overlap [10s, 60s)...
/// assert!(!tl.can_hold(Bytes::from_mib(6), SimTime::from_secs(0), SimTime::from_secs(30)));
/// // ...but fits entirely after it.
/// assert!(tl.can_hold(Bytes::from_mib(6), SimTime::from_secs(60), SimTime::from_secs(90)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityTimeline {
    capacity: Bytes,
    /// Sorted by time; `(t, delta)` means usage changes by `delta` at `t`.
    /// Deltas are never zero. Times are usually unique, but a reservation
    /// larger than `i64::MAX` bytes (or a same-instant merge that would
    /// overflow `i64`) is stored as several same-time entries whose deltas
    /// sum to the true change — readers fold every event at an instant, so
    /// only the per-instant sum matters.
    events: Vec<(SimTime, i64)>,
}

/// Error returned by [`CapacityTimeline::reserve`] when the reservation
/// would exceed capacity somewhere in its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityExceeded {
    /// A time at which the reservation would not fit.
    pub at: SimTime,
    /// Usage at that time (without the new reservation).
    pub used: Bytes,
    /// The machine's total capacity.
    pub capacity: Bytes,
}

impl core::fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "capacity exceeded at {}: {} of {} already used",
            self.at, self.used, self.capacity
        )
    }
}

impl std::error::Error for CapacityExceeded {}

impl CapacityTimeline {
    /// Creates a timeline for a machine with the given total capacity and
    /// no usage.
    #[must_use]
    pub fn new(capacity: Bytes) -> Self {
        CapacityTimeline { capacity, events: Vec::new() }
    }

    /// The machine's total capacity.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Usage at an instant.
    #[must_use]
    pub fn used_at(&self, t: SimTime) -> Bytes {
        // i128 accumulation: the level can legitimately exceed i64::MAX
        // (capacity is a u64, and force_reserve can overcommit past even
        // that), and i128 cannot overflow from any realizable event count.
        let mut used: i128 = 0;
        for &(et, delta) in &self.events {
            if et > t {
                break;
            }
            used += i128::from(delta);
        }
        level_bytes(used)
    }

    /// Peak usage over `[from, until)`; zero for an empty span.
    #[must_use]
    pub fn peak_usage(&self, from: SimTime, until: SimTime) -> Bytes {
        dstage_obs::metrics::RESOURCES_PEAK_SCANS.inc();
        if from >= until {
            return Bytes::ZERO;
        }
        // The usage level is piecewise constant, so the peak over the span
        // is the level entering the span (`base`) or the level after some
        // event strictly inside it.
        let mut used: i128 = 0;
        let mut base: i128 = 0;
        let mut peak: i128 = 0;
        for &(et, delta) in &self.events {
            if et >= until {
                break;
            }
            used += i128::from(delta);
            if et <= from {
                base = used;
            } else {
                peak = peak.max(used);
            }
        }
        peak = peak.max(base);
        level_bytes(peak)
    }

    /// Whether `size` additional bytes fit throughout `[from, until)`.
    ///
    /// Empty spans and zero sizes trivially fit.
    #[must_use]
    pub fn can_hold(&self, size: Bytes, from: SimTime, until: SimTime) -> bool {
        if from >= until || size == Bytes::ZERO {
            return true;
        }
        match self.peak_usage(from, until).checked_add(size) {
            Some(total) => total <= self.capacity,
            None => false,
        }
    }

    /// The earliest `start >= from` such that `size` extra bytes fit
    /// throughout `[start, until)`, or `None` if no such start exists
    /// strictly before `until`.
    ///
    /// For an empty or inverted span (`from >= until`) the answer is `from`
    /// (nothing needs to fit).
    #[must_use]
    pub fn earliest_hold_start(
        &self,
        size: Bytes,
        from: SimTime,
        until: SimTime,
    ) -> Option<SimTime> {
        if from >= until {
            return Some(from);
        }
        if size == Bytes::ZERO {
            return Some(from);
        }
        if size > self.capacity {
            return None;
        }
        // Guarded above: size <= capacity, so this subtraction is exact.
        let budget = self.capacity.saturating_sub(size);
        // Scan events inside [from, until); find the last moment the level
        // exceeds `budget`. The earliest feasible start is the first event
        // after that moment where the level drops to <= budget.
        let mut level: i128 = 0;
        let mut candidate = from;
        let mut feasible_from_candidate = true;
        for &(et, delta) in &self.events {
            if et >= until {
                break;
            }
            level += i128::from(delta);
            let over = level_bytes(level).as_u64() > budget.as_u64();
            if et <= from {
                feasible_from_candidate = !over;
                continue;
            }
            if over {
                feasible_from_candidate = false;
            } else if !feasible_from_candidate {
                candidate = et;
                feasible_from_candidate = true;
            }
        }
        if feasible_from_candidate && candidate < until {
            Some(candidate.max(from))
        } else {
            None
        }
    }

    /// Reserves `size` bytes over `[from, until)`.
    ///
    /// Empty spans and zero sizes are no-ops.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityExceeded`] (leaving the timeline unchanged) if the
    /// reservation would exceed capacity anywhere in the span.
    pub fn reserve(
        &mut self,
        size: Bytes,
        from: SimTime,
        until: SimTime,
    ) -> Result<(), CapacityExceeded> {
        if from >= until || size == Bytes::ZERO {
            return Ok(());
        }
        let peak = self.peak_usage(from, until);
        let fits = peak.checked_add(size).is_some_and(|t| t <= self.capacity);
        if !fits {
            return Err(CapacityExceeded { at: from, used: peak, capacity: self.capacity });
        }
        self.apply_span(size, from, until);
        Ok(())
    }

    /// Reserves `size` bytes over `[from, until)` even when that exceeds
    /// capacity.
    ///
    /// Exists for *exogenous* placements (initial source copies): the data
    /// is simply there, whether or not the machine's nominal capacity
    /// accommodates it. While overcommitted, [`CapacityTimeline::can_hold`]
    /// reports `false` for any further bytes, so the scheduler stages
    /// nothing extra on the machine.
    pub fn force_reserve(&mut self, size: Bytes, from: SimTime, until: SimTime) {
        if from >= until || size == Bytes::ZERO {
            return;
        }
        self.apply_span(size, from, until);
    }

    /// Applies `+size` at `from` and `-size` at `until`, chunking sizes
    /// above `i64::MAX` into several balanced i64 deltas. This is where
    /// reservations beyond `i64::MAX` bytes used to panic through
    /// `i64::try_from(..).expect("sizes fit in i64")` — a malformed
    /// scenario could kill the daemon.
    fn apply_span(&mut self, size: Bytes, from: SimTime, until: SimTime) {
        let mut remaining = size.as_u64();
        while remaining > 0 {
            let chunk = remaining.min(i64::MAX as u64);
            remaining -= chunk;
            let amount = i64::try_from(chunk).expect("chunk clamped to i64::MAX");
            self.apply_delta(from, amount);
            self.apply_delta(until, -amount);
        }
    }

    fn apply_delta(&mut self, t: SimTime, delta: i64) {
        match self.events.binary_search_by_key(&t, |&(et, _)| et) {
            Ok(idx) => match self.events[idx].1.checked_add(delta) {
                Some(0) => {
                    self.events.remove(idx);
                }
                Some(merged) => self.events[idx].1 = merged,
                // The merged delta would overflow i64: keep a second entry
                // at the same instant instead of wrapping. Readers fold
                // every event at an instant, so only the sum matters.
                None => self.events.insert(idx + 1, (t, delta)),
            },
            Err(idx) => self.events.insert(idx, (t, delta)),
        }
    }
}

/// Converts an accumulated usage level to [`Bytes`].
///
/// The level must be non-negative (reservations and releases are applied
/// in balanced pairs); force-reserve overcommit can push it past
/// `u64::MAX`, which clamps — capacity is a `u64`, so anything above
/// `u64::MAX` fails every capacity check identically.
fn level_bytes(level: i128) -> Bytes {
    assert!(level >= 0, "usage invariant: never negative (level {level})");
    Bytes::new(u64::try_from(level).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn kb(n: u64) -> Bytes {
        Bytes::new(n * 1_000)
    }

    #[test]
    fn fresh_timeline_is_empty() {
        let tl = CapacityTimeline::new(kb(10));
        assert_eq!(tl.capacity(), kb(10));
        assert_eq!(tl.used_at(SimTime::ZERO), Bytes::ZERO);
        assert_eq!(tl.peak_usage(t(0), t(100)), Bytes::ZERO);
        assert!(tl.can_hold(kb(10), t(0), t(100)));
        assert!(!tl.can_hold(kb(11), t(0), t(100)));
    }

    #[test]
    fn reserve_updates_usage() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(4), t(10), t(20)).unwrap();
        assert_eq!(tl.used_at(t(9)), Bytes::ZERO);
        assert_eq!(tl.used_at(t(10)), kb(4));
        assert_eq!(tl.used_at(t(19)), kb(4));
        assert_eq!(tl.used_at(t(20)), Bytes::ZERO);
    }

    #[test]
    fn peak_usage_spans_events() {
        let mut tl = CapacityTimeline::new(kb(100));
        tl.reserve(kb(4), t(10), t(20)).unwrap();
        tl.reserve(kb(7), t(15), t(30)).unwrap();
        assert_eq!(tl.peak_usage(t(0), t(10)), Bytes::ZERO);
        assert_eq!(tl.peak_usage(t(0), t(12)), kb(4));
        assert_eq!(tl.peak_usage(t(0), t(100)), kb(11));
        assert_eq!(tl.peak_usage(t(16), t(18)), kb(11));
        assert_eq!(tl.peak_usage(t(20), t(30)), kb(7));
        assert_eq!(tl.peak_usage(t(30), t(40)), Bytes::ZERO);
    }

    #[test]
    fn reserve_rejects_overflow_and_leaves_state() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(8), t(10), t(20)).unwrap();
        let before = tl.clone();
        let err = tl.reserve(kb(5), t(15), t(25)).unwrap_err();
        assert_eq!(err.used, kb(8));
        assert_eq!(err.capacity, kb(10));
        assert_eq!(tl, before);
        // Non-overlapping span still fits.
        tl.reserve(kb(5), t(20), t(25)).unwrap();
    }

    #[test]
    fn exact_fit_allowed() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(10), t(0), t(5)).unwrap();
        assert!(!tl.can_hold(Bytes::new(1), t(0), t(5)));
        assert!(tl.can_hold(kb(10), t(5), t(6)));
    }

    #[test]
    fn empty_span_reservations_are_noops() {
        let mut tl = CapacityTimeline::new(kb(1));
        tl.reserve(kb(100), t(5), t(5)).unwrap();
        tl.reserve(Bytes::ZERO, t(0), t(100)).unwrap();
        assert_eq!(tl.peak_usage(t(0), t(100)), Bytes::ZERO);
    }

    #[test]
    fn earliest_hold_start_immediate_when_free() {
        let tl = CapacityTimeline::new(kb(10));
        assert_eq!(tl.earliest_hold_start(kb(5), t(3), t(50)), Some(t(3)));
    }

    #[test]
    fn earliest_hold_start_waits_for_release() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(8), t(0), t(30)).unwrap();
        // 5 KB only fits after the 8 KB leaves at t=30.
        assert_eq!(tl.earliest_hold_start(kb(5), t(3), t(50)), Some(t(30)));
        // 2 KB fits immediately alongside.
        assert_eq!(tl.earliest_hold_start(kb(2), t(3), t(50)), Some(t(3)));
    }

    #[test]
    fn earliest_hold_start_none_when_blocked_through_end() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(8), t(10), t(60)).unwrap();
        // Span [3, 50): the 8 KB blocker persists past 50.
        assert_eq!(tl.earliest_hold_start(kb(5), t(3), t(50)), None);
        // But a span that extends past the release works.
        assert_eq!(tl.earliest_hold_start(kb(5), t(3), t(70)), Some(t(60)));
    }

    #[test]
    fn earliest_hold_start_with_multiple_blockers() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(8), t(0), t(20)).unwrap();
        tl.reserve(kb(8), t(40), t(50)).unwrap();
        // 5 KB needs [start, 45) free of 8 KB blockers: blocked 0-20 and
        // 40-50; since the span must reach 45 > 40, no start works... wait,
        // until=45 overlaps the second blocker, so None.
        assert_eq!(tl.earliest_hold_start(kb(5), t(0), t(45)), None);
        // until=40 works starting at 20.
        assert_eq!(tl.earliest_hold_start(kb(5), t(0), t(40)), Some(t(20)));
        // until=60 must wait for the second blocker to clear at 50.
        assert_eq!(tl.earliest_hold_start(kb(5), t(0), t(60)), Some(t(50)));
    }

    #[test]
    fn earliest_hold_start_oversized_is_none() {
        let tl = CapacityTimeline::new(kb(10));
        assert_eq!(tl.earliest_hold_start(kb(11), t(0), t(10)), None);
    }

    #[test]
    fn earliest_hold_start_empty_span_is_from() {
        let tl = CapacityTimeline::new(kb(1));
        assert_eq!(tl.earliest_hold_start(kb(100), t(7), t(7)), Some(t(7)));
        assert_eq!(tl.earliest_hold_start(kb(100), t(8), t(7)), Some(t(8)));
    }

    #[test]
    fn earliest_hold_start_result_is_actually_feasible() {
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(6), t(5), t(15)).unwrap();
        tl.reserve(kb(6), t(25), t(35)).unwrap();
        let start = tl.earliest_hold_start(kb(5), t(0), t(25)).unwrap();
        assert_eq!(start, t(15));
        assert!(tl.can_hold(kb(5), start, t(25)));
        // And one millisecond earlier is infeasible.
        let earlier = SimTime::from_millis(start.as_millis() - 1);
        assert!(!tl.can_hold(kb(5), earlier, t(25)));
    }

    #[test]
    fn peak_usage_ignores_levels_released_before_span() {
        // Regression: a high level that ends before the span must not count.
        let mut tl = CapacityTimeline::new(kb(10));
        tl.reserve(kb(10), t(0), t(5)).unwrap();
        assert_eq!(tl.peak_usage(t(6), t(10)), Bytes::ZERO);
        assert!(tl.can_hold(kb(10), t(6), t(10)));
        assert_eq!(tl.peak_usage(t(5), t(10)), Bytes::ZERO); // releases exactly at 5
    }

    #[test]
    fn reserve_beyond_i64_max_does_not_panic() {
        // Regression: sizes above i64::MAX bytes used to panic in
        // `i64::try_from(size.as_u64()).expect("sizes fit in i64")`.
        let huge = Bytes::new(u64::MAX);
        let mut tl = CapacityTimeline::new(huge);
        tl.reserve(huge, t(10), t(20)).unwrap();
        assert_eq!(tl.used_at(t(10)), huge);
        assert_eq!(tl.used_at(t(15)), huge);
        assert!(!tl.can_hold(Bytes::new(1), t(10), t(20)));
        assert_eq!(tl.used_at(t(20)), Bytes::ZERO);
        // The release balanced the chunked deltas exactly.
        assert!(tl.can_hold(huge, t(20), t(30)));
        // And a second huge reservation over the freed span still works.
        tl.reserve(huge, t(20), t(30)).unwrap();
        assert_eq!(tl.peak_usage(t(20), t(30)), huge);
    }

    #[test]
    fn force_reserve_beyond_i64_max_overcommits_and_releases() {
        // Regression: force_reserve had the same i64 conversion panic, and
        // stacked overcommits can push the level past u64::MAX.
        let huge = Bytes::new(u64::MAX);
        let mut tl = CapacityTimeline::new(kb(1));
        tl.force_reserve(huge, t(0), t(50));
        tl.force_reserve(huge, t(10), t(40));
        // Level is ~2 * u64::MAX; reads clamp to u64::MAX.
        assert_eq!(tl.used_at(t(20)), huge);
        assert!(!tl.can_hold(Bytes::new(1), t(20), t(30)));
        // Releases unwind the overcommit exactly.
        assert_eq!(tl.used_at(t(40)), huge);
        assert_eq!(tl.used_at(t(50)), Bytes::ZERO);
        assert!(tl.can_hold(kb(1), t(50), t(60)));
    }

    #[test]
    fn earliest_hold_start_with_huge_capacity() {
        // i128 accumulation: levels above i64::MAX must not overflow the
        // feasibility scan.
        let huge = Bytes::new(u64::MAX);
        let mut tl = CapacityTimeline::new(huge);
        tl.reserve(huge, t(0), t(30)).unwrap();
        assert_eq!(tl.earliest_hold_start(Bytes::new(1), t(0), t(60)), Some(t(30)));
        assert_eq!(tl.earliest_hold_start(huge, t(0), t(60)), Some(t(30)));
    }

    #[test]
    fn zero_size_always_fits() {
        let mut tl = CapacityTimeline::new(Bytes::ZERO);
        assert!(tl.can_hold(Bytes::ZERO, t(0), t(10)));
        assert_eq!(tl.earliest_hold_start(Bytes::ZERO, t(0), t(10)), Some(t(0)));
        tl.reserve(Bytes::ZERO, t(0), t(10)).unwrap();
    }
}
