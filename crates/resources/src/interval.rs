//! Busy-interval bookkeeping for serially reusable resources.
//!
//! A virtual link carries at most one transfer at a time (the paper's link
//! conflict rule, §4.3); its reservations form a set of disjoint
//! half-open intervals `[start, end)` over simulation time.

use dstage_model::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A set of disjoint, sorted, half-open busy intervals.
///
/// # Examples
///
/// ```
/// use dstage_resources::interval::BusyIntervals;
/// use dstage_model::time::{SimTime, SimDuration};
///
/// let mut busy = BusyIntervals::new();
/// busy.reserve(SimTime::from_secs(10), SimTime::from_secs(20)).unwrap();
/// // A 5s job ready at t=8 must wait for the gap after t=20... unless it
/// // fits before t=10 — it doesn't (8+5 > 10), so:
/// let start = busy.earliest_gap(
///     SimTime::from_secs(8),
///     SimDuration::from_secs(5),
///     SimTime::MAX,
/// );
/// assert_eq!(start, Some(SimTime::from_secs(20)));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyIntervals {
    /// Sorted by start; pairwise disjoint (abutting intervals are merged).
    spans: Vec<(SimTime, SimTime)>,
}

/// Error returned by [`BusyIntervals::reserve`] when the requested span
/// overlaps an existing reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    /// Start of the existing reservation that conflicts.
    pub existing_start: SimTime,
    /// End of the existing reservation that conflicts.
    pub existing_end: SimTime,
}

impl core::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "requested span overlaps existing reservation [{}, {})",
            self.existing_start, self.existing_end
        )
    }
}

impl std::error::Error for OverlapError {}

impl BusyIntervals {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        BusyIntervals::default()
    }

    /// Number of disjoint busy spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing is reserved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over the busy spans in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.spans.iter().copied()
    }

    /// Whether `[start, end)` is completely free.
    ///
    /// Zero-length spans are trivially free.
    #[must_use]
    pub fn is_free(&self, start: SimTime, end: SimTime) -> bool {
        if start >= end {
            return true;
        }
        // First span with span_end > start could overlap.
        let idx = self.spans.partition_point(|&(_, e)| e <= start);
        match self.spans.get(idx) {
            Some(&(s, _)) => s >= end,
            None => true,
        }
    }

    /// Reserves `[start, end)`.
    ///
    /// Abutting spans are merged so the set stays canonical.
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if the span overlaps an existing
    /// reservation; the set is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (empty reservations are almost certainly a
    /// caller bug — a transfer always takes at least one millisecond).
    pub fn reserve(&mut self, start: SimTime, end: SimTime) -> Result<(), OverlapError> {
        assert!(start < end, "reservation must be a non-empty span");
        let idx = self.spans.partition_point(|&(_, e)| e <= start);
        if let Some(&(s, e)) = self.spans.get(idx) {
            if s < end {
                return Err(OverlapError { existing_start: s, existing_end: e });
            }
        }
        // Merge with predecessor if abutting (pred.end == start)...
        let merge_prev = idx > 0 && self.spans[idx - 1].1 == start;
        // ... and with successor if abutting (end == succ.start).
        let merge_next = self.spans.get(idx).is_some_and(|&(s, _)| s == end);
        match (merge_prev, merge_next) {
            (true, true) => {
                self.spans[idx - 1].1 = self.spans[idx].1;
                self.spans.remove(idx);
            }
            (true, false) => self.spans[idx - 1].1 = end,
            (false, true) => self.spans[idx].0 = start,
            (false, false) => self.spans.insert(idx, (start, end)),
        }
        Ok(())
    }

    /// The earliest `start >= ready` such that `[start, start + duration)`
    /// is free and `start + duration <= limit`.
    ///
    /// Returns `None` when no such start exists before `limit`.
    /// A zero `duration` fits anywhere, so `ready` is returned whenever
    /// `ready <= limit`.
    #[must_use]
    pub fn earliest_gap(
        &self,
        ready: SimTime,
        duration: SimDuration,
        limit: SimTime,
    ) -> Option<SimTime> {
        let mut candidate = ready;
        // Checked, not saturating: a saturated end would equal
        // `SimTime::MAX` and falsely pass `end <= limit` for an
        // open-ended limit, reporting a fit for a transfer whose true end
        // is beyond the representable horizon.
        let fits = |start: SimTime| -> Option<SimTime> {
            let end = start.checked_add(duration)?;
            (end <= limit).then_some(end)
        };
        if duration.is_zero() {
            // An empty span occupies nothing; it fits wherever it may start.
            return (ready <= limit).then_some(ready);
        }
        fits(candidate)?;
        let mut idx = self.spans.partition_point(|&(_, e)| e <= candidate);
        // Count iterations locally and publish once: this loop sits inside
        // every routing probe, so per-iteration atomics would be felt.
        let mut iterations: u64 = 0;
        let found = loop {
            iterations += 1;
            let Some(end) = fits(candidate) else { break None };
            match self.spans.get(idx) {
                Some(&(s, e)) if s < end => {
                    // Overlaps this busy span; try right after it.
                    candidate = e;
                    idx += 1;
                }
                _ => break Some(candidate),
            }
        };
        dstage_obs::metrics::RESOURCES_GAP_ITERATIONS.add(iterations);
        found
    }

    /// The latest `start >= ready` such that `[start, start + duration)`
    /// is free and `start + duration <= limit` — the time-reversal mirror
    /// of [`BusyIntervals::earliest_gap`], used by as-late-as-possible
    /// placement to leave early capacity free for later arrivals.
    ///
    /// Returns `None` when no such start exists. A zero `duration`
    /// occupies nothing, so the latest start is `limit` itself whenever
    /// `ready <= limit`.
    #[must_use]
    pub fn latest_gap(
        &self,
        ready: SimTime,
        duration: SimDuration,
        limit: SimTime,
    ) -> Option<SimTime> {
        if duration.is_zero() {
            // An empty span occupies nothing; the latest start is the limit.
            return (ready <= limit).then_some(limit);
        }
        // Checked, not saturating: a limit shorter than the duration has
        // no representable start at all, and clamping to zero would
        // report a start whose true end overshoots the limit.
        let mut candidate =
            SimTime::from_millis(limit.as_millis().checked_sub(duration.as_millis())?);
        if candidate < ready {
            return None;
        }
        // `spans[..idx]` start before the candidate span's end; the span
        // at `idx - 1` is the only one that can overlap from the right.
        let mut idx = self.spans.partition_point(|&(s, _)| s < limit);
        // Count iterations locally and publish once, as in `earliest_gap`.
        let mut iterations: u64 = 0;
        let found = loop {
            iterations += 1;
            match idx.checked_sub(1).map(|i| self.spans[i]) {
                Some((s, e)) if e > candidate => {
                    // Overlaps this busy span; try ending right at its
                    // start (underflow means nothing earlier fits either).
                    let Some(ms) = s.as_millis().checked_sub(duration.as_millis()) else {
                        break None;
                    };
                    candidate = SimTime::from_millis(ms);
                    if candidate < ready {
                        break None;
                    }
                    idx -= 1;
                }
                _ => break Some(candidate),
            }
        };
        dstage_obs::metrics::RESOURCES_GAP_ITERATIONS.add(iterations);
        found
    }

    /// The maximal free gaps within `[from, to)`, in time order.
    ///
    /// Used to blanket-reserve a span that may already contain
    /// reservations (e.g. blocking a link's past, or taking it down for
    /// the rest of the horizon).
    #[must_use]
    pub fn free_gaps(&self, from: SimTime, to: SimTime) -> Vec<(SimTime, SimTime)> {
        if from >= to {
            return Vec::new();
        }
        let mut gaps = Vec::new();
        let mut cursor = from;
        let idx = self.spans.partition_point(|&(_, e)| e <= from);
        for &(s, e) in &self.spans[idx..] {
            if s >= to {
                break;
            }
            if s > cursor {
                gaps.push((cursor, s.min(to)));
            }
            cursor = cursor.max(e);
            if cursor >= to {
                return gaps;
            }
        }
        if cursor < to {
            gaps.push((cursor, to));
        }
        gaps
    }

    /// Reserves every currently free instant of `[from, to)` (no-op where
    /// already busy).
    pub fn blanket_reserve(&mut self, from: SimTime, to: SimTime) {
        for (s, e) in self.free_gaps(from, to) {
            self.reserve(s, e).expect("free gaps are free by construction");
        }
    }

    /// Total busy time.
    ///
    /// Saturating is sound here (audited): spans satisfy `e >= s`, so each
    /// term is exact, and the sum is purely diagnostic — it bounds no
    /// admission decision, so saturation cannot sneak past a check.
    #[must_use]
    pub fn total_busy(&self) -> SimDuration {
        self.spans
            .iter()
            .fold(SimDuration::ZERO, |acc, &(s, e)| acc.saturating_add(e.saturating_since(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn empty_set_is_all_free() {
        let b = BusyIntervals::new();
        assert!(b.is_empty());
        assert!(b.is_free(SimTime::ZERO, SimTime::MAX));
        assert_eq!(b.earliest_gap(t(5), d(100), SimTime::MAX), Some(t(5)));
    }

    #[test]
    fn reserve_then_query() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        assert!(b.is_free(t(0), t(10)));
        assert!(b.is_free(t(20), t(30)));
        assert!(!b.is_free(t(9), t(11)));
        assert!(!b.is_free(t(15), t(16)));
        assert!(!b.is_free(t(19), t(25)));
        assert!(!b.is_free(t(5), t(25)));
    }

    #[test]
    fn overlapping_reserve_rejected_and_state_unchanged() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        let before = b.clone();
        let err = b.reserve(t(15), t(25)).unwrap_err();
        assert_eq!(err.existing_start, t(10));
        assert_eq!(err.existing_end, t(20));
        assert_eq!(b, before);
        // Also when the new span fully covers the old one.
        assert!(b.reserve(t(5), t(30)).is_err());
        assert_eq!(b, before);
    }

    #[test]
    #[should_panic(expected = "non-empty span")]
    fn empty_reserve_panics() {
        let mut b = BusyIntervals::new();
        let _ = b.reserve(t(5), t(5));
    }

    #[test]
    fn abutting_reservations_merge() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(20), t(30)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().next(), Some((t(10), t(30))));
        b.reserve(t(0), t(10)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().next(), Some((t(0), t(30))));
        // Merge both sides at once.
        b.reserve(t(40), t(50)).unwrap();
        b.reserve(t(30), t(40)).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().next(), Some((t(0), t(50))));
    }

    #[test]
    fn earliest_gap_skips_busy_spans() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(25), t(40)).unwrap();
        // Fits before the first span.
        assert_eq!(b.earliest_gap(t(0), d(10), SimTime::MAX), Some(t(0)));
        // Exactly fits before the first span.
        assert_eq!(b.earliest_gap(t(5), d(5), SimTime::MAX), Some(t(5)));
        // Too long for the first gap; also too long for [20,25); lands at 40.
        assert_eq!(b.earliest_gap(t(5), d(6), SimTime::MAX), Some(t(40)));
        // Ready inside the first busy span; exactly fits the middle gap.
        assert_eq!(b.earliest_gap(t(11), d(5), SimTime::MAX), Some(t(20)));
        // Ready inside a busy span, too long for the middle gap.
        assert_eq!(b.earliest_gap(t(12), d(6), SimTime::MAX), Some(t(40)));
    }

    #[test]
    fn earliest_gap_respects_limit() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        // Ready inside the busy span: would fit at t=20 but the limit
        // forbids finishing after t=24.
        assert_eq!(b.earliest_gap(t(12), d(5), t(24)), None);
        assert_eq!(b.earliest_gap(t(12), d(5), t(25)), Some(t(20)));
        // Limit earlier than ready.
        assert_eq!(b.earliest_gap(t(30), d(1), t(20)), None);
    }

    #[test]
    fn earliest_gap_rejects_overflowing_end() {
        // Regression: `end = start.saturating_add(duration)` used to
        // saturate to `SimTime::MAX`, so `end <= limit` passed for
        // `limit == SimTime::MAX` and an un-schedulable transfer was
        // reported as fitting.
        let b = BusyIntervals::new();
        let ready = SimTime::from_millis(u64::MAX - 10);
        assert_eq!(b.earliest_gap(ready, SimDuration::from_millis(100), SimTime::MAX), None);
        // Same overflow with a busy span forcing a late candidate.
        let mut busy = BusyIntervals::new();
        busy.reserve(SimTime::from_millis(u64::MAX - 20), SimTime::from_millis(u64::MAX - 5))
            .unwrap();
        assert_eq!(
            busy.earliest_gap(
                SimTime::from_millis(u64::MAX - 15),
                SimDuration::from_millis(100),
                SimTime::MAX
            ),
            None
        );
        // An end landing exactly on `SimTime::MAX` is not an overflow and
        // still fits.
        assert_eq!(b.earliest_gap(ready, SimDuration::from_millis(10), SimTime::MAX), Some(ready));
    }

    #[test]
    fn latest_gap_hugs_the_limit() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(25), t(40)).unwrap();
        // Free tail: the latest start ends exactly at the limit.
        assert_eq!(b.latest_gap(t(0), d(10), t(60)), Some(t(50)));
        // Limit inside the second busy span: fall back before it.
        assert_eq!(b.latest_gap(t(0), d(5), t(30)), Some(t(20)));
        // Too long for the middle gap; only the head gap fits.
        assert_eq!(b.latest_gap(t(0), d(6), t(40)), Some(t(4)));
        // Ready bound cuts the head gap off.
        assert_eq!(b.latest_gap(t(5), d(6), t(40)), None);
        // Exactly fits the middle gap.
        assert_eq!(b.latest_gap(t(0), d(5), t(25)), Some(t(20)));
    }

    #[test]
    fn latest_gap_respects_ready_and_limit() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        // Limit earlier than ready + duration.
        assert_eq!(b.latest_gap(t(8), d(5), t(12)), None);
        // Limit before ready entirely.
        assert_eq!(b.latest_gap(t(30), d(1), t(20)), None);
        // Latest start is clamped no earlier than ready.
        assert_eq!(b.latest_gap(t(0), d(10), t(10)), Some(t(0)));
        assert_eq!(b.latest_gap(t(1), d(10), t(10)), None);
    }

    #[test]
    fn latest_gap_rejects_overflowing_arithmetic() {
        // Mirror of `earliest_gap_rejects_overflowing_end`: the top
        // candidate is `limit − duration`, which must be checked when the
        // duration exceeds the limit.
        let b = BusyIntervals::new();
        assert_eq!(b.latest_gap(SimTime::ZERO, SimDuration::from_millis(10), t(0)), None);
        assert_eq!(
            b.latest_gap(SimTime::ZERO, SimDuration::MAX, SimTime::from_millis(u64::MAX - 1)),
            None
        );
        // A fit ending exactly at `SimTime::MAX` is representable.
        assert_eq!(
            b.latest_gap(SimTime::ZERO, SimDuration::from_millis(10), SimTime::MAX),
            Some(SimTime::from_millis(u64::MAX - 10))
        );
        // A busy span pinned at time zero: sliding before it underflows
        // and must report None, not wrap.
        let mut busy = BusyIntervals::new();
        busy.reserve(SimTime::ZERO, t(10)).unwrap();
        assert_eq!(busy.latest_gap(SimTime::ZERO, d(5), t(12)), None);
    }

    #[test]
    fn latest_gap_zero_duration() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        // Zero-length fits anywhere; the latest start is the limit itself.
        assert_eq!(b.latest_gap(t(5), SimDuration::ZERO, t(15)), Some(t(15)));
        assert_eq!(b.latest_gap(t(16), SimDuration::ZERO, t(15)), None);
    }

    #[test]
    fn earliest_gap_zero_duration() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        // Zero-length fits anywhere, even "inside" (it occupies nothing).
        assert_eq!(b.earliest_gap(t(15), SimDuration::ZERO, SimTime::MAX), Some(t(15)));
    }

    #[test]
    fn total_busy_sums_spans() {
        let mut b = BusyIntervals::new();
        assert_eq!(b.total_busy(), SimDuration::ZERO);
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(30), t(35)).unwrap();
        assert_eq!(b.total_busy(), d(15));
    }

    #[test]
    fn free_gaps_enumerates_complement() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(30), t(40)).unwrap();
        assert_eq!(b.free_gaps(t(0), t(50)), vec![(t(0), t(10)), (t(20), t(30)), (t(40), t(50))]);
        // Window starting inside a busy span.
        assert_eq!(b.free_gaps(t(15), t(35)), vec![(t(20), t(30))]);
        // Fully busy window.
        assert_eq!(b.free_gaps(t(12), t(18)), vec![]);
        // Empty window.
        assert_eq!(b.free_gaps(t(5), t(5)), vec![]);
        // Fully free window.
        assert_eq!(b.free_gaps(t(50), t(60)), vec![(t(50), t(60))]);
    }

    #[test]
    fn blanket_reserve_fills_everything() {
        let mut b = BusyIntervals::new();
        b.reserve(t(10), t(20)).unwrap();
        b.reserve(t(30), t(40)).unwrap();
        b.blanket_reserve(t(5), t(35));
        assert!(!b.is_free(t(5), t(6)));
        assert!(b.free_gaps(t(5), t(35)).is_empty());
        // Outside the blanket the link is untouched.
        assert!(b.is_free(t(0), t(5)));
        assert!(b.is_free(t(40), t(50)));
        // Blanketing an already-covered span is a no-op.
        b.blanket_reserve(t(10), t(20));
    }

    #[test]
    fn many_reservations_stay_sorted_and_disjoint() {
        let mut b = BusyIntervals::new();
        // Insert in scrambled order.
        for &(s, e) in &[(50u64, 60u64), (10, 20), (30, 40), (0, 5), (70, 75)] {
            b.reserve(t(s), t(e)).unwrap();
        }
        let spans: Vec<_> = b.iter().collect();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "spans out of order or overlapping: {spans:?}");
        }
        assert_eq!(spans.len(), 5);
    }
}
