//! Shared helpers for the criterion benchmarks.
//!
//! Each `benches/<experiment>.rs` target regenerates its paper artifact on
//! a reduced harness (so `cargo bench` prints the series/rows) and then
//! measures the runtime of the scheduling work behind it. The full-scale
//! 40-case regeneration is the `figures` binary in `dstage-sim`
//! (`cargo run --release -p dstage-sim --bin figures -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dstage_sim::runner::Harness;
use dstage_workload::GeneratorConfig;

/// Number of random test cases used by the bench-scale harness. The paper
/// uses 40; benches trade cases for turnaround and print a banner saying
/// so.
pub const BENCH_CASES: usize = 4;

/// Builds the reduced harness shared by the figure benches and prints the
/// scale banner.
#[must_use]
pub fn bench_harness() -> Harness {
    println!(
        "[bench] regenerating at bench scale: {BENCH_CASES} cases, small generator config \
         (paper scale: 40 cases, `figures` binary)"
    );
    Harness::new(&GeneratorConfig::small(), BENCH_CASES)
}

/// One paper-scale scenario for micro-benchmarks.
#[must_use]
pub fn paper_scenario(seed: u64) -> dstage_model::scenario::Scenario {
    dstage_workload::generate(&GeneratorConfig::paper(), seed)
}
