//! Recovery benchmark for the durability layer: populates a data
//! directory with a paper-scale decision log, then measures the two
//! restart paths — replaying the whole WAL record by record, and
//! loading a checkpoint that covers it — plus the checkpoint write
//! itself. Writes records/sec replayed and checkpoint load/save wall
//! times to `BENCH_recovery.json`.
//!
//! Usage (a plain `main` target, not a criterion harness):
//!
//! ```text
//! cargo bench -p dstage-bench --bench recovery -- [--records N] [--out PATH]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dstage_core::heuristic::{Heuristic, HeuristicConfig};
use dstage_service::durability::Durability;
use dstage_service::protocol::SubmitArgs;
use dstage_service::wal::FsyncPolicy;
use dstage_workload::{generate, GeneratorConfig};
use serde::Serialize;

#[derive(Serialize)]
struct RecoveryBench {
    records: u64,
    generator: &'static str,
    heuristic: &'static str,
    wal_bytes: u64,
    populate_secs: f64,
    replay_secs: f64,
    replay_records_per_sec: f64,
    checkpoint_write_secs: f64,
    checkpoint_bytes: u64,
    checkpoint_load_secs: f64,
    checkpoint_speedup: f64,
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstage-bench-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() {
    let mut records = 2_000u64;
    let mut out = String::from("results/BENCH_recovery.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--records" => {
                records = args.next().and_then(|v| v.parse().ok()).expect("--records N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            // cargo bench passes --bench (and test-harness flags); ignore.
            _ => {}
        }
    }

    let catalog = generate(&GeneratorConfig::paper(), 11);
    let heuristic = Heuristic::FullPathOneDestination;
    let config = HeuristicConfig::paper_best();
    let dir = temp_dir();

    // Populate: one keyed decision per record, committed under the
    // interval policy so the populate phase is IO-bound on writes, not
    // fsyncs (the replay being measured is identical either way).
    println!("[recovery] populating {records} decisions on the paper catalog");
    let populate_started = Instant::now();
    let (durability, mut engine, _) = Durability::recover(
        &dir,
        FsyncPolicy::Never,
        u64::MAX,
        &catalog,
        heuristic,
        config.clone(),
    )
    .expect("recover empty dir");
    let items: Vec<String> = engine.item_names().map(str::to_string).collect();
    let machines = engine.machine_count();
    for i in 0..records {
        let pick = i as usize;
        engine
            .submit(&SubmitArgs {
                item: items[pick % items.len()].clone(),
                destination: (pick % machines) as u32,
                deadline_ms: 3_600_000 + i * 60_000,
                priority: (pick % 3) as u8,
                idempotency_key: Some(format!("bench-{i}")),
            })
            .expect("fresh idempotency key");
        let seq = durability.stage(&engine);
        durability.commit(seq);
    }
    durability.finalize();
    let populate_secs = populate_started.elapsed().as_secs_f64();
    let wal_bytes: u64 = std::fs::read_dir(&dir)
        .expect("read data dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "log"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    drop(durability);
    println!("[recovery] populate: {populate_secs:.2}s, WAL {wal_bytes} bytes");

    // Cold restart #1: the whole log replays through the WAL path.
    let replay_started = Instant::now();
    let (durability, engine, report) = Durability::recover(
        &dir,
        FsyncPolicy::Never,
        u64::MAX,
        &catalog,
        heuristic,
        config.clone(),
    )
    .expect("recover WAL-only dir");
    let replay_secs = replay_started.elapsed().as_secs_f64();
    assert_eq!(report.replayed, records, "every decision must replay");
    let replay_rate = records as f64 / replay_secs.max(1e-9);
    println!("[recovery] WAL replay: {replay_secs:.2}s ({replay_rate:.0} records/sec)");

    // Checkpoint write, then cold restart #2: the checkpoint covers the
    // log, so recovery loads the snapshot and replays nothing.
    let write_started = Instant::now();
    let stats = durability.checkpoint(&engine).expect("write checkpoint");
    let checkpoint_write_secs = write_started.elapsed().as_secs_f64();
    assert_eq!(stats.covered, records, "checkpoint must cover the whole log");
    drop((durability, engine));
    println!("[recovery] checkpoint write: {checkpoint_write_secs:.2}s, {} bytes", stats.bytes);

    let load_started = Instant::now();
    let (_, _, report) =
        Durability::recover(&dir, FsyncPolicy::Never, u64::MAX, &catalog, heuristic, config)
            .expect("recover checkpointed dir");
    let checkpoint_load_secs = load_started.elapsed().as_secs_f64();
    assert_eq!(report.checkpoint_records, records, "checkpoint must carry every decision");
    assert_eq!(report.replayed, 0, "a covering checkpoint leaves no WAL tail");
    println!("[recovery] checkpoint load: {checkpoint_load_secs:.2}s");

    let speedup = replay_secs / checkpoint_load_secs.max(1e-9);
    println!("[recovery] checkpoint restart speedup: {speedup:.1}x");

    let bench = RecoveryBench {
        records,
        generator: "paper",
        heuristic: "full_path_one_destination",
        wal_bytes,
        populate_secs,
        replay_secs,
        replay_records_per_sec: replay_rate,
        checkpoint_write_secs,
        checkpoint_bytes: stats.bytes,
        checkpoint_load_secs,
        checkpoint_speedup: speedup,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench report");
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create bench report directory");
    }
    std::fs::write(path, json).expect("write bench report");
    println!("[recovery] wrote {out}");

    std::fs::remove_dir_all(&dir).ok();
}
