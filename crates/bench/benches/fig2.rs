//! Figure 2 bench: regenerates the bounds + best-criterion series at
//! bench scale, then measures one full run of each heuristic with `Cost₄`
//! (the figure's headline pairing) on a paper-scale scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::{bench_harness, paper_scenario};
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_sim::experiments::fig2;

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", fig2(&harness).to_text());

    let scenario = paper_scenario(0);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for heuristic in Heuristic::ALL {
        group.bench_function(format!("{heuristic}/C4"), |b| {
            b.iter(|| run(&scenario, heuristic, &HeuristicConfig::paper_best()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
