//! Before/after benchmark for the parallel sweep executor: times one
//! sequential full-suite sweep, then the same suite prefetched on 2, 4,
//! and 8 worker threads (fresh harness each, so nothing is served from
//! a warm cache), and writes the measurements to `BENCH_sweep.json`.
//!
//! Speedup scales with the cores the host actually grants; the JSON
//! records `available_parallelism` alongside each run so a 1.0x result
//! on a single-core container reads as what it is.
//!
//! Usage (a plain `main` target, not a criterion harness):
//!
//! ```text
//! cargo bench -p dstage-bench --bench sweep -- [--cases N] [--out PATH]
//! ```

use std::time::Instant;

use dstage_sim::experiments;
use dstage_sim::runner::Harness;
use dstage_workload::GeneratorConfig;
use serde::Serialize;

#[derive(Serialize)]
struct SweepRun {
    threads: usize,
    secs: f64,
    speedup_vs_sequential: f64,
}

#[derive(Serialize)]
struct SweepBench {
    cases: usize,
    generator: &'static str,
    available_parallelism: usize,
    sequential_secs: f64,
    runs: Vec<SweepRun>,
}

fn full_suite(harness: &Harness) -> usize {
    experiments::all(harness).iter().map(|r| r.to_text().len()).sum()
}

fn main() {
    let mut cases = 40usize;
    let mut out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args.next().and_then(|v| v.parse().ok()).expect("--cases N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            // cargo bench passes --bench (and test-harness flags); ignore.
            _ => {}
        }
    }

    let available = dstage_sim::available_threads();
    println!("[sweep] full suite, paper generator, {cases} cases, {available} cores available");

    let started = Instant::now();
    let rendered = full_suite(&Harness::new(&GeneratorConfig::paper(), cases));
    let sequential_secs = started.elapsed().as_secs_f64();
    println!("[sweep] sequential: {sequential_secs:.2}s ({rendered} report bytes)");

    let mut runs = Vec::new();
    for threads in [2usize, 4, 8] {
        let harness = Harness::new(&GeneratorConfig::paper(), cases);
        let started = Instant::now();
        experiments::all_parallel(&harness, threads);
        let secs = started.elapsed().as_secs_f64();
        let speedup = sequential_secs / secs.max(1e-9);
        println!("[sweep] {threads} threads: {secs:.2}s ({speedup:.2}x)");
        runs.push(SweepRun { threads, secs, speedup_vs_sequential: speedup });
    }

    let report = SweepBench {
        cases,
        generator: "paper",
        available_parallelism: available,
        sequential_secs,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create bench report directory");
    }
    std::fs::write(path, json).expect("write bench report");
    println!("[sweep] wrote {out}");
}
