//! Micro-benchmark of the time-dependent multiple-source shortest-path
//! search on a paper-scale network, fresh and congested.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::paper_scenario;
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::time::SimTime;
use dstage_path::{earliest_arrival_tree, ItemQuery};
use dstage_resources::ledger::NetworkLedger;

fn bench(c: &mut Criterion) {
    let scenario = paper_scenario(0);
    let network = scenario.network();
    let mut fresh = NetworkLedger::new(network);
    for (_, item) in scenario.items() {
        for src in item.sources() {
            fresh.force_storage(src.machine, item.size(), src.available_at, scenario.horizon());
        }
    }
    // A congested ledger: replay a full heuristic run's transfers.
    let outcome = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
    let mut congested = fresh.clone();
    for t in outcome.schedule.transfers() {
        let _ = congested.commit_transfer(
            network,
            t.link,
            t.start,
            scenario.item(t.item).size(),
            SimTime::MAX,
        );
    }

    let item0 = dstage_model::ids::DataItemId::new(0);
    let sources: Vec<_> =
        scenario.item(item0).sources().iter().map(|s| (s.machine, s.available_at)).collect();
    let hold = vec![SimTime::MAX; network.machine_count()];

    let mut group = c.benchmark_group("dijkstra");
    for (label, ledger) in [("fresh", &fresh), ("congested", &congested)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                earliest_arrival_tree(&ItemQuery {
                    network,
                    ledger,
                    size: scenario.item(item0).size(),
                    sources: &sources,
                    hold_until: &hold,
                    horizon: scenario.horizon(),
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
