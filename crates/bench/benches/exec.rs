//! Exec bench: regenerates the execution-metrics table (time, Dijkstra
//! runs, links traversed) at bench scale, then measures the random
//! lower-bound procedures, whose cost the table contextualizes.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::{bench_harness, paper_scenario};
use dstage_core::baselines::{random_dijkstra, single_dijkstra_random};
use dstage_sim::experiments::exec;

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", exec(&harness).to_text());

    let scenario = paper_scenario(0);
    let mut group = c.benchmark_group("exec");
    group.sample_size(10);
    group.bench_function("single_dijkstra_random", |b| {
        b.iter(|| single_dijkstra_random(&scenario, 0))
    });
    group.bench_function("random_dijkstra", |b| b.iter(|| random_dijkstra(&scenario, 0)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
