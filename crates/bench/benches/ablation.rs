//! Ablation bench: the dirty-item tree cache (DESIGN.md section 3). The
//! schedules must be identical with the cache on and off (asserted here);
//! the benchmark quantifies the speedup the cache buys.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::paper_scenario;
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};

fn bench(c: &mut Criterion) {
    let scenario = paper_scenario(0);
    let cached_cfg = HeuristicConfig::paper_best();
    let uncached_cfg = HeuristicConfig { caching: false, ..cached_cfg.clone() };

    // Exactness check before measuring anything.
    let with_cache = run(&scenario, Heuristic::FullPathOneDestination, &cached_cfg);
    let without = run(&scenario, Heuristic::FullPathOneDestination, &uncached_cfg);
    assert_eq!(with_cache.schedule, without.schedule, "tree caching must not change the schedule");
    println!(
        "[ablation] identical schedules; dijkstra runs {} (cached) vs {} (uncached), \
         cache hit rate {:.1}%",
        with_cache.metrics.dijkstra_runs,
        without.metrics.dijkstra_runs,
        with_cache.metrics.cache_hit_rate() * 100.0
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("full_one/C4/cached", |b| {
        b.iter(|| run(&scenario, Heuristic::FullPathOneDestination, &cached_cfg))
    });
    group.bench_function("full_one/C4/uncached", |b| {
        b.iter(|| run(&scenario, Heuristic::FullPathOneDestination, &uncached_cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
