//! Companion-report bench: regenerates the remaining tables — min/max
//! spread, the C3Floor extension comparison, and the fault-tolerance
//! recovery study — at bench scale, and measures the exact
//! branch-and-bound reference on a tiny instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::bench_harness;
use dstage_core::exact::best_order_schedule;
use dstage_model::request::PriorityWeights;
use dstage_sim::experiments::{extensions, fault_tolerance, minmax};
use dstage_workload::{generate, GeneratorConfig};

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", minmax(&harness).to_text());
    println!("{}", extensions(&harness).to_text());
    println!("{}", fault_tolerance(&GeneratorConfig::small(), 2).to_text());

    // Exact reference on a tiny instance (4 machines, 8 requests).
    let tiny = GeneratorConfig {
        machines: 4..=4,
        out_degree: 2..=3,
        request_factor: 2..=2,
        item_size: 10_000..=2_000_000,
        ..GeneratorConfig::default()
    };
    let scenario = generate(&tiny, 0);
    let weights = PriorityWeights::paper_1_10_100();
    let mut group = c.benchmark_group("companion");
    group.sample_size(10);
    group.bench_function("exact/8-requests", |b| {
        b.iter(|| best_order_schedule(&scenario, &weights))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
