//! Priority-first bench: regenerates the heuristics-vs-simplified-scheme
//! comparison at bench scale, then measures the priority-first scheduler
//! against the heuristic on a paper-scale scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::{bench_harness, paper_scenario};
use dstage_core::baselines::priority_first;
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_sim::experiments::prio_first;

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", prio_first(&harness).to_text());

    let scenario = paper_scenario(0);
    let mut group = c.benchmark_group("prio_first");
    group.sample_size(10);
    group.bench_function("priority_first", |b| {
        b.iter(|| priority_first(&scenario, &PriorityWeights::paper_1_10_100()))
    });
    group.bench_function("full_one/C4", |b| {
        b.iter(|| run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
