//! Before/after benchmark for the fast-admission path layer: runs the
//! full-path heuristic over paper-scale scenarios twice — dirty trees
//! rebuilt from scratch vs incrementally repaired — with the obs tap
//! recording, and writes the per-decision search effort to
//! `BENCH_path.json` (relaxations, edge scans, lower-bound prunes, queue
//! traffic, repair volume).
//!
//! The schedules are asserted identical between the two modes here too:
//! the numbers are only comparable because repair changes nothing but
//! the work.
//!
//! Usage (a plain `main` target, not a criterion harness):
//!
//! ```text
//! cargo bench -p dstage-bench --bench path -- [--cases N] [--out PATH]
//! ```

use std::time::Instant;

use dstage_bench::paper_scenario;
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_obs::metrics;
use serde::Serialize;

#[derive(Serialize)]
struct ModeStats {
    repair: bool,
    secs: f64,
    trees: u64,
    tree_repairs: u64,
    repair_seeds: u64,
    edge_scans: u64,
    lb_prunes: u64,
    relaxations: u64,
    heap_pushes: u64,
    stale_pops: u64,
    bucket_trees: u64,
    bucket_advances: u64,
    relaxations_per_tree: f64,
}

#[derive(Serialize)]
struct PathBench {
    cases: usize,
    generator: &'static str,
    heuristic: &'static str,
    rebuild: ModeStats,
    repair: ModeStats,
    relaxation_improvement: f64,
}

fn measure(cases: usize, repair: bool) -> (ModeStats, Vec<dstage_core::schedule::Schedule>) {
    dstage_path::repair::set_enabled(repair);
    dstage_obs::set_enabled(true);
    dstage_obs::reset();
    let config = HeuristicConfig::paper_best();
    let started = Instant::now();
    let mut schedules = Vec::with_capacity(cases);
    for seed in 0..cases as u64 {
        let scenario = paper_scenario(seed);
        let outcome = run(&scenario, Heuristic::FullPathOneDestination, &config);
        schedules.push(outcome.schedule);
    }
    let secs = started.elapsed().as_secs_f64();
    let trees = metrics::PATH_TREES.get();
    let relaxations = metrics::PATH_RELAXATIONS.get();
    let stats = ModeStats {
        repair,
        secs,
        trees,
        tree_repairs: metrics::PATH_TREE_REPAIRS.get(),
        repair_seeds: metrics::PATH_REPAIR_SEEDS.get(),
        edge_scans: metrics::PATH_EDGE_SCANS.get(),
        lb_prunes: metrics::PATH_LB_PRUNES.get(),
        relaxations,
        heap_pushes: metrics::PATH_HEAP_PUSHES.get(),
        stale_pops: metrics::PATH_STALE_POPS.get(),
        bucket_trees: metrics::PATH_BUCKET_TREES.get(),
        bucket_advances: metrics::PATH_BUCKET_ADVANCES.get(),
        relaxations_per_tree: relaxations as f64 / trees.max(1) as f64,
    };
    (stats, schedules)
}

fn main() {
    let mut cases = 4usize;
    let mut out = String::from("results/BENCH_path.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                cases = args.next().and_then(|v| v.parse().ok()).expect("--cases N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            // cargo bench passes --bench (and test-harness flags); ignore.
            _ => {}
        }
    }

    println!("[path] full-path heuristic, paper generator, {cases} cases");
    let (rebuild, rebuilt_schedules) = measure(cases, false);
    println!(
        "[path] rebuild: {:.2}s, {} trees, {:.1} relaxations/tree",
        rebuild.secs, rebuild.trees, rebuild.relaxations_per_tree
    );
    let (repair, repaired_schedules) = measure(cases, true);
    println!(
        "[path] repair:  {:.2}s, {} trees ({} repaired), {:.1} relaxations/tree",
        repair.secs, repair.trees, repair.tree_repairs, repair.relaxations_per_tree
    );
    assert_eq!(rebuilt_schedules, repaired_schedules, "repair must not change schedules");

    let improvement = rebuild.relaxations_per_tree / repair.relaxations_per_tree.max(1e-9);
    println!("[path] relaxations/tree improvement: {improvement:.1}x");

    let report = PathBench {
        cases,
        generator: "paper",
        heuristic: "full_path_one_destination",
        rebuild,
        repair,
        relaxation_improvement: improvement,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create bench report directory");
    }
    std::fs::write(path, json).expect("write bench report");
    println!("[path] wrote {out}");

    dstage_path::repair::set_enabled(true);
}
