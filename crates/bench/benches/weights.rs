//! Weights bench: regenerates the 1,5,10-vs-1,10,100 class-breakdown table
//! at bench scale, then measures scheduling under each weighting.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::{bench_harness, paper_scenario};
use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_sim::experiments::weights;

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", weights(&harness).to_text());

    let scenario = paper_scenario(0);
    let mut group = c.benchmark_group("weights");
    group.sample_size(10);
    for (label, w) in [
        ("1_5_10", PriorityWeights::paper_1_5_10()),
        ("1_10_100", PriorityWeights::paper_1_10_100()),
    ] {
        let config = HeuristicConfig {
            criterion: CostCriterion::C4,
            eu: EuWeights::from_log10_ratio(2.0),
            priority_weights: w,
            caching: true,
        };
        group.bench_function(format!("full_one/C4/{label}"), |b| {
            b.iter(|| run(&scenario, Heuristic::FullPathOneDestination, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
