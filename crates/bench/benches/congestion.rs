//! Congestion ablation bench: regenerates the criterion-vs-load table at
//! bench scale, then measures a heuristic run at 1x and 4x request load.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_sim::experiments::congestion;
use dstage_workload::{generate, GeneratorConfig};

fn bench(c: &mut Criterion) {
    println!(
        "[bench] congestion table at bench scale (3 cases, small config; \
         paper scale via `figures congestion`)"
    );
    println!("{}", congestion(&GeneratorConfig::small(), 3).to_text());

    let mut group = c.benchmark_group("congestion");
    group.sample_size(10);
    for factor in [1.0_f64, 4.0] {
        let scenario = generate(&GeneratorConfig::paper().with_congestion(factor), 0);
        group.bench_function(format!("full_one/C4/{factor}x"), |b| {
            b.iter(|| {
                run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
