//! Figure 4 bench: regenerates the full path/one destination criterion
//! sweep at bench scale, then measures one run per cost criterion on a
//! paper-scale scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use dstage_bench::{bench_harness, paper_scenario};
use dstage_core::cost::{CostCriterion, EuWeights};
use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::request::PriorityWeights;
use dstage_sim::experiments::fig4;

fn bench(c: &mut Criterion) {
    let harness = bench_harness();
    println!("{}", fig4(&harness).to_text());

    let scenario = paper_scenario(0);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for criterion in CostCriterion::ALL {
        let config = HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        };
        group.bench_function(format!("full_one/{criterion}"), |b| {
            b.iter(|| run(&scenario, Heuristic::FullPathOneDestination, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
