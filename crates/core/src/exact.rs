//! An exact reference scheduler for tiny instances.
//!
//! The paper notes that "finding optimal solutions to data staging tasks
//! with realistic parameter values are intractable problems" (§5.1), so
//! its evaluation relies on bounds. For *tiny* instances, though, an
//! exhaustive search is feasible and gives the heuristics something
//! sharper than `possible_satisfy` to be measured against.
//!
//! [`best_order_schedule`] explores, with branch-and-bound, every order
//! in which full shortest paths can be committed to pending requests
//! (including leaving any subset unserved). This is optimal **within the
//! class of full-path-sequencing policies** — the class all three
//! heuristics and the priority-first scheme belong to — not over every
//! conceivable transfer-level schedule; that distinction is documented
//! here and in DESIGN.md.

use dstage_model::ids::RequestId;
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;

use crate::schedule::Schedule;
use crate::state::SchedulerState;

/// Upper limit on the number of requests [`best_order_schedule`] accepts;
/// the search visits up to `e · n!` commit orders.
pub const MAX_EXACT_REQUESTS: usize = 8;

/// The result of the exhaustive order search.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its weighted sum under the search's weighting.
    pub weighted_sum: u64,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: u64,
}

/// Exhaustively searches all commit orders of full shortest paths and
/// returns the best schedule under `weights`.
///
/// # Panics
///
/// Panics if the scenario has more than [`MAX_EXACT_REQUESTS`] requests —
/// the search is factorial and exists only as a test/reference oracle for
/// tiny instances.
///
/// # Examples
///
/// ```
/// use dstage_core::exact::best_order_schedule;
/// use dstage_model::request::PriorityWeights;
/// use dstage_workload::small::contended_link;
///
/// let scenario = contended_link();
/// let exact = best_order_schedule(&scenario, &PriorityWeights::paper_1_10_100());
/// // Only one of the two contending requests can make its deadline, so
/// // the optimum takes the high-priority one: weight 100.
/// assert_eq!(exact.weighted_sum, 100);
/// ```
#[must_use]
pub fn best_order_schedule(scenario: &Scenario, weights: &PriorityWeights) -> ExactOutcome {
    assert!(
        scenario.request_count() <= MAX_EXACT_REQUESTS,
        "exhaustive search accepts at most {MAX_EXACT_REQUESTS} requests \
         (got {}); it is a reference oracle for tiny instances",
        scenario.request_count()
    );
    let mut best: Option<(u64, Schedule)> = None;
    let mut nodes = 0u64;
    let state = SchedulerState::new(scenario);
    search(scenario, weights, state, 0, &mut best, &mut nodes);
    let (weighted_sum, schedule) = best.expect("search always records the empty schedule");
    ExactOutcome { schedule, weighted_sum, nodes_explored: nodes }
}

fn current_weight(
    scenario: &Scenario,
    weights: &PriorityWeights,
    state: &SchedulerState<'_>,
) -> u64 {
    scenario
        .requests()
        .filter(|&(id, _)| state.is_delivered(id))
        .map(|(_, r)| weights.weight(r.priority()))
        .sum()
}

fn search(
    scenario: &Scenario,
    weights: &PriorityWeights,
    mut state: SchedulerState<'_>,
    achieved_floor: u64,
    best: &mut Option<(u64, Schedule)>,
    nodes: &mut u64,
) {
    *nodes += 1;
    let achieved = current_weight(scenario, weights, &state).max(achieved_floor);

    // Candidate next commits: pending requests whose current shortest
    // path meets the deadline.
    let mut candidates: Vec<RequestId> = Vec::new();
    let mut optimistic = achieved;
    let items: Vec<_> = scenario.item_ids().collect();
    for item in items {
        let pending: Vec<RequestId> = state.pending_requests(item).collect();
        for req_id in pending {
            let req = scenario.request(req_id);
            let tree = state.tree(item);
            if tree.arrival(req.destination()) <= req.deadline() {
                candidates.push(req_id);
                optimistic += weights.weight(req.priority());
            }
        }
    }

    // Record this node as a leaf if it improves the incumbent.
    let improves = best.as_ref().is_none_or(|(incumbent, _)| achieved > *incumbent);
    if improves {
        let (schedule, _) = state.clone().into_outcome();
        *best = Some((achieved, schedule));
    }

    // Bound: even satisfying every remaining candidate cannot beat the
    // incumbent (which is now at least `achieved`).
    if let Some((incumbent, _)) = best {
        if optimistic <= *incumbent {
            return;
        }
    }

    for req_id in candidates {
        if state.is_delivered(req_id) {
            continue; // an earlier sibling commit may have delivered it
        }
        let req = scenario.request(req_id);
        let mut child = state.clone();
        // Re-check satisfiability in the child (cheap, uses the cache).
        let arrival = child.tree(req.item()).arrival(req.destination());
        if arrival > req.deadline() {
            continue;
        }
        child.commit_path(req.item(), req.destination());
        search(scenario, weights, child, achieved, best, nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_workload::small::{contended_link, fan_out, impossible_request, two_hop_chain};

    fn weights() -> PriorityWeights {
        PriorityWeights::paper_1_10_100()
    }

    #[test]
    fn exact_satisfies_everything_when_uncontended() {
        let s = two_hop_chain();
        let exact = best_order_schedule(&s, &weights());
        exact.schedule.validate(&s).unwrap();
        assert_eq!(exact.schedule.deliveries().len(), s.request_count());
        // 100 (high) + 10 (medium) + 1 (low).
        assert_eq!(exact.weighted_sum, 111);
    }

    #[test]
    fn exact_picks_the_heavy_request_under_contention() {
        let s = contended_link();
        let exact = best_order_schedule(&s, &weights());
        exact.schedule.validate(&s).unwrap();
        assert_eq!(exact.weighted_sum, 100);
        assert_eq!(exact.schedule.deliveries().len(), 1);
    }

    #[test]
    fn exact_skips_impossible_requests() {
        let s = impossible_request();
        let exact = best_order_schedule(&s, &weights());
        assert_eq!(exact.weighted_sum, 1); // only the easy low request
    }

    #[test]
    fn heuristics_never_beat_the_exact_reference() {
        for s in [two_hop_chain(), contended_link(), fan_out(), impossible_request()] {
            let exact = best_order_schedule(&s, &weights());
            for h in Heuristic::ALL {
                let out = run(&s, h, &HeuristicConfig::paper_best());
                let eval = out.schedule.evaluate(&s, &weights());
                assert!(
                    eval.weighted_sum <= exact.weighted_sum,
                    "{h} ({}) beat the exact reference ({})",
                    eval.weighted_sum,
                    exact.weighted_sum
                );
            }
        }
    }

    #[test]
    fn heuristics_reach_the_optimum_on_the_small_scenarios() {
        // On these easy instances the paper pairing is actually optimal.
        for s in [two_hop_chain(), contended_link(), fan_out()] {
            let exact = best_order_schedule(&s, &weights());
            let out = run(&s, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
            assert_eq!(out.schedule.evaluate(&s, &weights()).weighted_sum, exact.weighted_sum);
        }
    }

    #[test]
    fn node_count_is_bounded() {
        let s = fan_out();
        let exact = best_order_schedule(&s, &weights());
        // 4 requests: far fewer than e*4! nodes after pruning.
        assert!(exact.nodes_explored <= 70, "explored {}", exact.nodes_explored);
    }
}
