//! The partial path heuristic (§4.5).
//!
//! Each iteration: run (or reuse) the shortest-path search per item,
//! enumerate the valid next communication steps, pick the lowest-cost one,
//! and commit **one hop** — the transfer to the next machine only — making
//! that machine an additional source of the item. Partially built paths
//! that later become blocked are left in place (the copies may still help,
//! and removing them would force a global re-plan, as the paper argues).

use crate::heuristic::{best_choice, HeuristicConfig};
use crate::state::SchedulerState;

/// Drives the partial path main loop to completion.
pub(crate) fn drive(state: &mut SchedulerState<'_>, config: &HeuristicConfig) {
    while let Some(choice) = best_choice(state, config) {
        state.note_iteration();
        state.commit_hop(choice.step.item, choice.step.hop);
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostCriterion, EuWeights};
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_model::ids::RequestId;
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::{contended_link, two_hop_chain};

    fn config(criterion: CostCriterion) -> HeuristicConfig {
        HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn satisfies_everything_on_an_uncontended_chain() {
        let s = two_hop_chain();
        for criterion in CostCriterion::ALL {
            let out = run(&s, Heuristic::PartialPath, &config(criterion));
            let derived = out.schedule.validate(&s).expect("schedule must replay");
            assert_eq!(derived.len(), s.request_count(), "criterion {criterion} missed requests");
        }
    }

    #[test]
    fn prefers_the_high_priority_request_under_contention() {
        let s = contended_link();
        let out = run(&s, Heuristic::PartialPath, &config(CostCriterion::C4));
        out.schedule.validate(&s).unwrap();
        // The high-priority request (id 0) wins the contended link.
        assert!(out.schedule.delivery_of(RequestId::new(0)).is_some());
    }

    #[test]
    fn one_hop_per_iteration() {
        let s = two_hop_chain();
        let out = run(&s, Heuristic::PartialPath, &config(CostCriterion::C4));
        assert_eq!(out.metrics.iterations, out.metrics.transfers_committed);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = contended_link();
        let a = run(&s, Heuristic::PartialPath, &config(CostCriterion::C2));
        let b = run(&s, Heuristic::PartialPath, &config(CostCriterion::C2));
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn caching_ablation_identical_schedules() {
        let s = contended_link();
        for criterion in CostCriterion::ALL {
            let mut cfg = config(criterion);
            let with_cache = run(&s, Heuristic::PartialPath, &cfg);
            cfg.caching = false;
            let without = run(&s, Heuristic::PartialPath, &cfg);
            assert_eq!(with_cache.schedule, without.schedule, "criterion {criterion}");
            assert_eq!(without.metrics.cache_hits, 0);
            assert!(with_cache.metrics.dijkstra_runs <= without.metrics.dijkstra_runs);
        }
    }
}
