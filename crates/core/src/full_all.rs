//! The full path/all destinations heuristic (§4.7).
//!
//! Builds on full path/one destination: when a step wins, the current
//! shortest paths to **all** of the item's satisfiable destinations that
//! share the step's next machine (`Drq[i, r]`) are committed at once, with
//! shared tree edges reserved only once. This needs the fewest executions
//! of Dijkstra's algorithm of the three heuristics — the motivation the
//! paper gives for it — at the price of committing to several paths from
//! one (possibly soon stale) plan.

use crate::heuristic::{best_choice, destination_costs, HeuristicConfig};
use crate::state::SchedulerState;

/// Drives the full path/all destinations main loop to completion.
pub(crate) fn drive(state: &mut SchedulerState<'_>, config: &HeuristicConfig) {
    while let Some(choice) = best_choice(state, config) {
        state.note_iteration();
        let scenario = state.scenario();
        let machines: Vec<_> = destination_costs(scenario, &config.priority_weights, &choice.step)
            .into_iter()
            .filter(|(_, dc)| dc.satisfiable)
            .map(|(req, _)| scenario.request(req).destination())
            .collect();
        debug_assert!(!machines.is_empty());
        state.commit_paths(choice.step.item, &machines);
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostCriterion, EuWeights};
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn config(criterion: CostCriterion) -> HeuristicConfig {
        HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn satisfies_everything_on_an_uncontended_chain() {
        let s = two_hop_chain();
        for criterion in CostCriterion::MULTI_DESTINATION {
            let out = run(&s, Heuristic::FullPathAllDestinations, &config(criterion));
            let derived = out.schedule.validate(&s).unwrap();
            assert_eq!(derived.len(), s.request_count(), "criterion {criterion}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot use Cost1")]
    fn rejects_c1() {
        let s = two_hop_chain();
        let _ = run(&s, Heuristic::FullPathAllDestinations, &config(CostCriterion::C1));
    }

    #[test]
    fn needs_fewest_dijkstra_runs() {
        let s = fan_out();
        let cfg = config(CostCriterion::C4);
        let all = run(&s, Heuristic::FullPathAllDestinations, &cfg);
        let one = run(&s, Heuristic::FullPathOneDestination, &cfg);
        let partial = run(&s, Heuristic::PartialPath, &cfg);
        assert!(all.metrics.dijkstra_runs <= one.metrics.dijkstra_runs);
        assert!(one.metrics.dijkstra_runs <= partial.metrics.dijkstra_runs);
        // And it still satisfies everything on this easy scenario.
        assert_eq!(all.schedule.deliveries().len(), s.request_count());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = contended_link();
        let a = run(&s, Heuristic::FullPathAllDestinations, &config(CostCriterion::C3));
        let b = run(&s, Heuristic::FullPathAllDestinations, &config(CostCriterion::C3));
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn validates_on_contended_scenarios() {
        let s = contended_link();
        for criterion in CostCriterion::MULTI_DESTINATION {
            let out = run(&s, Heuristic::FullPathAllDestinations, &config(criterion));
            out.schedule.validate(&s).unwrap();
        }
    }
}
