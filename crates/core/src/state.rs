//! Shared scheduler state: resource ledger, copy tracking, cached
//! shortest-path trees, and candidate-step enumeration.
//!
//! All three heuristics (§4.5–4.7), both random lower bounds (§5.2), and
//! the priority-first comparison scheme drive the same [`SchedulerState`]:
//! they differ only in *which* candidate step they pick each iteration and
//! *how much* of the chosen shortest path they commit.

use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;
use dstage_path::{earliest_arrival_tree, repair_tree, ArrivalTree, Hop, ItemQuery};
use dstage_resources::journal::{ChangeJournal, JournalMark};
use dstage_resources::ledger::NetworkLedger;
use dstage_resources::shard::{Footprint, ShardConfig, ShardMap};

use crate::metrics::RunMetrics;
use crate::schedule::{Delivery, Schedule, Transfer};

/// One destination affected by a candidate step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DestinationOutlook {
    /// The request this destination belongs to.
    pub request: RequestId,
    /// The shortest-path arrival estimate `A_T[i, j]`.
    pub arrival: SimTime,
    /// `Sat[i, r](j)`: whether `A_T` meets the request's deadline.
    pub satisfiable: bool,
}

/// A candidate communication step: the first hop of the current shortest
/// path of item `item`, together with the destinations `Drq[i, r]` whose
/// paths begin with that hop.
///
/// At least one destination is satisfiable (steps that help nobody are
/// never offered — "that request receives no resources", §4.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateStep {
    /// The item to move.
    pub item: DataItemId,
    /// The transfer `M[s] → M[r]` over one virtual link, with times.
    pub hop: Hop,
    /// The destinations whose shortest paths start with `hop`, i.e.
    /// `Drq[item, hop.to]`, with per-destination outlooks.
    pub destinations: Vec<DestinationOutlook>,
}

impl CandidateStep {
    /// The destinations that are satisfiable via this step.
    pub fn satisfiable(&self) -> impl Iterator<Item = &DestinationOutlook> + '_ {
        self.destinations.iter().filter(|d| d.satisfiable)
    }
}

/// Mutable state of one scheduling run.
#[derive(Debug, Clone)]
pub struct SchedulerState<'a> {
    scenario: &'a Scenario,
    ledger: NetworkLedger,
    /// Current copies per item: `(machine, available_at)`.
    copies: Vec<Vec<(MachineId, SimTime)>>,
    /// Hold policy per item per machine: horizon for that item's
    /// destinations, GC time otherwise.
    hold_until: Vec<Vec<SimTime>>,
    /// Delivery time per request, once satisfied.
    delivered: Vec<Option<Delivery>>,
    /// Hop depth of the earliest copy per item per machine (0 for initial
    /// sources, `u32::MAX` where no copy exists); feeds the
    /// links-traversed statistic.
    depths: Vec<Vec<u32>>,
    /// Whether each request may receive resources. All requests start
    /// active; the dynamic layer deactivates requests that have not been
    /// released yet. Inactive requests still *record* deliveries when a
    /// copy happens to land on their destination — the data is simply
    /// there — but never drive scheduling decisions.
    active: Vec<bool>,
    /// Cached earliest-arrival tree per item.
    trees: Vec<Option<ArrivalTree>>,
    /// Append-only log of consumed links/stores; with `marks` it tells
    /// each cached tree exactly what moved since it was built.
    journal: ChangeJournal,
    /// Per item: the journal position when its cached tree was last known
    /// valid. Meaningless while the tree slot is `None`.
    marks: Vec<JournalMark>,
    /// Shard × time-bucket partition of the ledger, for coarse overlap
    /// tests between a cached tree and the journal tail.
    shard_map: ShardMap,
    /// Per item: the sharded footprint of the cached tree (its hop links'
    /// busy windows plus receiving machines). A journal tail whose
    /// footprint is disjoint cannot dirty the tree, so the exact
    /// per-hop `uses_link`/`stores_on` scan is skipped. `None` whenever
    /// the tree slot is `None`.
    tree_footprints: Vec<Option<Footprint>>,
    transfers: Vec<Transfer>,
    metrics: RunMetrics,
    caching: bool,
    /// Whether dirtied cached trees are incrementally repaired instead of
    /// rebuilt. Resolved from `DSTAGE_TREE_REPAIR` once at construction so
    /// parallel states never race the process-global gate.
    repair: bool,
}

impl<'a> SchedulerState<'a> {
    /// Initializes state for a run: initial copies are placed, source
    /// storage is reserved to the horizon, nothing is scheduled.
    #[must_use]
    pub fn new(scenario: &'a Scenario) -> Self {
        Self::with_caching(scenario, true)
    }

    /// Like [`SchedulerState::new`], optionally disabling the tree cache
    /// (used by the caching ablation; results must be identical).
    #[must_use]
    pub fn with_caching(scenario: &'a Scenario, caching: bool) -> Self {
        let mut ledger = NetworkLedger::new(scenario.network());
        let m = scenario.network().machine_count();
        let mut copies = Vec::with_capacity(scenario.item_count());
        let mut hold_until = Vec::with_capacity(scenario.item_count());
        let mut depths = Vec::with_capacity(scenario.item_count());
        for (item_id, item) in scenario.items() {
            let mut item_depths = vec![u32::MAX; m];
            let mut item_copies = Vec::with_capacity(item.sources().len());
            for src in item.sources() {
                item_copies.push((src.machine, src.available_at));
                item_depths[src.machine.index()] = 0;
                // Sources hold their copies for the remainder of the
                // simulation (§5.3); placement is exogenous, so it is
                // forced even on over-small machines.
                ledger.force_storage(
                    src.machine,
                    item.size(),
                    src.available_at,
                    scenario.horizon(),
                );
            }
            copies.push(item_copies);

            let gc = scenario.gc_time(item_id).unwrap_or(scenario.horizon());
            let mut holds = vec![gc; m];
            for &req in scenario.requests_for(item_id) {
                holds[scenario.request(req).destination().index()] = scenario.horizon();
            }
            hold_until.push(holds);
            depths.push(item_depths);
        }
        SchedulerState {
            scenario,
            ledger,
            copies,
            hold_until,
            delivered: vec![None; scenario.request_count()],
            depths,
            active: vec![true; scenario.request_count()],
            trees: vec![None; scenario.item_count()],
            journal: ChangeJournal::default(),
            marks: vec![JournalMark::default(); scenario.item_count()],
            shard_map: ShardMap::new(scenario.network().link_count(), ShardConfig::default()),
            tree_footprints: vec![None; scenario.item_count()],
            transfers: Vec::new(),
            metrics: RunMetrics::default(),
            caching,
            repair: dstage_path::repair::enabled(),
        }
    }

    /// Overrides the incremental-repair gate for this state only (the
    /// process-global default comes from `DSTAGE_TREE_REPAIR`). Repair on
    /// and off must produce byte-identical schedules; tests flip this
    /// per-state to pin that without racing the global gate.
    pub fn set_tree_repair(&mut self, on: bool) {
        self.repair = on;
    }

    /// The scenario being scheduled.
    #[must_use]
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The resource ledger (current commitments).
    #[must_use]
    pub fn ledger(&self) -> &NetworkLedger {
        &self.ledger
    }

    /// Whether `request` has been satisfied already.
    #[must_use]
    pub fn is_delivered(&self, request: RequestId) -> bool {
        self.delivered[request.index()].is_some()
    }

    /// The *active* requests of `item` not yet satisfied — the ones that
    /// may receive resources.
    pub fn pending_requests(&self, item: DataItemId) -> impl Iterator<Item = RequestId> + '_ {
        self.scenario
            .requests_for(item)
            .iter()
            .copied()
            .filter(move |&r| self.delivered[r.index()].is_none() && self.active[r.index()])
    }

    /// Activates or deactivates a request (dynamic request release).
    /// Deactivated requests receive no resources; see the field docs.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_request_active(&mut self, request: RequestId, active: bool) {
        self.active[request.index()] = active;
    }

    /// Whether a request may receive resources.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn is_request_active(&self, request: RequestId) -> bool {
        self.active[request.index()]
    }

    /// Removes the copies of `item` held at `machine` that exist at
    /// `lost_at` — i.e. whose availability is `<= lost_at` (dynamic copy
    /// loss: a crash or storage fault). Copies scheduled to arrive
    /// *after* the loss survive. Future plans can no longer source the
    /// item from the removed copies; their storage reservations are left
    /// in place (the model cannot reclaim half-elapsed holds, and staying
    /// conservative only under-reports performance). Returns whether any
    /// copy was removed.
    ///
    /// The item's cached tree is invalidated; other items are unaffected
    /// (losing a source can only worsen this item's arrivals).
    pub fn remove_copies(
        &mut self,
        item: DataItemId,
        machine: MachineId,
        lost_at: SimTime,
    ) -> bool {
        let copies = &mut self.copies[item.index()];
        let before = copies.len();
        copies.retain(|&(m, at)| m != machine || at > lost_at);
        let removed = copies.len() != before;
        if removed {
            if !copies.iter().any(|&(m, _)| m == machine) {
                self.depths[item.index()][machine.index()] = u32::MAX;
            }
            self.trees[item.index()] = None;
            self.tree_footprints[item.index()] = None;
        }
        removed
    }

    /// The recorded delivery of a request, if any.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn delivery_of(&self, request: RequestId) -> Option<Delivery> {
        self.delivered[request.index()]
    }

    /// Clears a recorded delivery so the request becomes pending again
    /// (dynamic copy loss at a destination before the deadline).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn revoke_delivery(&mut self, request: RequestId) {
        self.delivered[request.index()] = None;
    }

    /// Takes a link out of service from `from` onward (remaining window
    /// time is blanket-reserved). The block is pure consumption, so it is
    /// journaled like a commit: affected cached trees are repaired or
    /// rebuilt lazily at their next query.
    pub fn apply_link_outage(&mut self, link: VirtualLinkId, from: SimTime) {
        let end = self.scenario.network().link(link).end();
        self.ledger.block_link(link, from, end.max(from));
        self.journal.record_link(link);
        if !self.caching {
            self.drop_all_trees();
        }
    }

    /// Blocks all remaining link capacity before `now` so that no newly
    /// planned transfer can start in the past (dynamic re-planning), and
    /// invalidates every cached tree.
    pub fn block_past(&mut self, now: SimTime) {
        self.ledger.block_past(now);
        self.drop_all_trees();
    }

    /// Invalidates every cached tree (and its footprint).
    fn drop_all_trees(&mut self) {
        for tree in &mut self.trees {
            *tree = None;
        }
        for footprint in &mut self.tree_footprints {
            *footprint = None;
        }
    }

    /// Records one scheduler iteration (a cost-based selection round).
    pub fn note_iteration(&mut self) {
        self.metrics.iterations += 1;
    }

    /// The earliest-arrival tree of `item` against the current ledger,
    /// recomputing only when consumed resources actually touch it —
    /// and then by incremental repair where enabled.
    pub fn tree(&mut self, item: DataItemId) -> &ArrivalTree {
        enum Action {
            Hit,
            Rebuild,
            Repair,
        }
        let idx = item.index();
        // With caching disabled every query recomputes, mirroring the
        // paper's unoptimized procedure (the result is identical since the
        // ledger is unchanged between invalidations).
        let action = if self.trees[idx].is_none() || !self.caching {
            Action::Rebuild
        } else {
            let tree = self.trees[idx].as_ref().expect("checked above");
            // Coarse pre-filter: fold the journal tail into shard ×
            // time-bucket masks and test against the tree's cached
            // footprint. Disjoint masks prove no dirty link is used and
            // no dirty machine is stored on (same link or machine always
            // lands in the same shard word), so the exact O(tail ×
            // tree-size) scan runs only on a mask overlap.
            let tail = self.journal.footprint_since(self.marks[idx], &self.shard_map);
            let overlaps = match &self.tree_footprints[idx] {
                Some(footprint) => footprint.intersects(&tail),
                None => true,
            };
            let touched = overlaps && {
                let (dirty_links, dirty_machines) = self.journal.since(self.marks[idx]);
                dirty_links.iter().any(|&l| tree.uses_link(l))
                    || dirty_machines.iter().any(|&m| tree.stores_on(m))
            };
            if !touched {
                Action::Hit
            } else if self.repair {
                Action::Repair
            } else {
                Action::Rebuild
            }
        };
        match action {
            Action::Hit => self.metrics.cache_hits += 1,
            Action::Rebuild => {
                let query = ItemQuery {
                    network: self.scenario.network(),
                    ledger: &self.ledger,
                    size: self.scenario.item(item).size(),
                    sources: &self.copies[idx],
                    hold_until: &self.hold_until[idx],
                    horizon: self.scenario.horizon(),
                };
                self.trees[idx] = Some(earliest_arrival_tree(&query));
                self.tree_footprints[idx] = Some(self.footprint_of_tree(idx));
                self.metrics.dijkstra_runs += 1;
            }
            Action::Repair => {
                // Repair replaces a rebuild one for one, so it counts as a
                // dijkstra run: reported metrics stay byte-identical with
                // repair on or off (repair volume is published through the
                // obs tap instead).
                let old = self.trees[idx].take().expect("checked above");
                let (dirty_links, dirty_machines) = self.journal.since(self.marks[idx]);
                let query = ItemQuery {
                    network: self.scenario.network(),
                    ledger: &self.ledger,
                    size: self.scenario.item(item).size(),
                    sources: &self.copies[idx],
                    hold_until: &self.hold_until[idx],
                    horizon: self.scenario.horizon(),
                };
                let repaired = repair_tree(&query, &old, dirty_links, dirty_machines);
                self.trees[idx] = Some(repaired);
                self.tree_footprints[idx] = Some(self.footprint_of_tree(idx));
                self.metrics.dijkstra_runs += 1;
            }
        }
        self.marks[idx] = self.journal.mark();
        self.trees[idx].as_ref().expect("just ensured")
    }

    /// The sharded footprint of the cached tree in slot `idx`: every hop's
    /// link busy window plus its receiving machine — a superset of what
    /// `uses_link`/`stores_on` can match, so a disjoint journal tail
    /// proves the tree clean.
    fn footprint_of_tree(&self, idx: usize) -> Footprint {
        let tree = self.trees[idx].as_ref().expect("computed by the caller");
        let mut footprint = Footprint::empty(&self.shard_map);
        for hop in tree.hops() {
            footprint.record_link(&self.shard_map, hop.link, hop.start, hop.arrival);
            footprint.record_machine(&self.shard_map, hop.to);
        }
        footprint
    }

    /// Enumerates the candidate steps of `item`: the distinct first hops
    /// of the current shortest paths to its pending destinations, each
    /// grouped with its `Drq[i, r]`. Steps without a single satisfiable
    /// destination are omitted.
    ///
    /// Deterministic: steps are ordered by the id of the receiving machine.
    pub fn candidate_steps(&mut self, item: DataItemId) -> Vec<CandidateStep> {
        let pending: Vec<RequestId> = self.pending_requests(item).collect();
        if pending.is_empty() {
            return Vec::new();
        }
        let scenario = self.scenario;
        let tree = self.tree(item);
        let mut steps: Vec<CandidateStep> = Vec::new();
        for req_id in pending {
            let req = scenario.request(req_id);
            let dest = req.destination();
            if !tree.is_reachable(dest) {
                continue;
            }
            let Some(first_hop) = tree.first_hop_toward(dest) else {
                // Destination already holds (or is scheduled to receive) a
                // copy and no earlier route exists; nothing to schedule.
                continue;
            };
            let outlook = DestinationOutlook {
                request: req_id,
                arrival: tree.arrival(dest),
                satisfiable: tree.arrival(dest) <= req.deadline(),
            };
            match steps.iter_mut().find(|s| s.hop == first_hop) {
                Some(step) => step.destinations.push(outlook),
                None => {
                    steps.push(CandidateStep { item, hop: first_hop, destinations: vec![outlook] })
                }
            }
        }
        steps.retain(|s| s.destinations.iter().any(|d| d.satisfiable));
        steps.sort_by_key(|s| (s.hop.to, s.hop.link));
        steps
    }

    /// Enumerates candidate steps for every item with pending requests.
    pub fn all_candidate_steps(&mut self) -> Vec<CandidateStep> {
        let items: Vec<DataItemId> = self.scenario.item_ids().collect();
        let mut all = Vec::new();
        for item in items {
            all.extend(self.candidate_steps(item));
        }
        all
    }

    /// Commits a single hop (the partial path heuristic's move): reserves
    /// the link and receiving storage, adds the new copy, marks satisfied
    /// requests, and invalidates affected tree caches.
    ///
    /// # Panics
    ///
    /// Panics if the hop conflicts with existing reservations — callers
    /// only pass hops from the *current* tree of `item`, which are
    /// feasible by construction.
    pub fn commit_hop(&mut self, item: DataItemId, hop: Hop) {
        let hold = self.hold_until[item.index()][hop.to.index()];
        let slot = self
            .ledger
            .commit_transfer(
                self.scenario.network(),
                hop.link,
                hop.start,
                self.scenario.item(item).size(),
                hold,
            )
            .expect("hop from current tree must be feasible");
        debug_assert_eq!(slot.arrival, hop.arrival);
        self.transfers.push(Transfer {
            item,
            from: hop.from,
            to: hop.to,
            link: hop.link,
            start: hop.start,
            arrival: hop.arrival,
        });
        self.metrics.transfers_committed += 1;
        self.copies[item.index()].push((hop.to, hop.arrival));
        let depth = self.depths[item.index()][hop.from.index()].saturating_add(1);
        self.depths[item.index()][hop.to.index()] = depth;
        self.mark_deliveries(item, hop.to, hop.arrival, depth);
        self.record_consumption(item, &[hop.link], &[hop.to]);
    }

    /// Commits every hop on the current shortest path of `item` to
    /// `destination` (the full path/one destination move). Hops whose
    /// receiving machine already has a copy *at least as early* are
    /// skipped (shared prefixes with previously committed paths).
    ///
    /// Returns the number of hops committed.
    ///
    /// # Panics
    ///
    /// Panics if `destination` is unreachable in the current tree; callers
    /// check reachability when they pick the step.
    pub fn commit_path(&mut self, item: DataItemId, destination: MachineId) -> u32 {
        self.commit_paths(item, &[destination])
    }

    /// Commits the union of the current shortest paths of `item` to all
    /// `destinations` (the full path/all destinations move). Tree edges
    /// shared between paths are committed once.
    ///
    /// Returns the number of hops committed.
    ///
    /// # Panics
    ///
    /// Panics if any destination is unreachable in the current tree.
    pub fn commit_paths(&mut self, item: DataItemId, destinations: &[MachineId]) -> u32 {
        let tree = self.tree(item).clone();
        // Union of path edges, keyed by receiving machine (tree edges are
        // unique per receiving machine).
        let mut edges: Vec<Hop> = Vec::new();
        for &dest in destinations {
            let path = tree
                .path_to(dest)
                .expect("chosen destination must be reachable in the current tree");
            for hop in path {
                if !edges.contains(&hop) {
                    edges.push(hop);
                }
            }
        }
        // Commit in travel order so copies exist before onward hops.
        edges.sort_by_key(|h| (h.arrival, h.start, h.link));
        let mut links = Vec::with_capacity(edges.len());
        let mut machines = Vec::with_capacity(edges.len());
        let mut committed = 0u32;
        for hop in edges {
            // Skip hops into machines that already hold an equally early
            // copy (shared prefix with an earlier committed path).
            if self.copies[item.index()].iter().any(|&(m, at)| m == hop.to && at <= hop.arrival) {
                continue;
            }
            let hold = self.hold_until[item.index()][hop.to.index()];
            let slot = self
                .ledger
                .commit_transfer(
                    self.scenario.network(),
                    hop.link,
                    hop.start,
                    self.scenario.item(item).size(),
                    hold,
                )
                .expect("tree hop must be feasible against the ledger it was computed on");
            debug_assert_eq!(slot.arrival, hop.arrival);
            self.transfers.push(Transfer {
                item,
                from: hop.from,
                to: hop.to,
                link: hop.link,
                start: hop.start,
                arrival: hop.arrival,
            });
            self.metrics.transfers_committed += 1;
            committed += 1;
            self.copies[item.index()].push((hop.to, hop.arrival));
            let depth = self.depths[item.index()][hop.from.index()].saturating_add(1);
            self.depths[item.index()][hop.to.index()] = depth;
            self.mark_deliveries(item, hop.to, hop.arrival, depth);
            links.push(hop.link);
            machines.push(hop.to);
        }
        self.record_consumption(item, &links, &machines);
        committed
    }

    /// Commits the current shortest path of `item` to `destination` with
    /// every hop re-timed to its *latest* feasible slot (the `alap`
    /// heuristic's move): the final hop completes by `deadline` and each
    /// earlier hop completes by the start of the hop after it, so the
    /// chain hugs the deadline and leaves early link capacity free. Hops
    /// into machines that already hold a copy in time are skipped along
    /// with the whole chain feeding them (downstream sources from the
    /// existing copy).
    ///
    /// Latest placement can be infeasible where earliest placement is not
    /// (storage or window blockage near the deadline); in that case this
    /// falls back to [`SchedulerState::commit_path`] so the heuristic
    /// always makes progress.
    ///
    /// Returns the number of hops committed.
    ///
    /// # Panics
    ///
    /// Panics if `destination` is unreachable in the current tree; callers
    /// check reachability when they pick the step.
    pub fn commit_path_latest(
        &mut self,
        item: DataItemId,
        destination: MachineId,
        deadline: SimTime,
    ) -> u32 {
        let tree = self.tree(item).clone();
        let path = tree
            .path_to(destination)
            .expect("chosen destination must be reachable in the current tree");
        let size = self.scenario.item(item).size();
        // Backward pass: bound each hop's completion by the start of the
        // hop after it (the copy must be on the sending machine before the
        // next transfer begins).
        let mut limit = deadline;
        let mut retimed: Vec<Hop> = Vec::with_capacity(path.len());
        for hop in path.iter().rev() {
            // A copy already at the receiving machine in time makes this
            // hop — and the chain feeding it — unnecessary.
            if self.copies[item.index()].iter().any(|&(m, at)| m == hop.to && at <= limit) {
                break;
            }
            let hold = self.hold_until[item.index()][hop.to.index()];
            let Some(slot) = self.ledger.latest_transfer(
                self.scenario.network(),
                hop.link,
                hop.start,
                size,
                limit,
                hold,
            ) else {
                return self.commit_path(item, destination);
            };
            retimed.push(Hop {
                from: hop.from,
                to: hop.to,
                link: hop.link,
                start: slot.start,
                arrival: slot.arrival,
            });
            limit = slot.start;
        }
        // Forward pass: commit in travel order. Each hop touches its own
        // link and receiving store (path machines are distinct), so the
        // probed slots stay feasible as earlier hops commit.
        retimed.reverse();
        let mut links = Vec::with_capacity(retimed.len());
        let mut machines = Vec::with_capacity(retimed.len());
        let mut committed = 0u32;
        for hop in retimed {
            let hold = self.hold_until[item.index()][hop.to.index()];
            let slot = self
                .ledger
                .commit_transfer(self.scenario.network(), hop.link, hop.start, size, hold)
                .expect("latest slot probed against the same ledger must commit");
            debug_assert_eq!(slot.arrival, hop.arrival);
            self.transfers.push(Transfer {
                item,
                from: hop.from,
                to: hop.to,
                link: hop.link,
                start: hop.start,
                arrival: hop.arrival,
            });
            self.metrics.transfers_committed += 1;
            committed += 1;
            self.copies[item.index()].push((hop.to, hop.arrival));
            let depth = self.depths[item.index()][hop.from.index()].saturating_add(1);
            self.depths[item.index()][hop.to.index()] = depth;
            self.mark_deliveries(item, hop.to, hop.arrival, depth);
            links.push(hop.link);
            machines.push(hop.to);
        }
        self.record_consumption(item, &links, &machines);
        committed
    }

    /// Attempts to commit a *precomputed* hop against the current ledger
    /// (used by the single-Dijkstra random lower bound, whose paths were
    /// planned on the pristine network and may no longer fit). Returns
    /// `true` on success; on conflict the state is unchanged.
    pub fn try_commit_stale_hop(&mut self, item: DataItemId, hop: Hop) -> bool {
        // A copy at least as early already there: treat as success.
        if self.copies[item.index()].iter().any(|&(m, at)| m == hop.to && at <= hop.arrival) {
            return true;
        }
        let hold = self.hold_until[item.index()][hop.to.index()];
        match self.ledger.commit_transfer(
            self.scenario.network(),
            hop.link,
            hop.start,
            self.scenario.item(item).size(),
            hold,
        ) {
            Ok(_) => {
                self.transfers.push(Transfer {
                    item,
                    from: hop.from,
                    to: hop.to,
                    link: hop.link,
                    start: hop.start,
                    arrival: hop.arrival,
                });
                self.metrics.transfers_committed += 1;
                self.copies[item.index()].push((hop.to, hop.arrival));
                let depth = self.depths[item.index()][hop.from.index()].saturating_add(1);
                self.depths[item.index()][hop.to.index()] = depth;
                self.mark_deliveries(item, hop.to, hop.arrival, depth);
                self.record_consumption(item, &[hop.link], &[hop.to]);
                true
            }
            Err(_) => false,
        }
    }

    /// Finalizes the run into a schedule plus metrics.
    #[must_use]
    pub fn into_outcome(self) -> (Schedule, RunMetrics) {
        let deliveries: Vec<Delivery> = self.delivered.into_iter().flatten().collect();
        (Schedule::from_parts(self.transfers, deliveries), self.metrics)
    }

    fn mark_deliveries(&mut self, item: DataItemId, machine: MachineId, at: SimTime, hops: u32) {
        for &req_id in self.scenario.requests_for(item) {
            if self.delivered[req_id.index()].is_some() {
                continue;
            }
            let req = self.scenario.request(req_id);
            if req.destination() == machine && at <= req.deadline() {
                self.delivered[req_id.index()] = Some(Delivery { request: req_id, at, hops });
            }
        }
    }

    /// Records resource consumption after committing transfers of `item`
    /// that used `links` and placed copies on `machines`.
    ///
    /// Resources are only ever consumed within a run (the ledger has no
    /// release APIs; eviction-style re-planning always starts from a fresh
    /// state), so a cached tree stays optimal unless it planned to use one
    /// of the touched links or to place a copy on one of the touched
    /// machines (see DESIGN.md §3). The consumption is journaled; other
    /// items' trees are checked lazily — and repaired rather than rebuilt
    /// where possible — at their next [`SchedulerState::tree`] query. The
    /// committing item's own tree is dropped eagerly: its copy set grew,
    /// which repair cannot express. With caching disabled, everything is
    /// invalidated.
    fn record_consumption(
        &mut self,
        item: DataItemId,
        links: &[VirtualLinkId],
        machines: &[MachineId],
    ) {
        for &link in links {
            self.journal.record_link(link);
        }
        for &machine in machines {
            self.journal.record_machine(machine);
        }
        self.trees[item.index()] = None;
        self.tree_footprints[item.index()] = None;
        if !self.caching {
            self.drop_all_trees();
        }
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }

    /// Sets the elapsed wall-clock time (recorded by the heuristic driver).
    pub fn set_elapsed(&mut self, elapsed: core::time::Duration) {
        self.metrics.elapsed = elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_model::data::{DataItem, DataSource};
    use dstage_model::link::VirtualLink;
    use dstage_model::machine::Machine;
    use dstage_model::network::NetworkBuilder;
    use dstage_model::request::{Priority, Request};
    use dstage_model::units::{BitsPerSec, Bytes};

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn item(i: u32) -> DataItemId {
        DataItemId::new(i)
    }

    /// 0 -> 1 -> 2 -> 3 line, 1 byte/ms links, one item at m0 requested by
    /// m2 (high) and m3 (low).
    fn line_scenario() -> Scenario {
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        for i in 0..3u32 {
            b.add_link(VirtualLink::new(
                m(i),
                m(i + 1),
                t(0),
                SimTime::from_hours(2),
                BitsPerSec::new(8_000),
            ));
        }
        Scenario::builder(b.build())
            .add_item(DataItem::new("d0", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(item(0), m(2), t(3_000), Priority::HIGH))
            .add_request(Request::new(item(0), m(3), t(3_000), Priority::LOW))
            .build()
            .unwrap()
    }

    #[test]
    fn initial_state_has_sources_and_no_deliveries() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        assert_eq!(st.pending_requests(item(0)).count(), 2);
        let tree = st.tree(item(0));
        assert_eq!(tree.arrival(m(0)), t(0));
        assert_eq!(tree.arrival(m(2)), t(20));
        assert_eq!(tree.arrival(m(3)), t(30));
        assert_eq!(st.metrics().dijkstra_runs, 1);
    }

    #[test]
    fn candidate_steps_group_destinations_by_first_hop() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        let steps = st.candidate_steps(item(0));
        // Both destinations' paths start with the hop 0 -> 1.
        assert_eq!(steps.len(), 1);
        let step = &steps[0];
        assert_eq!(step.hop.from, m(0));
        assert_eq!(step.hop.to, m(1));
        assert_eq!(step.destinations.len(), 2);
        assert!(step.destinations.iter().all(|d| d.satisfiable));
    }

    #[test]
    fn commit_hop_advances_the_frontier() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        let steps = st.candidate_steps(item(0));
        st.commit_hop(item(0), steps[0].hop);
        // Now the first hop is 1 -> 2.
        let steps = st.candidate_steps(item(0));
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].hop.from, m(1));
        assert_eq!(steps[0].hop.to, m(2));
        // Committing it delivers the m2 request.
        st.commit_hop(item(0), steps[0].hop);
        assert!(st.is_delivered(RequestId::new(0)));
        assert!(!st.is_delivered(RequestId::new(1)));
        assert_eq!(st.pending_requests(item(0)).count(), 1);
    }

    #[test]
    fn commit_path_schedules_whole_chain() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        let hops = st.commit_path(item(0), m(3));
        assert_eq!(hops, 3);
        assert!(st.is_delivered(RequestId::new(0))); // m2 is on the way
        assert!(st.is_delivered(RequestId::new(1)));
        let (schedule, metrics) = st.into_outcome();
        assert_eq!(schedule.transfers().len(), 3);
        assert_eq!(metrics.transfers_committed, 3);
        // The replay validator accepts the schedule.
        let derived = schedule.validate(&s).unwrap();
        assert_eq!(derived.len(), 2);
        // Hop counts recorded for the links-traversed statistic.
        assert_eq!(schedule.delivery_of(RequestId::new(0)).unwrap().hops, 2);
        assert_eq!(schedule.delivery_of(RequestId::new(1)).unwrap().hops, 3);
    }

    #[test]
    fn commit_paths_shares_common_prefix() {
        // Fork: 0 -> 1, then 1 -> 2 and 1 -> 3.
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        b.add_link(VirtualLink::new(
            m(1),
            m(2),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        b.add_link(VirtualLink::new(
            m(1),
            m(3),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("d0", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(item(0), m(2), t(3_000), Priority::HIGH))
            .add_request(Request::new(item(0), m(3), t(3_000), Priority::LOW))
            .build()
            .unwrap();
        let mut st = SchedulerState::new(&s);
        let hops = st.commit_paths(item(0), &[m(2), m(3)]);
        // 0->1 shared, then 1->2 and 1->3: three hops, not four.
        assert_eq!(hops, 3);
        assert!(st.is_delivered(RequestId::new(0)));
        assert!(st.is_delivered(RequestId::new(1)));
        let (schedule, _) = st.into_outcome();
        schedule.validate(&s).unwrap();
    }

    #[test]
    fn caching_serves_unrelated_items_from_cache() {
        // Two items on disjoint halves of a network.
        let mut b = NetworkBuilder::new();
        for i in 0..4 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        b.add_link(VirtualLink::new(
            m(2),
            m(3),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("a", Bytes::new(1_000), vec![DataSource::new(m(0), t(0))]))
            .add_item(DataItem::new("b", Bytes::new(1_000), vec![DataSource::new(m(2), t(0))]))
            .add_request(Request::new(item(0), m(1), t(3_000), Priority::HIGH))
            .add_request(Request::new(item(1), m(3), t(3_000), Priority::HIGH))
            .build()
            .unwrap();
        let mut st = SchedulerState::new(&s);
        let _ = st.tree(item(0));
        let _ = st.tree(item(1));
        assert_eq!(st.metrics().dijkstra_runs, 2);
        // Committing item 0's hop must not invalidate item 1's tree.
        let steps = st.candidate_steps(item(0));
        assert_eq!(st.metrics().cache_hits, 1); // candidate_steps reused tree 0
        st.commit_hop(item(0), steps[0].hop);
        let _ = st.tree(item(1));
        assert_eq!(st.metrics().dijkstra_runs, 2, "disjoint item recomputed needlessly");
        // Item 0's own tree must be recomputed.
        let _ = st.tree(item(0));
        assert_eq!(st.metrics().dijkstra_runs, 3);
    }

    #[test]
    fn caching_invalidates_items_sharing_resources() {
        // Both items start at m0 and want m1 over the same single link.
        let mut b = NetworkBuilder::new();
        for i in 0..2 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("a", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_item(DataItem::new("b", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(item(0), m(1), t(3_000), Priority::HIGH))
            .add_request(Request::new(item(1), m(1), t(3_000), Priority::HIGH))
            .build()
            .unwrap();
        let mut st = SchedulerState::new(&s);
        let arrival_before = st.tree(item(1)).arrival(m(1));
        let steps = st.candidate_steps(item(0));
        st.commit_hop(item(0), steps[0].hop);
        // Item 1 used the same link: its tree must recompute and worsen.
        let arrival_after = st.tree(item(1)).arrival(m(1));
        assert!(arrival_after > arrival_before);
        assert_eq!(st.metrics().dijkstra_runs, 3);
    }

    #[test]
    fn caching_off_matches_caching_on() {
        let s = line_scenario();
        let run = |caching: bool| {
            let mut st = SchedulerState::with_caching(&s, caching);
            loop {
                let steps = st.all_candidate_steps();
                let Some(step) = steps.into_iter().next() else { break };
                st.commit_hop(step.item, step.hop);
            }
            st.into_outcome().0
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn unsatisfiable_requests_offer_no_steps() {
        // Deadline of 1 s is impossible (first hop takes 10 s).
        let mut b = NetworkBuilder::new();
        for i in 0..2 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("a", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(item(0), m(1), t(1), Priority::HIGH))
            .build()
            .unwrap();
        let mut st = SchedulerState::new(&s);
        assert!(st.candidate_steps(item(0)).is_empty());
    }

    #[test]
    fn inactive_requests_receive_no_resources_but_record_deliveries() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        // Deactivate the m3 request: only m2's path is offered.
        st.set_request_active(RequestId::new(1), false);
        assert!(!st.is_request_active(RequestId::new(1)));
        assert_eq!(st.pending_requests(item(0)).count(), 1);
        let steps = st.candidate_steps(item(0));
        assert_eq!(steps[0].destinations.len(), 1, "inactive request not in Drq");
        // Deliver to m3 anyway (committing the full chain): the inactive
        // request still records its delivery — the data is there.
        st.commit_path(item(0), m(3));
        assert!(st.is_delivered(RequestId::new(1)));
    }

    #[test]
    fn remove_copies_respects_the_loss_instant() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        st.commit_path(item(0), m(2)); // copies at m1 (t=10), m2 (t=20)
                                       // A loss at t=15 kills the m1 copy but not one arriving later.
        assert!(st.remove_copies(item(0), m(1), t(15)));
        assert!(!st.remove_copies(item(0), m(1), t(15)), "already gone");
        // Losing at m2 before its arrival removes nothing.
        assert!(!st.remove_copies(item(0), m(2), t(15)));
        assert!(st.remove_copies(item(0), m(2), t(25)));
    }

    #[test]
    fn revoke_delivery_reopens_the_request() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        st.commit_path(item(0), m(2));
        assert!(st.is_delivered(RequestId::new(0)));
        st.revoke_delivery(RequestId::new(0));
        assert!(!st.is_delivered(RequestId::new(0)));
        assert_eq!(st.pending_requests(item(0)).count(), 2);
    }

    #[test]
    fn link_outage_blocks_future_use() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        let before = st.tree(item(0)).arrival(m(1));
        assert_ne!(before, SimTime::MAX);
        // Take the only first-hop link down from t=0.
        st.apply_link_outage(VirtualLinkId::new(0), SimTime::ZERO);
        assert_eq!(st.tree(item(0)).arrival(m(1)), SimTime::MAX);
        assert!(st.candidate_steps(item(0)).is_empty());
    }

    #[test]
    fn block_past_forces_later_starts() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        st.block_past(t(120));
        let tree = st.tree(item(0));
        let hop = tree.first_hop_toward(m(2)).unwrap();
        assert!(hop.start >= t(120), "new transfers must not start in the past");
    }

    #[test]
    fn delivery_of_reports_time_and_hops() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        st.commit_path(item(0), m(2));
        let d = st.delivery_of(RequestId::new(0)).unwrap();
        assert_eq!(d.at, t(20));
        assert_eq!(d.hops, 2);
        assert!(st.delivery_of(RequestId::new(1)).is_none());
    }

    #[test]
    fn try_commit_stale_hop_is_idempotent_on_existing_copies() {
        let s = line_scenario();
        let mut st = SchedulerState::new(&s);
        let hop = st.candidate_steps(item(0))[0].hop;
        assert!(st.try_commit_stale_hop(item(0), hop));
        // The same hop again: a copy at least as early is already there =>
        // success without a new transfer.
        let transfers_before = st.metrics().transfers_committed;
        assert!(st.try_commit_stale_hop(item(0), hop));
        assert_eq!(st.metrics().transfers_committed, transfers_before);
    }

    #[test]
    fn try_commit_stale_hop_reports_link_conflicts() {
        // Two items at m0, single link to m1: plan both on the pristine
        // network (identical slots), then commit both — the second fails.
        let mut b = NetworkBuilder::new();
        for i in 0..2 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("a", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_item(DataItem::new("b", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(item(0), m(1), t(3_000), Priority::HIGH))
            .add_request(Request::new(item(1), m(1), t(3_000), Priority::HIGH))
            .build()
            .unwrap();
        let mut st = SchedulerState::new(&s);
        let hop_a = st.tree(item(0)).first_hop_toward(m(1)).unwrap();
        let hop_b = st.tree(item(1)).first_hop_toward(m(1)).unwrap();
        assert_eq!(hop_a.start, hop_b.start, "planned on the same pristine network");
        assert!(st.try_commit_stale_hop(item(0), hop_a));
        assert!(!st.try_commit_stale_hop(item(1), hop_b), "stale slot must conflict");
        // State is unchanged by the failed commit: item 1 has no copy at m1.
        assert!(!st.is_delivered(RequestId::new(1)));
    }
}
