//! The as-late-as-possible heuristic (`alap`, extension).
//!
//! Selection is identical to full path/one destination: each iteration
//! the cost criterion picks a winning step and a destination. Placement
//! differs — the chosen path is committed against the *latest* feasible
//! gaps before the destination's deadline (DDCCast-style backward
//! chaining) instead of the earliest ones. Early link capacity stays
//! free, preserving headroom for requests that have not arrived yet; in
//! the static sweep this trades delivery earliness (never satisfaction)
//! for contention relief, and in the online service it reduces the
//! eviction pressure of disturbances.

use crate::heuristic::{best_choice, lowest_cost_destination, HeuristicConfig};
use crate::state::SchedulerState;

/// Drives the as-late-as-possible main loop to completion.
pub(crate) fn drive(state: &mut SchedulerState<'_>, config: &HeuristicConfig) {
    while let Some(choice) = best_choice(state, config) {
        state.note_iteration();
        let destination = choice
            .destination
            .or_else(|| lowest_cost_destination(state.scenario(), config, &choice.step));
        let Some(request) = destination else {
            // Unreachable: steps always contain a satisfiable destination.
            debug_assert!(false, "winning step had no satisfiable destination");
            break;
        };
        let req = state.scenario().request(request);
        state.commit_path_latest(choice.step.item, req.destination(), req.deadline());
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostCriterion, EuWeights};
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn config(criterion: CostCriterion) -> HeuristicConfig {
        HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn satisfies_everything_on_an_uncontended_chain() {
        let s = two_hop_chain();
        for criterion in CostCriterion::ALL {
            let out = run(&s, Heuristic::Alap, &config(criterion));
            let derived = out.schedule.validate(&s).unwrap();
            assert_eq!(derived.len(), s.request_count(), "criterion {criterion}");
        }
    }

    #[test]
    fn deliveries_hug_their_deadlines() {
        let s = two_hop_chain();
        let early = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C4));
        let late = run(&s, Heuristic::Alap, &config(CostCriterion::C4));
        assert_eq!(early.schedule.deliveries().len(), late.schedule.deliveries().len());
        for d in late.schedule.deliveries() {
            let deadline = s.request(d.request).deadline();
            let early_at = early.schedule.delivery_of(d.request).unwrap().at;
            assert!(d.at <= deadline);
            assert!(d.at >= early_at, "latest placement cannot beat earliest");
        }
        // At least one delivery actually moved toward its deadline.
        assert!(
            late.schedule
                .deliveries()
                .iter()
                .any(|d| d.at > early.schedule.delivery_of(d.request).unwrap().at),
            "alap placed nothing later than full_one"
        );
    }

    #[test]
    fn satisfies_no_fewer_than_zero_on_contention() {
        let s = contended_link();
        let out = run(&s, Heuristic::Alap, &config(CostCriterion::C4));
        out.schedule.validate(&s).unwrap();
        assert!(!out.schedule.deliveries().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = fan_out();
        let a = run(&s, Heuristic::Alap, &config(CostCriterion::C2));
        let b = run(&s, Heuristic::Alap, &config(CostCriterion::C2));
        assert_eq!(a.schedule, b.schedule);
    }
}
