//! Execution metrics for one scheduling run.
//!
//! The paper's companion report tracks heuristic execution time and how
//! often Dijkstra's algorithm runs (full path/all destinations exists
//! precisely to need fewer runs, §4.7); these counters reproduce that
//! instrumentation.

use core::time::Duration;

use serde::{Deserialize, Serialize};

/// Counters collected while a heuristic runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of executions of the multiple-source shortest-path search.
    pub dijkstra_runs: u64,
    /// Number of shortest-path searches answered from the cache (always 0
    /// when caching is disabled).
    pub cache_hits: u64,
    /// Number of scheduler iterations (one per cost-based selection).
    pub iterations: u64,
    /// Number of transfers committed.
    pub transfers_committed: u64,
    /// Wall-clock time of the run.
    #[serde(with = "duration_serde")]
    pub elapsed: Duration,
}

impl RunMetrics {
    /// Fraction of shortest-path queries served from cache.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.dijkstra_runs + self.cache_hits;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

mod duration_serde {
    use core::time::Duration;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Ok(Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_rate_handles_zero() {
        assert_eq!(RunMetrics::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn cache_hit_rate_fraction() {
        let m = RunMetrics { dijkstra_runs: 25, cache_hits: 75, ..RunMetrics::default() };
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
